"""Observability overhead benchmark: instrumented vs muted hot paths.

The observability layer (:mod:`repro.obs`) promises to be cheap enough to
leave on: every record call starts with one module-flag check, mining
workers buffer their measurements in throwaway delta registries, and the
serving counters sit outside the per-event automaton step.  This benchmark
holds the layer to that promise on the two hot paths it touches:

* **mining** — a non-redundant rule mine over the scaled canonical
  profile, serial backend (the per-shard/per-unit timing and the
  stats-mirror cost);
* **serving** — pushing batched session events through a sharded
  :class:`~repro.serving.pool.MonitorPool` (the per-event counter and the
  per-scrape gauge cost);
* **serving, fully armed** — the same push workload with per-rule
  analytics mirrored into the registry, a live trace collector, and a
  trace context stamped on every batch (the cross-process propagation
  path), plus a ``rule_analytics()`` scrape — the serving plane exactly
  as `repro serve --http-port` runs it under `repro top`.

Each path is timed in alternating enabled/muted rounds
(:func:`repro.obs.metrics.set_enabled`), taking the best round per mode so
scheduler noise cancels instead of accumulating, and the mined result /
merged report is asserted identical across modes first — the layer must
observe, never perturb.  At canonical scale (or with
``REPRO_REQUIRE_SPEEDUP=1``) the instrumented time must stay within
**5%** of the muted baseline on both paths — the acceptance criterion.

Results go to ``benchmarks/results/obs_overhead.txt`` and are appended as
one run record to the ``BENCH_hot_paths.json`` trajectory at the
repository root (smoke scales write to ``benchmarks/results/``), so the
overhead sits under the same >20% wall-clock regression gate as the paths
it instruments.  ``wall_clock_seconds`` = the instrumented mining pass.

Scale with ``REPRO_OBS_SCALE`` (default 1.0).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.datagen.profiles import generate_profile
from repro.engine import resolve_backend
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.serving.pool import MonitorPool

from conftest import append_bench_record, write_result

SCALE = float(os.environ.get("REPRO_OBS_SCALE", "1.0"))
REPO_ROOT = Path(__file__).resolve().parents[1]
CANONICAL_SCALE = SCALE == 1.0
JSON_PATH = (
    REPO_ROOT / "BENCH_hot_paths.json"
    if CANONICAL_SCALE
    else Path(__file__).parent / "results" / "BENCH_hot_paths.json"
)

#: Alternating timing rounds per mode; best round is reported.
ROUNDS = 3
#: The acceptance bound: instrumented within 5% of muted.
MAX_OVERHEAD = 0.05
#: Serving workload: logical sessions and events per session.
SESSIONS = max(8, int(64 * SCALE))
EVENTS_PER_SESSION = 40


def _mine_once(database):
    config = RuleMiningConfig(min_s_support=2.0, min_i_support=1, min_confidence=0.5)
    miner = NonRedundantRecurrentRuleMiner(config)
    backend = resolve_backend("serial", None, None)
    started = time.perf_counter()
    result = miner.mine(database, backend=backend)
    elapsed = time.perf_counter() - started
    return result, elapsed


def _serve_once(rules):
    events = [f"ev{i % 7}" for i in range(EVENTS_PER_SESSION)]
    started = time.perf_counter()
    with MonitorPool(rules, shards=4) as pool:
        for session in range(SESSIONS):
            pool.feed_batch(f"s{session}", events)
        for session in range(SESSIONS):
            pool.end_session(f"s{session}").wait(timeout=30.0)
        report = pool.report()
        pool.stats()  # the scrape path: gauge refresh included in the cost
    return report, time.perf_counter() - started


def _serve_analytics_once(rules):
    """The fully armed serving pass: analytics + trace propagation.

    When the collector is armed (instrumented rounds) every batch and
    session close carries a trace context, the way :class:`PushClient`
    stamps wire frames; muted rounds send the same traffic plain.  The
    per-rule analytics scrape at the end is the ANALYTICS-verb read that
    `repro top` polls.
    """
    events = [f"ev{i % 7}" for i in range(EVENTS_PER_SESSION)]
    armed = tracing.ACTIVE is not None
    started = time.perf_counter()
    with MonitorPool(rules, shards=4) as pool:
        for session in range(SESSIONS):
            context = tracing.ensure_context() if armed else None
            pool.feed_batch(f"s{session}", events, trace=context)
        for session in range(SESSIONS):
            context = tracing.ensure_context() if armed else None
            pool.end_session(f"s{session}", trace=context).wait(timeout=30.0)
        analytics = pool.rule_analytics()
        report = pool.report()
        pool.stats()
    return (report, analytics), time.perf_counter() - started


def _best_of(fn, argument, arm=None, disarm=None):
    """Alternate enabled/muted rounds, returning each mode's best time.

    Interleaving means a load spike hits both modes alike; taking the
    minimum keeps the comparison about the code, not the machine.  The
    optional ``arm``/``disarm`` hooks bracket each instrumented round
    (e.g. installing and resetting a trace collector) so "enabled" can
    mean more than the metrics flag.
    """
    results = {}
    timings = {True: [], False: []}
    for _ in range(ROUNDS):
        for enabled in (True, False):
            obs_metrics.set_enabled(enabled)
            if enabled and arm is not None:
                arm()
            try:
                outcome, elapsed = fn(argument)
            finally:
                obs_metrics.set_enabled(True)
                if disarm is not None:
                    disarm()
            results[enabled] = outcome
            timings[enabled].append(elapsed)
    return results, min(timings[True]), min(timings[False])


def bench_obs_overhead(benchmark):
    # The short-sequence profile: the long-sequence paper profile's rule
    # space explodes at this absolute support, and this bench times the
    # instrumentation, not the search.
    database = generate_profile("D5C5N10S4", scale=0.04 * SCALE)

    # One untimed warmup pass: the first mine on a cold machine runs up to
    # 2x slower (frequency ramp, cold caches), which best-of-N rounds
    # cannot always amortise on a single-CPU host.
    _mine_once(database)

    mine_results, mine_on, mine_off = _best_of(_mine_once, database)
    # Observe, never perturb: the mined rules are identical either way.
    assert [str(r) for r in mine_results[True].rules] == [
        str(r) for r in mine_results[False].rules
    ]
    rules = tuple(mine_results[True].rules)[:32]

    serve_results, serve_on, serve_off = _best_of(_serve_once, rules)
    assert serve_results[True].summary() == serve_results[False].summary()

    analytics_results, analytics_on, analytics_off = _best_of(
        _serve_analytics_once, rules, arm=tracing.install, disarm=tracing.reset
    )
    # Armed or plain, the pool reports the same violations and the same
    # per-rule tallies — analytics observe, never perturb.
    armed_report, armed_analytics = analytics_results[True]
    plain_report, plain_analytics = analytics_results[False]
    assert armed_report.summary() == plain_report.summary()
    assert armed_analytics == plain_analytics

    mine_overhead = mine_on / mine_off - 1.0
    serve_overhead = serve_on / serve_off - 1.0
    analytics_overhead = analytics_on / analytics_off - 1.0

    # One extra instrumented mining pass as the pytest-benchmark probe.
    benchmark.pedantic(lambda: _mine_once(database), rounds=1, iterations=1)

    total_events = sum(len(sequence) for sequence in database)
    record = {
        "benchmark": "obs_overhead",
        "workload": {
            "scale": SCALE,
            "sequences": len(database),
            "events": total_events,
            "sessions": SESSIONS,
            "host_cpus": os.cpu_count(),
        },
        "mine_instrumented_seconds": round(mine_on, 4),
        "mine_muted_seconds": round(mine_off, 4),
        "mine_overhead_fraction": round(mine_overhead, 4),
        "serve_instrumented_seconds": round(serve_on, 4),
        "serve_muted_seconds": round(serve_off, 4),
        "serve_overhead_fraction": round(serve_overhead, 4),
        "serve_analytics_armed_seconds": round(analytics_on, 4),
        "serve_analytics_muted_seconds": round(analytics_off, 4),
        "serve_analytics_overhead_fraction": round(analytics_overhead, 4),
        "wall_clock_seconds": round(mine_on, 4),
    }
    append_bench_record(JSON_PATH, record)

    text = (
        f"workload: {len(database)} sequences, {total_events} events, "
        f"{SESSIONS} push sessions (scale {SCALE})\n"
        f"mine : instrumented {mine_on:.4f}s vs muted {mine_off:.4f}s "
        f"({mine_overhead:+.1%})\n"
        f"serve: instrumented {serve_on:.4f}s vs muted {serve_off:.4f}s "
        f"({serve_overhead:+.1%})\n"
        f"serve+analytics+trace: armed {analytics_on:.4f}s vs muted "
        f"{analytics_off:.4f}s ({analytics_overhead:+.1%})"
    )
    write_result("obs_overhead", text)

    # The 5% bound is asserted only on workloads long enough to measure it
    # honestly; smoke scales still verify result identity above.
    if os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or CANONICAL_SCALE:
        assert mine_overhead <= MAX_OVERHEAD, (
            f"metrics overhead on the mining path is {mine_overhead:.1%} "
            f"(> {MAX_OVERHEAD:.0%}): {mine_on:.4f}s vs {mine_off:.4f}s"
        )
        assert serve_overhead <= MAX_OVERHEAD, (
            f"metrics overhead on the serving path is {serve_overhead:.1%} "
            f"(> {MAX_OVERHEAD:.0%}): {serve_on:.4f}s vs {serve_off:.4f}s"
        )
        assert analytics_overhead <= MAX_OVERHEAD, (
            f"per-rule analytics + trace propagation overhead on the "
            f"serving path is {analytics_overhead:.1%} "
            f"(> {MAX_OVERHEAD:.0%}): {analytics_on:.4f}s vs "
            f"{analytics_off:.4f}s"
        )
