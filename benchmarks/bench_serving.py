"""Serving-layer benchmark: compile time, streaming throughput, hot swap.

Three claims of the serving subsystem are measured on the canonical bench
fixture (loop-structured traces sharing premise prefixes — the workload
shape the shared trie exists for):

* **compile time** — turning a mined rule set into a
  :class:`~repro.serving.compile.CompiledRuleSet` (the cost a daemon pays
  per hot swap, measured separately as ``hot_swap_seconds`` on a perturbed
  rule set);
* **streaming throughput** — events/second of a
  :class:`~repro.serving.stream_monitor.StreamingMonitor` over the
  compiled automaton versus the offline
  :class:`~repro.verification.monitor.RuleMonitor`, which re-derives
  temporal points per rule per trace.  Reports must be identical
  (asserted) and the streaming path must be **>= 5x** faster at canonical
  scale (asserted, the acceptance criterion);
* **hot-swap latency** — re-compiling after a rule-set change, i.e. the
  serving gap of :meth:`WatchDaemon._swap`.

Results go to ``benchmarks/results/serving.txt`` and are appended as one
run record to the ``BENCH_hot_paths.json`` trajectory at the repository
root (smoke scales write to ``benchmarks/results/`` so they never pollute
the canonical lineage).  The regression gate watches
``wall_clock_seconds`` = the streaming monitoring pass, the path this
subsystem optimises.

Scale with ``REPRO_SERVING_SCALE`` (default 1.0).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.sequence import SequenceDatabase
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.serving import StreamingMonitor, compile_rules
from repro.verification.monitor import RuleMonitor

from conftest import append_bench_record, write_result

SCALE = float(os.environ.get("REPRO_SERVING_SCALE", "1.0"))
REPO_ROOT = Path(__file__).resolve().parents[1]
CANONICAL_SCALE = SCALE == 1.0
JSON_PATH = (
    REPO_ROOT / "BENCH_hot_paths.json"
    if CANONICAL_SCALE
    else Path(__file__).parent / "results" / "BENCH_hot_paths.json"
)

#: Independent protocol families; rules of one family share premise prefixes.
FAMILIES = 8
#: Events per family loop body; bodies repeat per trace (many temporal points)
#: and every trace closes with a ``commit`` tail, so mined consequents point
#: *late* into the trace — the case where the offline monitor's per-point
#: suffix re-scans hurt most and the compiled automaton's per-event cost
#: does not change.
LOOP_BODY = 5
#: Loop repeats in the mining corpus (keeps the mine fast) ...
REPEATS = 10
#: ... and in the monitored stream (serving traces are long).
MONITOR_REPEATS = 80
#: Mining corpus size (traces per family) and monitoring stream size.
TRACES_PER_FAMILY = 4
MONITOR_TRACES = max(8, int(40 * SCALE))
#: Every Nth monitored trace is truncated before its commit: violations.
VIOLATE_EVERY = 8

MINING_CONFIG = RuleMiningConfig(
    min_s_support=2,
    min_confidence=0.5,
    max_premise_length=2,
    max_consequent_length=1,
)


def _family_body(family: int) -> list:
    return [f"f{family}.e{i}" for i in range(LOOP_BODY)]


def _mining_corpus() -> SequenceDatabase:
    traces = []
    for family in range(FAMILIES):
        body = _family_body(family)
        trace = body * REPEATS + [f"f{family}.commit"]
        traces.extend([trace for _ in range(TRACES_PER_FAMILY)])
    return SequenceDatabase.from_sequences(traces)


def _monitoring_stream() -> SequenceDatabase:
    """The serving traffic: long single-family loop traces ending in their
    commit, with every ``VIOLATE_EVERY``-th trace truncated before it so
    the monitors exercise both outcomes."""
    traces = []
    for index in range(MONITOR_TRACES):
        family = index % FAMILIES
        trace = _family_body(family) * MONITOR_REPEATS + [f"f{family}.commit"]
        if index % VIOLATE_EVERY == 0:
            trace = trace[:-1]  # no commit: every pending ->commit point violates
        traces.append(trace)
    return SequenceDatabase.from_sequences(traces)


def bench_serving(benchmark):
    corpus = _mining_corpus()
    rules = NonRedundantRecurrentRuleMiner(MINING_CONFIG).mine(corpus).rules
    assert rules, "the bench fixture must mine a non-trivial rule set"

    start = time.perf_counter()
    compiled = compile_rules(rules)
    compile_seconds = time.perf_counter() - start

    stream = _monitoring_stream()
    stream_events = stream.total_events()

    start = time.perf_counter()
    offline_report = RuleMonitor(rules).check_database(stream)
    offline_seconds = time.perf_counter() - start

    start = time.perf_counter()
    streaming_report = StreamingMonitor(compiled).check_database(stream)
    streaming_seconds = time.perf_counter() - start

    # Correctness first: the serving path emits the identical report.
    assert streaming_report.total_points == offline_report.total_points
    assert streaming_report.satisfied_points == offline_report.satisfied_points
    assert streaming_report.per_rule_points == offline_report.per_rule_points
    assert streaming_report.violations == offline_report.violations
    assert streaming_report.violation_count > 0  # the stream exercises both outcomes

    # Hot-swap latency: a rule-set change (here: drop one rule) re-compiles.
    start = time.perf_counter()
    swapped = compile_rules(rules[:-1])
    hot_swap_seconds = time.perf_counter() - start
    assert len(swapped) == len(rules) - 1

    # One extra streaming pass as the pytest-benchmark probe.
    benchmark.pedantic(
        lambda: StreamingMonitor(compiled).check_database(stream), rounds=1, iterations=1
    )

    speedup = offline_seconds / streaming_seconds if streaming_seconds > 0 else float("inf")
    streaming_eps = int(stream_events / streaming_seconds) if streaming_seconds > 0 else None
    offline_eps = int(stream_events / offline_seconds) if offline_seconds > 0 else None
    trie = compiled.describe()
    payload = {
        "benchmark": "serving",
        "workload": {
            "sequences": len(stream),
            "events": stream_events,
            "families": FAMILIES,
            "loop_body": LOOP_BODY,
            "repeats": REPEATS,
            "rules": len(rules),
            "scale": SCALE,
            "host_cpus": os.cpu_count(),
        },
        "compile": {
            "seconds": round(compile_seconds, 6),
            "trie_nodes": trie["trie_nodes"],
            "shared_prefix_events": trie["shared_prefix_events"],
        },
        "monitoring": {
            "offline_seconds": round(offline_seconds, 4),
            "streaming_seconds": round(streaming_seconds, 4),
            "speedup": round(speedup, 2),
            "offline_events_per_second": offline_eps,
            "streaming_events_per_second": streaming_eps,
            "total_points": streaming_report.total_points,
            "violations": streaming_report.violation_count,
        },
        "hot_swap_seconds": round(hot_swap_seconds, 6),
        # The optimised-path cost the regression gate watches.
        "wall_clock_seconds": round(streaming_seconds, 4),
    }
    append_bench_record(JSON_PATH, payload)

    lines = [
        f"workload: {len(stream)} monitored traces, {stream_events} events, "
        f"{len(rules)} rules ({FAMILIES} families) (scale {SCALE})",
        f"compile: {compile_seconds * 1000:.2f} ms "
        f"({trie['trie_nodes']} trie nodes, {trie['shared_prefix_events']} shared prefix events)",
        f"offline  monitor: {offline_seconds:.3f}s ({offline_eps} events/s)",
        f"streaming monitor: {streaming_seconds:.3f}s ({streaming_eps} events/s, "
        f"{speedup:.2f}x, identical reports)",
        f"hot swap: {hot_swap_seconds * 1000:.2f} ms",
        f"points: {streaming_report.total_points}, "
        f"violations: {streaming_report.violation_count}",
        f"json: {JSON_PATH.name}",
    ]
    write_result("serving", "\n".join(lines))

    # The acceptance claim is asserted only on workloads big enough to be
    # falsifiable; smoke scales still assert report identity above.
    if os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or SCALE >= 1.0:
        assert speedup >= 5.0, f"expected >=5x streaming speedup, got {speedup:.2f}x"
