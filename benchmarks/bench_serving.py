"""Serving-layer benchmark: compile time, streaming throughput, hot swap,
and concurrent-session capacity of the network serving plane.

Three claims of the serving subsystem are measured on the canonical bench
fixture (loop-structured traces sharing premise prefixes — the workload
shape the shared trie exists for):

* **compile time** — turning a mined rule set into a
  :class:`~repro.serving.compile.CompiledRuleSet` (the cost a daemon pays
  per hot swap, measured separately as ``hot_swap_seconds`` on a perturbed
  rule set);
* **streaming throughput** — events/second of a
  :class:`~repro.serving.stream_monitor.StreamingMonitor` over the
  compiled automaton versus the offline
  :class:`~repro.verification.monitor.RuleMonitor`, which re-derives
  temporal points per rule per trace.  Reports must be identical
  (asserted) and the streaming path must be **>= 5x** faster at canonical
  scale (asserted, the acceptance criterion);
* **hot-swap latency** — re-compiling after a rule-set change, i.e. the
  serving gap of :meth:`WatchDaemon._swap`.

A second benchmark, ``bench_serving_concurrent_sessions``, measures the
network serving plane (what ``repro serve`` runs): a real TCP
:class:`~repro.serving.server.EventPushServer` in front of a sharded
:class:`~repro.serving.pool.MonitorPool`, holding ``>= 10_000 * SCALE``
logical sessions open at once and pushing interleaved batches through a
pipelined client.  The pool-merged report must be **byte-identical** to a
single :class:`StreamingMonitor` fed the same sessions sequentially in
admission order (asserted).  Its record starts its own ``serving_sessions``
lineage in ``BENCH_hot_paths.json``.

Results go to ``benchmarks/results/serving.txt`` and are appended as one
run record to the ``BENCH_hot_paths.json`` trajectory at the repository
root (smoke scales write to ``benchmarks/results/`` so they never pollute
the canonical lineage).  The regression gate watches
``wall_clock_seconds`` = the streaming monitoring pass, the path this
subsystem optimises.

Scale with ``REPRO_SERVING_SCALE`` (default 1.0).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.sequence import SequenceDatabase
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.serving import StreamingMonitor, compile_rules
from repro.verification.monitor import RuleMonitor

from conftest import append_bench_record, write_result

SCALE = float(os.environ.get("REPRO_SERVING_SCALE", "1.0"))
REPO_ROOT = Path(__file__).resolve().parents[1]
CANONICAL_SCALE = SCALE == 1.0
JSON_PATH = (
    REPO_ROOT / "BENCH_hot_paths.json"
    if CANONICAL_SCALE
    else Path(__file__).parent / "results" / "BENCH_hot_paths.json"
)

#: Independent protocol families; rules of one family share premise prefixes.
FAMILIES = 8
#: Events per family loop body; bodies repeat per trace (many temporal points)
#: and every trace closes with a ``commit`` tail, so mined consequents point
#: *late* into the trace — the case where the offline monitor's per-point
#: suffix re-scans hurt most and the compiled automaton's per-event cost
#: does not change.
LOOP_BODY = 5
#: Loop repeats in the mining corpus (keeps the mine fast) ...
REPEATS = 10
#: ... and in the monitored stream (serving traces are long).
MONITOR_REPEATS = 80
#: Mining corpus size (traces per family) and monitoring stream size.
TRACES_PER_FAMILY = 4
MONITOR_TRACES = max(8, int(40 * SCALE))
#: Every Nth monitored trace is truncated before its commit: violations.
VIOLATE_EVERY = 8

MINING_CONFIG = RuleMiningConfig(
    min_s_support=2,
    min_confidence=0.5,
    max_premise_length=2,
    max_consequent_length=1,
)


def _family_body(family: int) -> list:
    return [f"f{family}.e{i}" for i in range(LOOP_BODY)]


def _mining_corpus() -> SequenceDatabase:
    traces = []
    for family in range(FAMILIES):
        body = _family_body(family)
        trace = body * REPEATS + [f"f{family}.commit"]
        traces.extend([trace for _ in range(TRACES_PER_FAMILY)])
    return SequenceDatabase.from_sequences(traces)


def _monitoring_stream() -> SequenceDatabase:
    """The serving traffic: long single-family loop traces ending in their
    commit, with every ``VIOLATE_EVERY``-th trace truncated before it so
    the monitors exercise both outcomes."""
    traces = []
    for index in range(MONITOR_TRACES):
        family = index % FAMILIES
        trace = _family_body(family) * MONITOR_REPEATS + [f"f{family}.commit"]
        if index % VIOLATE_EVERY == 0:
            trace = trace[:-1]  # no commit: every pending ->commit point violates
        traces.append(trace)
    return SequenceDatabase.from_sequences(traces)


def bench_serving(benchmark):
    corpus = _mining_corpus()
    rules = NonRedundantRecurrentRuleMiner(MINING_CONFIG).mine(corpus).rules
    assert rules, "the bench fixture must mine a non-trivial rule set"

    start = time.perf_counter()
    compiled = compile_rules(rules)
    compile_seconds = time.perf_counter() - start

    stream = _monitoring_stream()
    stream_events = stream.total_events()

    start = time.perf_counter()
    offline_report = RuleMonitor(rules).check_database(stream)
    offline_seconds = time.perf_counter() - start

    start = time.perf_counter()
    streaming_report = StreamingMonitor(compiled).check_database(stream)
    streaming_seconds = time.perf_counter() - start

    # Correctness first: the serving path emits the identical report.
    assert streaming_report.total_points == offline_report.total_points
    assert streaming_report.satisfied_points == offline_report.satisfied_points
    assert streaming_report.per_rule_points == offline_report.per_rule_points
    assert streaming_report.violations == offline_report.violations
    assert streaming_report.violation_count > 0  # the stream exercises both outcomes

    # Hot-swap latency: a rule-set change (here: drop one rule) re-compiles.
    start = time.perf_counter()
    swapped = compile_rules(rules[:-1])
    hot_swap_seconds = time.perf_counter() - start
    assert len(swapped) == len(rules) - 1

    # One extra streaming pass as the pytest-benchmark probe.
    benchmark.pedantic(
        lambda: StreamingMonitor(compiled).check_database(stream), rounds=1, iterations=1
    )

    speedup = offline_seconds / streaming_seconds if streaming_seconds > 0 else float("inf")
    streaming_eps = int(stream_events / streaming_seconds) if streaming_seconds > 0 else None
    offline_eps = int(stream_events / offline_seconds) if offline_seconds > 0 else None
    trie = compiled.describe()
    payload = {
        "benchmark": "serving",
        "workload": {
            "sequences": len(stream),
            "events": stream_events,
            "families": FAMILIES,
            "loop_body": LOOP_BODY,
            "repeats": REPEATS,
            "rules": len(rules),
            "scale": SCALE,
            "host_cpus": os.cpu_count(),
        },
        "compile": {
            "seconds": round(compile_seconds, 6),
            "trie_nodes": trie["trie_nodes"],
            "shared_prefix_events": trie["shared_prefix_events"],
        },
        "monitoring": {
            "offline_seconds": round(offline_seconds, 4),
            "streaming_seconds": round(streaming_seconds, 4),
            "speedup": round(speedup, 2),
            "offline_events_per_second": offline_eps,
            "streaming_events_per_second": streaming_eps,
            "total_points": streaming_report.total_points,
            "violations": streaming_report.violation_count,
        },
        "hot_swap_seconds": round(hot_swap_seconds, 6),
        # The optimised-path cost the regression gate watches.
        "wall_clock_seconds": round(streaming_seconds, 4),
    }
    append_bench_record(JSON_PATH, payload)

    lines = [
        f"workload: {len(stream)} monitored traces, {stream_events} events, "
        f"{len(rules)} rules ({FAMILIES} families) (scale {SCALE})",
        f"compile: {compile_seconds * 1000:.2f} ms "
        f"({trie['trie_nodes']} trie nodes, {trie['shared_prefix_events']} shared prefix events)",
        f"offline  monitor: {offline_seconds:.3f}s ({offline_eps} events/s)",
        f"streaming monitor: {streaming_seconds:.3f}s ({streaming_eps} events/s, "
        f"{speedup:.2f}x, identical reports)",
        f"hot swap: {hot_swap_seconds * 1000:.2f} ms",
        f"points: {streaming_report.total_points}, "
        f"violations: {streaming_report.violation_count}",
        f"json: {JSON_PATH.name}",
    ]
    write_result("serving", "\n".join(lines))

    # The acceptance claim is asserted only on workloads big enough to be
    # falsifiable; smoke scales still assert report identity above.
    if os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or SCALE >= 1.0:
        assert speedup >= 5.0, f"expected >=5x streaming speedup, got {speedup:.2f}x"


# --------------------------------------------------------------------- #
# Concurrent-session capacity of the network serving plane
# --------------------------------------------------------------------- #
#: Logical sessions held open simultaneously (>= 10k at canonical scale).
SESSIONS = max(64, int(10_000 * SCALE))
#: Batches pushed per session while all sessions are open, and their size.
BATCHES_PER_SESSION = 2
#: Every Nth session is ended without its commit: violations on the wire.
SESSION_VIOLATE_EVERY = 16
#: Pool geometry for the capacity run.
POOL_SHARDS = 4
POOL_QUEUE_DEPTH = 2048
#: Client pipelining window (stays well under the aggregate queue bound).
PIPELINE_WINDOW = 512


def _session_events(index: int) -> list:
    family = index % FAMILIES
    events = _family_body(family) * BATCHES_PER_SESSION
    if index % SESSION_VIOLATE_EVERY != 0:
        events.append(f"f{family}.commit")
    return events


def _session_batches(index: int) -> list:
    """Split a session's events into its per-round batches."""
    events = _session_events(index)
    size = LOOP_BODY
    return [events[start : start + size] for start in range(0, len(events), size)]


def _report_bytes(report) -> bytes:
    """Canonical byte serialisation of a report for byte-identity checks."""
    import json as _json

    payload = {
        "total": report.total_points,
        "satisfied": report.satisfied_points,
        "violations": [violation.as_dict() for violation in report.violations],
        "per_rule": sorted(
            (repr(key), count) for key, count in report.per_rule_points.items()
        ),
    }
    return _json.dumps(payload, sort_keys=True).encode()


def bench_serving_concurrent_sessions(benchmark):
    from repro.serving import EventPushServer, MonitorPool, PushClient
    from repro.verification.violations import MonitoringReport

    corpus = _mining_corpus()
    rules = NonRedundantRecurrentRuleMiner(MINING_CONFIG).mine(corpus).rules
    assert rules, "the bench fixture must mine a non-trivial rule set"
    compiled = compile_rules(rules)

    batches = [_session_batches(index) for index in range(SESSIONS)]
    rounds = max(len(session_batches) for session_batches in batches)
    total_events = sum(len(batch) for session in batches for batch in session)

    def await_backlog(client, low_mark):
        """Client-side flow control: the server replies at *enqueue* time,
        so a fast client can outrun the shard workers and hit BUSY.  Poll
        STATS until the queued backlog is below ``low_mark`` — the push
        protocol's intended slow-down signal handling (docs/serving.md)."""
        while True:
            stats = client.stats()
            if sum(shard["queued"] for shard in stats["per_shard"]) <= low_mark:
                return
            time.sleep(0.01)

    def push_chunked(client, payloads, expect):
        chunk = []
        for payload in payloads:
            chunk.append(payload)
            if len(chunk) == POOL_QUEUE_DEPTH:
                for reply in client.pipeline(chunk, window=PIPELINE_WINDOW):
                    assert reply["op"] == expect, reply
                chunk = []
                await_backlog(client, low_mark=POOL_QUEUE_DEPTH // 2)
        for reply in client.pipeline(chunk, window=PIPELINE_WINDOW):
            assert reply["op"] == expect, reply

    def push_all(client):
        """Open every session, keep them all open across interleaved batch
        rounds, then close them — round-robin, so concurrency peaks at
        SESSIONS, not at the pipeline window.  Chunked sends with backlog
        polling keep the run BUSY-free, which also pins the admission
        order (session index == admission index, the reference's premise)."""
        for round_index in range(rounds):
            payloads = (
                {"op": "BATCH", "session": f"s{index}", "events": session[round_index]}
                for index, session in enumerate(batches)
                if round_index < len(session)
            )
            push_chunked(client, payloads, expect="OK")
        peak = client.stats()
        ends = ({"op": "END", "session": f"s{index}", "limit": 0} for index in range(SESSIONS))
        push_chunked(client, ends, expect="SESSION")
        return peak

    with MonitorPool(compiled, shards=POOL_SHARDS, queue_depth=POOL_QUEUE_DEPTH) as pool:
        with EventPushServer(pool, port=0) as server:
            host, port = server.address
            with PushClient(host, port, timeout=120.0) as client:
                start = time.perf_counter()
                peak_stats = push_all(client)
                assert pool.drain(timeout=120.0)
                push_seconds = time.perf_counter() - start
            pooled = pool.report()
            final_stats = pool.stats()

    assert peak_stats["sessions_active"] == SESSIONS  # all open at once
    assert final_stats["busy_rejections"] == 0  # the run never hit BUSY
    assert final_stats["events_processed"] == total_events

    # Byte-identity against one monitor fed the sessions sequentially in
    # admission order (admission order == session index: round 0 opens them
    # in index order).
    start = time.perf_counter()
    reference_reports = []
    for index in range(SESSIONS):
        reference = StreamingMonitor(compiled, first_trace_index=index)
        reference.begin_trace(name=f"s{index}")
        for event in _session_events(index):
            reference.feed(event)
        reference_reports.append(reference.end_trace())
    reference_report = MonitoringReport.merge_all(reference_reports)
    reference_seconds = time.perf_counter() - start
    assert _report_bytes(pooled) == _report_bytes(reference_report)
    assert pooled.violation_count > 0  # the stream exercises both outcomes

    # The pytest-benchmark probe: one extra full push run on a fresh stack.
    def probe():
        with MonitorPool(compiled, shards=POOL_SHARDS, queue_depth=POOL_QUEUE_DEPTH) as p:
            with EventPushServer(p, port=0) as s:
                with PushClient(*s.address, timeout=120.0) as c:
                    push_all(c)
                p.drain(timeout=120.0)

    benchmark.pedantic(probe, rounds=1, iterations=1)

    events_per_second = int(total_events / push_seconds) if push_seconds > 0 else None
    sessions_per_second = int(SESSIONS / push_seconds) if push_seconds > 0 else None
    payload = {
        "benchmark": "serving_sessions",
        "workload": {
            "sequences": SESSIONS,
            "events": total_events,
            "families": FAMILIES,
            "rules": len(rules),
            "scale": SCALE,
            "host_cpus": os.cpu_count(),
        },
        "pool": {"shards": POOL_SHARDS, "queue_depth": POOL_QUEUE_DEPTH},
        "serving": {
            "concurrent_sessions": SESSIONS,
            "push_seconds": round(push_seconds, 4),
            "events_per_second": events_per_second,
            "sessions_per_second": sessions_per_second,
            "reference_seconds": round(reference_seconds, 4),
            "total_points": pooled.total_points,
            "violations": pooled.violation_count,
            "report_byte_identical": True,
        },
        # The optimised-path cost the regression gate watches.
        "wall_clock_seconds": round(push_seconds, 4),
    }
    append_bench_record(JSON_PATH, payload)

    lines = [
        f"workload: {SESSIONS} concurrent logical sessions, {total_events} events, "
        f"{len(rules)} rules (scale {SCALE})",
        f"pool: {POOL_SHARDS} shards, queue depth {POOL_QUEUE_DEPTH}",
        f"push: {push_seconds:.3f}s ({events_per_second} events/s, "
        f"{sessions_per_second} sessions/s over one pipelined TCP connection)",
        f"peak concurrent sessions: {peak_stats['sessions_active']}",
        f"reference single monitor: {reference_seconds:.3f}s (byte-identical report)",
        f"points: {pooled.total_points}, violations: {pooled.violation_count}",
        f"json: {JSON_PATH.name}",
    ]
    write_result("serving_sessions", "\n".join(lines))

    if SCALE >= 1.0:
        assert SESSIONS >= 10_000, "canonical scale must exercise >= 10k sessions"


# --------------------------------------------------------------------- #
# Recovery latency of the supervised pool
# --------------------------------------------------------------------- #
#: Kill-and-recover cycles measured (the record keeps the median).
RECOVERY_ROUNDS = 5
RECOVERY_SHARDS = 2
#: Supervisor poll interval for the recovery run; the floor of any
#: recovery latency is one poll period.
RECOVERY_SUPERVISOR_INTERVAL = 0.01


def _session_routed_to(pool, shard_index: int, prefix: str) -> str:
    for attempt in range(100_000):
        session_id = f"{prefix}-{attempt}"
        if pool.route(session_id) == shard_index:
            return session_id
    raise AssertionError(f"no session id hashed to shard {shard_index}")


def bench_serving_recovery(benchmark):
    """Shard-kill -> first successfully served event after the restart.

    Uses the ``pool.shard`` fault point to crash a shard worker mid-run,
    then measures until the supervisor has restarted it, answered
    ``SESSION_LOST`` for the victim session, and the restarted shard has
    served a re-admitted session end to end (the ``SESSION`` reply proves
    the event was processed, not merely enqueued).  A bystander session on
    the surviving shard must keep being served throughout.
    """
    from repro.serving import EventPushServer, MonitorPool, PushClient
    from repro.testing import faults

    corpus = _mining_corpus()
    rules = NonRedundantRecurrentRuleMiner(MINING_CONFIG).mine(corpus).rules
    assert rules, "the bench fixture must mine a non-trivial rule set"
    compiled = compile_rules(rules)
    events = _family_body(0) + ["f0.commit"]

    def one_recovery(pool, client, round_index):
        victim = _session_routed_to(pool, 0, f"victim-{round_index}")
        bystander = _session_routed_to(pool, 1, f"bystander-{round_index}")
        for event in events[:-1]:
            assert client.feed(victim, event)["op"] == "OK"
        assert pool.drain(timeout=30.0)
        faults.install("pool.shard", "raise", key="0", count=1)
        start = time.perf_counter()
        assert client.feed(victim, events[0])["op"] == "OK"  # enqueue kills the worker
        assert client.feed(bystander, events[0])["op"] == "OK"  # shard 1 unaffected
        while True:  # SESSION_LOST marks the supervisor's recovery complete
            if client.feed(victim, events[0])["op"] == "SESSION_LOST":
                break
            time.sleep(0.001)
        for event in events:  # re-admitted session on the restarted shard
            assert client.feed(victim, event)["op"] == "OK"
        assert client.end(victim, limit=0)["op"] == "SESSION"
        elapsed = time.perf_counter() - start
        assert client.end(bystander, limit=0)["op"] == "SESSION"
        return elapsed

    try:
        with MonitorPool(
            compiled,
            shards=RECOVERY_SHARDS,
            supervisor_interval=RECOVERY_SUPERVISOR_INTERVAL,
        ) as pool:
            with EventPushServer(pool, port=0) as server:
                with PushClient(*server.address, timeout=30.0) as client:
                    latencies = [
                        one_recovery(pool, client, round_index)
                        for round_index in range(RECOVERY_ROUNDS)
                    ]
                    stats = client.stats()
        assert stats["restarts"] == RECOVERY_ROUNDS
        assert stats["sessions_lost"] >= RECOVERY_ROUNDS

        # The pytest-benchmark probe: one extra cycle on a fresh stack.
        def probe():
            with MonitorPool(
                compiled,
                shards=RECOVERY_SHARDS,
                supervisor_interval=RECOVERY_SUPERVISOR_INTERVAL,
            ) as p:
                with EventPushServer(p, port=0) as s:
                    with PushClient(*s.address, timeout=30.0) as c:
                        one_recovery(p, c, RECOVERY_ROUNDS)

        benchmark.pedantic(probe, rounds=1, iterations=1)
    finally:
        faults.reset()

    latencies.sort()
    median = latencies[len(latencies) // 2]
    payload = {
        "benchmark": "serving_recovery",
        "workload": {
            "rules": len(rules),
            "rounds": RECOVERY_ROUNDS,
            "scale": SCALE,
            "host_cpus": os.cpu_count(),
        },
        "pool": {
            "shards": RECOVERY_SHARDS,
            "supervisor_interval": RECOVERY_SUPERVISOR_INTERVAL,
        },
        "recovery": {
            "median_seconds": round(median, 4),
            "min_seconds": round(latencies[0], 4),
            "max_seconds": round(latencies[-1], 4),
            "restarts": stats["restarts"],
            "sessions_lost": stats["sessions_lost"],
        },
        # The cost the regression gate watches: median kill-to-served latency.
        "wall_clock_seconds": round(median, 4),
    }
    append_bench_record(JSON_PATH, payload)

    lines = [
        f"workload: {RECOVERY_ROUNDS} shard-kill cycles, {len(rules)} rules "
        f"(scale {SCALE})",
        f"pool: {RECOVERY_SHARDS} shards, supervisor interval "
        f"{RECOVERY_SUPERVISOR_INTERVAL * 1000:.0f} ms",
        f"recovery latency (kill -> first served event): median {median * 1000:.1f} ms, "
        f"min {latencies[0] * 1000:.1f} ms, max {latencies[-1] * 1000:.1f} ms",
        f"restarts: {stats['restarts']}, sessions lost: {stats['sessions_lost']}",
        f"json: {JSON_PATH.name}",
    ]
    write_result("serving_recovery", "\n".join(lines))
