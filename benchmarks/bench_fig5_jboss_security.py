"""Figure 5: the recurrent rule mined from the JBoss security component.

Runs the non-redundant recurrent-rule miner over the simulated JAAS
security-component traces and checks that the Figure 5 rule — premise
``XmlLoginCI.getConfEntry, AuthenInfo.getName`` followed eventually by the
twelve-event login / principal-binding / credential-use consequent — is
recovered.  The premise alphabet is focused on the configuration-lookup
events (the "domain knowledge" feedback of Section 8), mirroring how the
case study targets the authentication scenario.
"""

from repro.jboss.reference import FIGURE5_CONSEQUENT, FIGURE5_PREMISE
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.specs.render import render_rule

from conftest import write_result


def _config():
    return RuleMiningConfig(
        min_s_support=0.5,
        min_confidence=0.5,
        min_i_support=1,
        max_premise_length=2,
        allowed_premise_events=frozenset(FIGURE5_PREMISE),
    )


def bench_fig5_jboss_security(benchmark, jboss_security_database):
    result = NonRedundantRecurrentRuleMiner(_config()).mine(jboss_security_database)
    rule = result.find(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)

    assert rule is not None, "the Figure 5 rule was not mined"
    text = "\n".join(
        [
            f"traces: {len(jboss_security_database)} simulated JBoss security traces",
            f"non-redundant rules mined: {len(result)}",
            "",
            "Figure 5 rule as mined:",
            render_rule(rule),
            "",
            f"LTL form: {rule.to_ltl()}",
        ]
    )
    write_result("fig5_jboss_security", text)

    assert rule.s_support >= result.min_s_support
    assert rule.i_support >= 1
    assert 0.5 <= rule.confidence <= 1.0
    assert len(rule.premise) == 2 and len(rule.consequent) == 12

    benchmark.pedantic(
        lambda: NonRedundantRecurrentRuleMiner(_config()).mine(jboss_security_database),
        rounds=1,
        iterations=1,
    )
