"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The synthetic
dataset is the paper's D5C20N10S20 profile scaled by ``REPRO_BENCH_SCALE``
(default 0.02 so the whole suite finishes on a laptop; set it to 1.0 for a
paper-sized run).  Each benchmark prints the regenerated rows/series and also
writes them to ``benchmarks/results/<name>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro.datagen.profiles import PAPER_PROFILE, generate_profile
from repro.jboss.workloads import (
    SecurityWorkloadConfig,
    TransactionWorkloadConfig,
    generate_security_traces,
    generate_transaction_traces,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale applied to the paper's D5C20N10S20 profile (D and N shrink, C and S stay).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


def write_result(name: str, text: str) -> None:
    """Print a benchmark's regenerated rows and persist them under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}\n")


def append_bench_record(json_path: Path, record: Dict) -> None:
    """Append one run record to a JSON trajectory file.

    The file holds a list of records — the perf trajectory PR over PR, not
    just the latest run — so regressions are visible in history and the
    regression gate (``check_bench_regression.py``) can compare the newest
    record against its predecessor.  A legacy single-object file (the PR 2
    format) is adopted as the trajectory's first record.
    """
    records = []
    if json_path.exists():
        existing = json.loads(json_path.read_text(encoding="utf-8"))
        records = existing if isinstance(existing, list) else [existing]
    records.append(record)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def synthetic_database():
    """The scaled D5C20N10S20 dataset used by Figures 1-3."""
    return generate_profile(PAPER_PROFILE, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def jboss_transaction_database():
    """Simulated JBoss transaction-component traces (Figure 4 case study)."""
    config = TransactionWorkloadConfig(
        num_traces=24,
        min_transactions_per_trace=1,
        max_transactions_per_trace=1,
        rollback_probability=0.25,
        seed=77,
    )
    return generate_transaction_traces(config)


@pytest.fixture(scope="session")
def jboss_security_database():
    """Simulated JBoss security-component traces (Figure 5 case study)."""
    return generate_security_traces(SecurityWorkloadConfig(num_traces=24, seed=99))
