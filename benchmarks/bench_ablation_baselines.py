"""Ablation: the related-work baselines the paper argues against (Section 2).

Two comparisons on the same traces back the paper's qualitative claims:

* **the window barrier** — WINEPI-style episode mining cannot see a
  lock/unlock-style behaviour whose events lie further apart than the window,
  while iterative pattern mining recovers it regardless of the distance;
* **two-event rules only** — the Perracotta-style baseline (ref [33]) can
  only produce 1 -> 1 rules, whereas the recurrent-rule miner recovers the
  multi-event JAAS rule of Figure 5 from the same security traces.
"""

from repro.analysis.reporting import format_table
from repro.core.sequence import SequenceDatabase
from repro.core.stats import Timer
from repro.episodes.windows import WinepiMiner
from repro.jboss.reference import FIGURE5_CONSEQUENT, FIGURE5_PREMISE
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.sequential.rules import TwoEventRuleMiner

from conftest import write_result


def _lock_unlock_database() -> SequenceDatabase:
    """Traces where acquire/release are separated by many unrelated events.

    The in-between work is unique to each trace so that the pair
    ``<acquire, release>`` itself is the closed pattern (nothing can be
    inserted into it across all traces), while the distance between the two
    events exceeds any reasonable episode window.
    """
    sequences = []
    for trace_index, spacing in enumerate(range(3, 11)):
        filler = [f"work_{trace_index}_{i}" for i in range(spacing)]
        sequences.append(["acquire"] + filler + ["release"])
    return SequenceDatabase.from_sequences(sequences)


def bench_ablation_window_barrier(benchmark):
    database = _lock_unlock_database()
    window_width = 4

    with Timer() as episode_timer:
        episodes = WinepiMiner(window_width=window_width, min_support=len(database)).mine(database)
    with Timer() as pattern_timer:
        patterns = ClosedIterativePatternMiner(
            IterativeMiningConfig(min_support=len(database), collect_instances=False)
        ).mine(database)

    rows = [
        {
            "technique": f"WINEPI episodes (window={window_width})",
            "finds <acquire, release>": episodes.support_of(("acquire", "release")) is not None,
            "results": len(episodes),
            "runtime (s)": episode_timer.seconds,
        },
        {
            "technique": "closed iterative patterns",
            "finds <acquire, release>": patterns.contains(("acquire", "release")),
            "results": len(patterns),
            "runtime (s)": pattern_timer.seconds,
        },
    ]
    write_result("ablation_window_barrier", format_table(rows))

    assert episodes.support_of(("acquire", "release")) is None
    assert patterns.contains(("acquire", "release"))

    benchmark.pedantic(
        lambda: ClosedIterativePatternMiner(
            IterativeMiningConfig(min_support=len(database), collect_instances=False)
        ).mine(database),
        rounds=1,
        iterations=1,
    )


def bench_ablation_two_event_baseline(benchmark, jboss_security_database):
    with Timer() as baseline_timer:
        two_event = TwoEventRuleMiner(min_s_support=0.5, min_confidence=0.5).mine(
            jboss_security_database
        )
    config = RuleMiningConfig(
        min_s_support=0.5,
        min_confidence=0.5,
        max_premise_length=2,
        allowed_premise_events=frozenset(FIGURE5_PREMISE),
    )
    with Timer() as recurrent_timer:
        recurrent = NonRedundantRecurrentRuleMiner(config).mine(jboss_security_database)

    longest_two_event = max((len(rule) for rule in two_event.rules), default=0)
    rows = [
        {
            "technique": "two-event rules (Perracotta-style baseline)",
            "rules": len(two_event),
            "longest rule (events)": longest_two_event,
            "recovers Figure 5 rule": False,
            "runtime (s)": baseline_timer.seconds,
        },
        {
            "technique": "non-redundant recurrent rules",
            "rules": len(recurrent),
            "longest rule (events)": len(recurrent.longest()) if recurrent.rules else 0,
            "recovers Figure 5 rule": recurrent.contains(FIGURE5_PREMISE, FIGURE5_CONSEQUENT),
            "runtime (s)": recurrent_timer.seconds,
        },
    ]
    write_result("ablation_two_event_baseline", format_table(rows))

    assert longest_two_event <= 2
    assert recurrent.contains(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)

    benchmark.pedantic(
        lambda: TwoEventRuleMiner(min_s_support=0.5, min_confidence=0.5).mine(
            jboss_security_database
        ),
        rounds=1,
        iterations=1,
    )
