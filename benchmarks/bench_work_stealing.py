"""Work-stealing vs. static LPT sharding on a skewed search space.

The workload is engineered so the static plan *cannot* win: a hot
five-event loop alphabet owns the entire closed-pattern search tree (the
noise events never clear the support threshold), leaving exactly five
heavy first-level roots for four workers.  Roots are the static plan's
smallest unit of work, so LPT is floored at two whole subtrees on one
straggler worker — ~40% of the serial wall clock — no matter how it packs.
The stealing backend subdivides the straggler's subtree on demand and
keeps the whole pool busy to the end (~25% plus steal overhead).

Three backends run the closed iterative-pattern miner on the same data:
serial (reference), the static ``process`` pool, and ``stealing`` — every
parallel result is checked bit-identical to the serial reference, and the
run record (serial / process / stealing wall clocks, the stealing:process
ratio, and the split counters) is appended to the ``BENCH_hot_paths.json``
trajectory next to the hot-loop records.

Scale with ``REPRO_STEALING_SCALE`` (default 1.0, a sub-minute run at 4
workers).  The ≥1.5x stealing-vs-process assertion only fires on hosts
that can physically deliver it (>= 4 CPUs and a serial run long enough to
measure), or always with ``REPRO_REQUIRE_SPEEDUP=1``.
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path

from repro.core.sequence import SequenceDatabase
from repro.engine import ProcessPoolBackend, SerialBackend, WorkStealingBackend
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig

from conftest import append_bench_record, write_result

SCALE = float(os.environ.get("REPRO_STEALING_SCALE", "1.0"))
WORKERS = 4
REPO_ROOT = Path(__file__).resolve().parents[1]
#: Canonical-scale runs append to the tracked trajectory; smoke runs at
#: other scales append to a results-local copy instead.
JSON_PATH = (
    REPO_ROOT / "BENCH_hot_paths.json"
    if SCALE == 1.0
    else Path(__file__).parent / "results" / "BENCH_hot_paths.json"
)

#: The hot loop body: five events, each a heavy first-level root.  With
#: four workers the static plan must hand two of these indivisible
#: subtrees to one straggler.
LOOP_BODY = tuple(range(5))
NOISE_ALPHABET = tuple(range(20, 32))
NOISE_RATE = 0.2
MAX_PATTERN_LENGTH = 12


def _generate_skewed_workload(scale: float):
    """Deterministic skewed-alphabet traces: the hot loop owns the tree.

    Every trace repeats the five-event loop body with interleaved rare
    noise; noise events never reach the support threshold, so the plan
    sees exactly ``len(LOOP_BODY)`` frequent roots of near-equal heavy
    cost — maximal quantisation skew for a four-worker static plan.
    """
    rng = random.Random(20080824)
    num_sequences = max(4, int(40 * scale))
    repeats = max(3, int(64 * scale))
    sequences = []
    for _ in range(num_sequences):
        events = []
        for _ in range(repeats):
            for event in LOOP_BODY:
                while rng.random() < NOISE_RATE:
                    events.append(rng.choice(NOISE_ALPHABET))
                events.append(event)
        sequences.append([str(event) for event in events])
    min_support = max(2, (num_sequences * repeats) // 2)
    return sequences, min_support


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def bench_work_stealing(benchmark):
    sequences, min_support = _generate_skewed_workload(SCALE)
    database = SequenceDatabase.from_sequences(sequences)
    total_events = sum(len(sequence) for sequence in sequences)
    miner = ClosedIterativePatternMiner(
        IterativeMiningConfig(
            min_support=float(min_support),
            max_pattern_length=MAX_PATTERN_LENGTH,
            collect_instances=False,
            adjacent_absorption_pruning=False,
        )
    )

    serial_result, serial_seconds = _timed(
        lambda: miner.mine(database, backend=SerialBackend())
    )
    process_backend = ProcessPoolBackend(workers=WORKERS)
    process_result, process_seconds = _timed(
        lambda: miner.mine(database, backend=process_backend)
    )
    stealing_backend = WorkStealingBackend(workers=WORKERS)

    def mine_stealing():
        return miner.mine(database, backend=stealing_backend)

    stealing_result, stealing_seconds = _timed(
        lambda: benchmark.pedantic(mine_stealing, rounds=1, iterations=1)
    )

    assert process_result.patterns == serial_result.patterns, (
        "process backend diverged from serial on the skewed workload"
    )
    assert stealing_result.patterns == serial_result.patterns, (
        "stealing backend diverged from serial on the skewed workload"
    )

    stealing_vs_process = (
        process_seconds / stealing_seconds if stealing_seconds > 0 else float("inf")
    )
    units_split = int(stealing_result.stats.extra.get("units_split", 0))
    closure_offloads = int(stealing_result.stats.extra.get("closure_offloads", 0))

    # Only falsifiable on hardware that can deliver parallelism: enough
    # physical cores and a serial run that dwarfs pool start-up.  Smoke
    # runs (tiny scales, 1-2 CPU containers) still verify parity, and the
    # recorded flag tells trajectory readers whether this record's ratio
    # carries the speedup claim or is parity-only data from a small host.
    must_assert = os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or (
        (os.cpu_count() or 1) >= 4 and serial_seconds >= 2.0
    )

    record = {
        "benchmark": "work_stealing",
        "workload": {
            "sequences": len(sequences),
            "events": total_events,
            "min_support": min_support,
            "scale": SCALE,
            "workers": WORKERS,
            "host_cpus": os.cpu_count(),
        },
        "patterns": len(serial_result),
        "serial_seconds": round(serial_seconds, 4),
        "process_seconds": round(process_seconds, 4),
        "stealing_seconds": round(stealing_seconds, 4),
        "stealing_vs_process": round(stealing_vs_process, 2),
        "units_split": units_split,
        "closure_offloads": closure_offloads,
        "speedup_asserted": must_assert,
        "wall_clock_seconds": round(stealing_seconds, 4),
    }
    append_bench_record(JSON_PATH, record)

    lines = [
        f"workload: {len(sequences)} sequences, {total_events} events, "
        f"min_support={min_support} (scale {SCALE}), "
        f"{len(LOOP_BODY)} hot roots for {WORKERS} workers",
        f"{'backend':<34} {'seconds':>9} {'vs serial':>10}",
        f"{'serial':<34} {serial_seconds:>9.2f} {'1.00x':>10}",
        f"{process_backend.describe():<34} {process_seconds:>9.2f} "
        f"{serial_seconds / process_seconds if process_seconds else float('inf'):>9.2f}x",
        f"{stealing_backend.describe():<34} {stealing_seconds:>9.2f} "
        f"{serial_seconds / stealing_seconds if stealing_seconds else float('inf'):>9.2f}x",
        f"stealing vs process: {stealing_vs_process:.2f}x "
        f"(units_split={units_split}, closure_offloads={closure_offloads}, "
        f"speedup_asserted={must_assert})",
        "parity: both parallel backends bit-identical to serial",
        f"json: {JSON_PATH.name}",
    ]
    write_result("work_stealing", "\n".join(lines))

    if must_assert:
        assert stealing_vs_process >= 1.5, (
            f"expected the stealing backend to beat static LPT by >=1.5x on the "
            f"skewed workload, got {stealing_vs_process:.2f}x"
        )
