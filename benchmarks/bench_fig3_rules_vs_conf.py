"""Figure 3: recurrent rule mining — runtime and number of rules vs min_conf.

Reproduces the Full-vs-NR comparison of Figure 3(a)/(b): the confidence
threshold is swept (the paper uses 50%-90%) at a fixed min_s-sup and
min_i-sup = 1.  Same dataset as the Figure 2 benchmark; rules of arbitrary
length are mined, as in the paper.
"""

from repro.analysis.compare import headline_ratios
from repro.analysis.experiment import rule_sweep_vs_confidence
from repro.analysis.reporting import format_sweep
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner

from conftest import BENCH_SCALE, write_result

MIN_CONFIDENCES = [0.9, 0.8, 0.7, 0.6, 0.5]
MIN_S_SUPPORT = 0.22
MAX_PREMISE = None
MAX_CONSEQUENT = None


def bench_fig3_rules_vs_conf(benchmark, synthetic_database):
    rows = rule_sweep_vs_confidence(
        synthetic_database,
        MIN_CONFIDENCES,
        min_s_support=MIN_S_SUPPORT,
        min_i_support=1,
        max_premise_length=MAX_PREMISE,
        max_consequent_length=MAX_CONSEQUENT,
    )
    ratios = headline_ratios(rows)
    text = "\n".join(
        [
            f"dataset: D5C20N10S20 scaled by {BENCH_SCALE}; min_s-sup={MIN_S_SUPPORT}, "
            "min_i-sup=1, rules of arbitrary length",
            format_sweep(rows, baseline_label="Full", proposed_label="NR"),
            f"headline: {ratios.describe('rules')}",
            "paper:    Figure 3 shows the same ordering across min_conf = 50%..90%",
        ]
    )
    write_result("fig3_rules_vs_conf", text)

    for row in rows:
        assert row.proposed_count <= row.baseline_count
    # Lowering the confidence threshold can only admit more rules.
    assert rows[-1].baseline_count >= rows[0].baseline_count
    assert rows[-1].proposed_count >= rows[0].proposed_count

    config = RuleMiningConfig(
        min_s_support=MIN_S_SUPPORT,
        min_confidence=MIN_CONFIDENCES[0],
        min_i_support=1,
        max_premise_length=MAX_PREMISE,
        max_consequent_length=MAX_CONSEQUENT,
    )
    benchmark.pedantic(
        lambda: NonRedundantRecurrentRuleMiner(config).mine(synthetic_database),
        rounds=1,
        iterations=1,
    )
