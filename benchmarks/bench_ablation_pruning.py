"""Ablation: effect of the search-space prunings on the closed pattern miner.

DESIGN.md calls out two design choices whose effect this benchmark isolates
on the scaled synthetic dataset:

* *adjacent absorption pruning* — follow the deterministic continuation of a
  pattern instead of branching over every frequent extension (this is what
  makes the long-protocol JBoss case study tractable);
* *the infix closedness check* — reject patterns that a same-support infix
  insertion absorbs (most of the output-size reduction comes from it).
"""

from repro.analysis.reporting import format_table
from repro.core.stats import Timer
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig

from conftest import write_result

MIN_SUPPORT = 0.12


def _run(database, absorption: bool, infix: bool):
    config = IterativeMiningConfig(
        min_support=MIN_SUPPORT,
        collect_instances=False,
        adjacent_absorption_pruning=absorption,
        check_infix_extensions=infix,
    )
    with Timer() as timer:
        result = ClosedIterativePatternMiner(config).mine(database)
    return {
        "absorption pruning": absorption,
        "infix check": infix,
        "patterns": len(result),
        "nodes visited": result.stats.visited,
        "runtime (s)": timer.seconds,
    }


def bench_ablation_pruning(benchmark, synthetic_database):
    rows = [
        _run(synthetic_database, absorption=True, infix=True),
        _run(synthetic_database, absorption=True, infix=False),
        _run(synthetic_database, absorption=False, infix=True),
    ]
    write_result("ablation_pruning", format_table(rows))

    with_absorption, without_infix, without_absorption = rows
    # Absorption pruning explores at most as many nodes and can only narrow
    # (never widen) the emitted set.
    assert with_absorption["nodes visited"] <= without_absorption["nodes visited"]
    assert with_absorption["patterns"] <= without_absorption["patterns"]
    # Dropping the infix check can only increase the emitted pattern count.
    assert without_infix["patterns"] >= with_absorption["patterns"]

    benchmark.pedantic(
        lambda: _run(synthetic_database, absorption=True, infix=True),
        rounds=1,
        iterations=1,
    )
