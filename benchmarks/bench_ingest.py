"""Streaming ingestion + incremental mining benchmark.

Two claims of the ingest subsystem are measured:

* **ingestion throughput** — events/second for streaming a trace file
  through the format adapters into a :class:`TraceStore`, per format
  (text, jsonl, csv, and a gzip-wrapped variant), parsing one trace at a
  time with bounded memory;
* **incremental re-mine speedup** — on a skewed append (a batch touching
  a small fraction of the first-level roots), :class:`IncrementalMiner`
  must re-mine strictly fewer roots than a from-scratch run and finish
  proportionally faster, with bit-identical output.  Both properties are
  asserted, not just recorded.

Results go to ``benchmarks/results/ingest.txt`` and are appended as one
run record to the ``BENCH_hot_paths.json`` trajectory at the repository
root (``check_bench_regression.py`` compares the newest record against its
predecessor within the same workload/host lineage; smoke scales write to
``benchmarks/results/`` instead so they never pollute the canonical
lineage).  The regression gate watches ``wall_clock_seconds`` = the
incremental refresh, the path this subsystem optimises.

Scale with ``REPRO_INGEST_SCALE`` (default 1.0; the default workload runs
in a few seconds on a laptop).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.ingest import IncrementalMiner, TraceStore, TraceRecord, write_trace_records
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig

from conftest import append_bench_record, write_result

SCALE = float(os.environ.get("REPRO_INGEST_SCALE", "1.0"))
REPO_ROOT = Path(__file__).resolve().parents[1]
CANONICAL_SCALE = SCALE == 1.0
JSON_PATH = (
    REPO_ROOT / "BENCH_hot_paths.json"
    if CANONICAL_SCALE
    else Path(__file__).parent / "results" / "BENCH_hot_paths.json"
)

#: First-level roots in the base corpus; the skewed append touches one.
NUM_ROOTS = 24
#: Events per root-local loop body and loop repeats per trace.
LOOP_BODY = 6
REPEATS = 8
MIN_SUPPORT = 4
MAX_PATTERN_LENGTH = 8

#: Throughput corpus size.
THROUGHPUT_TRACES = max(8, int(200 * SCALE))
THROUGHPUT_EVENTS_PER_TRACE = 120


def _root_trace(root: int) -> list:
    """A repetitive trace whose alphabet is private to ``root``.

    Private alphabets keep the first-level subtrees disjoint, so a batch
    appended for one root leaves every other root's support untouched —
    the skew the incremental miner is built to exploit.
    """
    body = [f"r{root}.e{i}" for i in range(LOOP_BODY)]
    return body * REPEATS


def _base_corpus(scale: float) -> list:
    traces_per_root = max(2, int(6 * scale))
    corpus = []
    for root in range(NUM_ROOTS):
        corpus.extend(_root_trace(root) for _ in range(traces_per_root))
    return corpus


def _throughput_records() -> list:
    events = [f"ev{i}" for i in range(64)]
    return [
        TraceRecord(
            tuple(events[(trace * 7 + step) % len(events)] for step in range(THROUGHPUT_EVENTS_PER_TRACE)),
            f"trace-{trace}",
        )
        for trace in range(THROUGHPUT_TRACES)
    ]


def _time_ingest(tmp: Path, filename: str, records: list) -> dict:
    path = tmp / filename
    write_trace_records(path, records)
    store = TraceStore(tmp / f"store-{filename}")
    start = time.perf_counter()
    info = store.append_trace_file(path)
    elapsed = time.perf_counter() - start
    return {
        "format": filename.split(".", 1)[1],
        "traces": info.traces,
        "events": info.events,
        "file_bytes": path.stat().st_size,
        "seconds": round(elapsed, 4),
        "events_per_second": int(info.events / elapsed) if elapsed > 0 else None,
    }


def bench_ingest(benchmark):
    miner_config = IterativeMiningConfig(
        min_support=float(MIN_SUPPORT), max_pattern_length=MAX_PATTERN_LENGTH
    )
    with tempfile.TemporaryDirectory() as raw_tmp:
        tmp = Path(raw_tmp)

        # ------------------------------------------------------------- #
        # 1. Streaming ingestion throughput per format.
        # ------------------------------------------------------------- #
        records = _throughput_records()
        ingest_rows = [
            _time_ingest(tmp, filename, records)
            for filename in ("t.txt", "t.jsonl", "t.csv", "t.jsonl.gz")
        ]

        # ------------------------------------------------------------- #
        # 2. Incremental vs. full re-mine on a skewed append.
        # ------------------------------------------------------------- #
        store = TraceStore(tmp / "store")
        store.append_batch(_base_corpus(SCALE))
        incremental = IncrementalMiner(ClosedIterativePatternMiner(miner_config), store)
        _, initial_report = incremental.refresh()

        append = [_root_trace(0) for _ in range(2)]
        store.append_batch(append)

        start = time.perf_counter()
        result, report = incremental.refresh()
        incremental_seconds = time.perf_counter() - start

        start = time.perf_counter()
        full = ClosedIterativePatternMiner(miner_config).mine(store.snapshot())
        full_seconds = time.perf_counter() - start

        # Correctness first: delta output identical, strictly fewer roots.
        assert result.patterns == full.patterns
        assert report.roots_remined < report.roots_total, report
        assert not report.full_remine

        # One extra refresh as the pytest-benchmark probe (no-op delta).
        benchmark.pedantic(incremental.refresh, rounds=1, iterations=1)

    speedup = full_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    corpus_events = store.total_events()
    payload = {
        "benchmark": "ingest",
        "workload": {
            "sequences": len(store),
            "events": corpus_events,
            "roots": NUM_ROOTS,
            "loop_body": LOOP_BODY,
            "repeats": REPEATS,
            "min_support": MIN_SUPPORT,
            "max_pattern_length": MAX_PATTERN_LENGTH,
            "scale": SCALE,
            "host_cpus": os.cpu_count(),
        },
        "ingest_throughput": ingest_rows,
        "incremental": {
            "initial_roots": initial_report.roots_total,
            "roots_total": report.roots_total,
            "roots_remined": report.roots_remined,
            "traces_appended": report.traces_added,
            "incremental_seconds": round(incremental_seconds, 4),
            "full_seconds": round(full_seconds, 4),
            "speedup": round(speedup, 2),
            "patterns": len(result.patterns),
        },
        # The optimised-path cost the regression gate watches.
        "wall_clock_seconds": round(incremental_seconds, 4),
    }
    append_bench_record(JSON_PATH, payload)

    lines = [
        f"workload: {len(store)} traces, {corpus_events} events, {NUM_ROOTS} roots, "
        f"min_support={MIN_SUPPORT} (scale {SCALE})",
        f"{'format':<10} {'traces':>7} {'events':>8} {'bytes':>9} {'seconds':>8} {'events/s':>10}",
    ]
    for row in ingest_rows:
        lines.append(
            f"{row['format']:<10} {row['traces']:>7} {row['events']:>8} "
            f"{row['file_bytes']:>9} {row['seconds']:>8.3f} {row['events_per_second']:>10}"
        )
    lines += [
        f"incremental re-mine: {report.roots_remined}/{report.roots_total} roots, "
        f"{incremental_seconds:.3f}s vs full {full_seconds:.3f}s ({speedup:.2f}x), "
        "output bit-identical",
        f"json: {JSON_PATH.name}",
    ]
    write_result("ingest", "\n".join(lines))

    # The speedup claim is asserted only on workloads big enough to be
    # falsifiable; smoke scales still assert bit-identity and root counts.
    if os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or SCALE >= 1.0:
        assert speedup >= 2.0, f"expected >=2x incremental speedup, got {speedup:.2f}x"
