"""Checkpoint-journal overhead on the canonical mine.

Runs the same closed-pattern mine three ways on the single-process
stealing backend (the configuration where journal appends sit directly on
the mining path, so the measured overhead is an upper bound):

* **baseline** — no checkpoint attached;
* **journaled** — a fresh :class:`~repro.durability.checkpoint.MiningCheckpoint`
  per run, every completed unit appended and periodically fsynced;
* **resume** — re-running against the completed journal (everything
  cached, nothing re-mined) — the payoff side of the ledger.

All three produce bit-identical pattern rows.  The record appended to the
``BENCH_hot_paths.json`` trajectory keys on ``benchmark: "checkpoint"``,
so the regression gate tracks the journaled wall clock PR over PR in its
own lineage.  The <10% overhead contract is asserted at canonical scale
(or under ``REPRO_REQUIRE_SPEEDUP=1``); smoke scales only verify
bit-identity, since sub-second runs make the ratio noise.

Scale with ``REPRO_CHECKPOINT_SCALE`` (default 1.0).
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path

from repro.core.sequence import SequenceDatabase
from repro.durability.checkpoint import MiningCheckpoint
from repro.engine import WorkStealingBackend
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig

from conftest import append_bench_record, write_result

SCALE = float(os.environ.get("REPRO_CHECKPOINT_SCALE", "1.0"))
REPO_ROOT = Path(__file__).resolve().parents[1]
CANONICAL_SCALE = SCALE == 1.0
JSON_PATH = (
    REPO_ROOT / "BENCH_hot_paths.json"
    if CANONICAL_SCALE
    else Path(__file__).parent / "results" / "BENCH_hot_paths.json"
)

LOOP_BODY = tuple(range(8))
NOISE_ALPHABET = tuple(range(20, 32))
NOISE_RATE = 0.15
MAX_PATTERN_LENGTH = 12

IDENTITY = {"database": "bench-checkpoint", "miner": "Closed", "config": "canonical"}


def _generate_workload(scale: float):
    """The hot-paths loop workload: repetitive bodies with seeded noise."""
    rng = random.Random(20080823)
    num_sequences = max(4, int(24 * scale))
    repeats = max(3, int(9 * scale))
    sequences = []
    for _ in range(num_sequences):
        events = []
        for _ in range(repeats):
            for event in LOOP_BODY:
                while rng.random() < NOISE_RATE:
                    events.append(rng.choice(NOISE_ALPHABET))
                events.append(event)
        sequences.append([str(event) for event in events])
    min_support = max(2, (num_sequences * repeats) // 2)
    return SequenceDatabase.from_sequences(sequences), min_support


def _miner(min_support: int) -> ClosedIterativePatternMiner:
    return ClosedIterativePatternMiner(
        IterativeMiningConfig(
            min_support=float(min_support), max_pattern_length=MAX_PATTERN_LENGTH
        )
    )


def _timed_mine(database, min_support, checkpoint=None):
    backend = WorkStealingBackend(workers=1)
    backend.checkpoint = checkpoint
    start = time.perf_counter()
    result = _miner(min_support).mine(database, backend=backend)
    elapsed = time.perf_counter() - start
    return result, elapsed


def bench_checkpoint(benchmark, tmp_path):
    database, min_support = _generate_workload(SCALE)
    total_events = sum(len(database[i]) for i in range(len(database)))
    runs = 4 if SCALE <= 1.0 else 1

    baseline_seconds = journaled_seconds = float("inf")
    baseline = journaled = None
    entries = journal_bytes = 0
    for attempt in range(runs):
        baseline_run, seconds = _timed_mine(database, min_support)
        baseline_seconds = min(baseline_seconds, seconds)
        baseline = baseline_run
        # A fresh journal directory per run: reusing one would resume
        # (measuring nothing) instead of journaling every unit again.
        ckpt_dir = tmp_path / f"ckpt-{attempt}"
        checkpoint = MiningCheckpoint(ckpt_dir, IDENTITY)
        journaled_run, seconds = _timed_mine(database, min_support, checkpoint)
        checkpoint.close()
        journaled_seconds = min(journaled_seconds, seconds)
        journaled = journaled_run
        entries = checkpoint.entries
        journal_bytes = (ckpt_dir / "checkpoint.bin").stat().st_size

    # The payoff: resuming from the last completed journal re-mines nothing.
    resume_checkpoint = MiningCheckpoint(tmp_path / f"ckpt-{runs - 1}", IDENTITY)
    resumed, resume_seconds = _timed_mine(database, min_support, resume_checkpoint)
    resume_checkpoint.close()

    assert journaled.as_rows() == baseline.as_rows()
    assert resumed.as_rows() == baseline.as_rows()
    assert resumed.stats.extra.get("units_resumed", 0) >= 1

    benchmark.pedantic(
        _timed_mine, args=(database, min_support), rounds=1, iterations=1
    )

    overhead = (
        journaled_seconds / baseline_seconds - 1.0 if baseline_seconds > 0 else 0.0
    )
    payload = {
        "benchmark": "checkpoint",
        "workload": {
            "sequences": len(database),
            "events": total_events,
            "min_support": min_support,
            "max_pattern_length": MAX_PATTERN_LENGTH,
            "scale": SCALE,
            "host_cpus": os.cpu_count(),
        },
        "baseline_seconds": round(baseline_seconds, 4),
        "journaled_seconds": round(journaled_seconds, 4),
        "resume_seconds": round(resume_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "journal_entries": entries,
        "journal_bytes": journal_bytes,
        # The regression gate watches the journaled mine: a slowdown here
        # is either the search itself or the durability tax growing.
        "wall_clock_seconds": round(journaled_seconds, 4),
    }
    append_bench_record(JSON_PATH, payload)

    lines = [
        f"workload: {len(database)} sequences, {total_events} events, "
        f"min_support={min_support} (scale {SCALE})",
        f"baseline:   {baseline_seconds:.3f}s",
        f"journaled:  {journaled_seconds:.3f}s ({overhead:+.1%} overhead, "
        f"{entries} entries, {journal_bytes} B)",
        f"resume:     {resume_seconds:.3f}s (all units from the journal)",
        "outputs: bit-identical across baseline, journaled and resumed runs",
        f"json: {JSON_PATH.name}",
    ]
    write_result("checkpoint", "\n".join(lines))

    if os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or SCALE >= 1.0:
        assert overhead < 0.10, (
            f"checkpoint journal overhead {overhead:+.1%} exceeds the 10% budget"
        )
