"""Figure 4: the longest iterative pattern mined from the JBoss transaction component.

Runs the closed iterative-pattern miner over the simulated transaction
component traces and checks that the longest mined pattern is exactly the
32-event connection / tx-manager / transaction set-up / commit / dispose
protocol of Figure 4.  The regenerated pattern is written out block-by-block
in the figure's layout.
"""

from repro.jboss.reference import FIGURE4_PATTERN
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig
from repro.specs.render import render_pattern_blocks

from conftest import write_result

BLOCK_TITLES = (
    "Connection Set Up",
    "Tx Manager Set Up",
    "Transaction Set Up",
    "Transaction Set Up (Con't)",
    "Transaction Commit",
    "Transaction Commit (Con't)",
    "Transaction Dispose",
)

MIN_SUPPORT = 12


def _mine(database):
    config = IterativeMiningConfig(
        min_support=MIN_SUPPORT,
        collect_instances=False,
        adjacent_absorption_pruning=True,
    )
    return ClosedIterativePatternMiner(config).mine(database)


def bench_fig4_jboss_transaction(benchmark, jboss_transaction_database):
    result = _mine(jboss_transaction_database)
    longest = result.longest()

    text = "\n".join(
        [
            f"traces: {len(jboss_transaction_database)} simulated JBoss transaction traces, "
            f"min_sup={MIN_SUPPORT} instances",
            f"closed patterns mined: {len(result)}",
            f"longest pattern: {len(longest)} events, support {longest.support}",
            f"matches Figure 4 exactly: {longest.events == FIGURE4_PATTERN}",
            "",
            render_pattern_blocks(longest.events, BLOCK_TITLES, block_size=5),
        ]
    )
    write_result("fig4_jboss_transaction", text)

    assert result.contains(FIGURE4_PATTERN)
    assert longest.events == FIGURE4_PATTERN
    assert len(longest) == 32

    benchmark.pedantic(lambda: _mine(jboss_transaction_database), rounds=1, iterations=1)
