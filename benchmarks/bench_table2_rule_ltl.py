"""Table 2: rules and their LTL equivalences.

Regenerates the four rows of Table 2 (rule notation -> LTL notation) via
:func:`repro.ltl.translate.rule_to_ltl`, checks them against the paper's
formulae, and benchmarks the round trip rule -> LTL -> rule.
"""

from repro.analysis.reporting import format_table
from repro.core.pattern import format_pattern
from repro.ltl.translate import ltl_to_rule, rule_to_ltl

from conftest import write_result

TABLE2_RULES = [
    (("a",), ("b",)),
    (("a", "b"), ("c",)),
    (("a",), ("b", "c")),
    (("a", "b"), ("c", "d")),
]

PAPER_LTL = [
    "G((a -> XF(b)))",
    "G((a -> XG((b -> XF(c)))))",
    "G((a -> XF((b /\\ XF(c)))))",
    "G((a -> XG((b -> XF((c /\\ XF(d)))))))",
]


def bench_table2_rule_ltl(benchmark):
    rows = []
    for premise, consequent in TABLE2_RULES:
        formula = rule_to_ltl(premise, consequent)
        rows.append(
            {
                "Notation": f"{format_pattern(premise)} -> {format_pattern(consequent)}",
                "LTL Notation": str(formula),
            }
        )
    write_result("table2_rule_ltl", format_table(rows))

    for row, expected in zip(rows, PAPER_LTL):
        assert row["LTL Notation"] == expected
    for premise, consequent in TABLE2_RULES:
        assert ltl_to_rule(rule_to_ltl(premise, consequent)) == (premise, consequent)

    def round_trip():
        return [ltl_to_rule(rule_to_ltl(p, c)) for p, c in TABLE2_RULES]

    benchmark.pedantic(round_trip, rounds=5, iterations=1)
