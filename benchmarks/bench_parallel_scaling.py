"""Parallel engine scaling: speedup vs. worker count on the paper profile.

Runs the closed iterative-pattern miner and the non-redundant rule miner on
the scaled D5C20N10S20 dataset, serially and on the process-pool backend
with increasing worker counts, and reports wall-clock speedups.  Every
parallel run is also checked bit-identical to the serial reference — the
engine's core contract.

The workload scale is ``REPRO_SCALING_SCALE`` (default: the larger of
``REPRO_BENCH_SCALE`` and 0.02, so there is enough work per shard for the
pool to amortise its start-up).  The >1.5x-at-4-workers assertion only
fires on hosts that can physically deliver it (>= 4 CPUs and a serial run
long enough to measure); set ``REPRO_REQUIRE_SPEEDUP=1`` to force it.
"""

import os
import time

from repro.datagen.profiles import PAPER_PROFILE, generate_profile
from repro.engine import ProcessPoolBackend, SerialBackend
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner

from conftest import BENCH_SCALE, write_result

SCALING_SCALE = float(os.environ.get("REPRO_SCALING_SCALE", str(max(BENCH_SCALE, 0.02))))
WORKER_COUNTS = [2, 4]
MIN_SUPPORT = 0.08
MIN_S_SUPPORT = 0.2
MIN_CONFIDENCE = 0.5


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def bench_parallel_scaling(benchmark):
    database = generate_profile(PAPER_PROFILE, scale=SCALING_SCALE)
    pattern_miner = ClosedIterativePatternMiner(
        IterativeMiningConfig(
            min_support=MIN_SUPPORT,
            collect_instances=False,
            adjacent_absorption_pruning=True,
        )
    )
    rule_miner = NonRedundantRecurrentRuleMiner(
        RuleMiningConfig(
            min_s_support=MIN_S_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            max_consequent_length=4,
        )
    )

    lines = [
        f"dataset: D5C20N10S20 scaled by {SCALING_SCALE} ({len(database)} sequences), "
        f"host cpus: {os.cpu_count()}",
        f"{'miner':<10} {'backend':<22} {'seconds':>9} {'speedup':>9} {'results':>9}",
    ]
    speedups = {}
    for name, miner in [("patterns", pattern_miner), ("rules", rule_miner)]:
        reference, serial_seconds = _timed(lambda: miner.mine(database, backend=SerialBackend()))
        lines.append(
            f"{name:<10} {'serial':<22} {serial_seconds:>9.2f} {'1.00x':>9} {len(reference):>9}"
        )
        for workers in WORKER_COUNTS:
            backend = ProcessPoolBackend(workers=workers)

            def mine_once(miner=miner, backend=backend):
                return miner.mine(database, backend=backend)

            if name == "patterns" and workers == WORKER_COUNTS[-1]:
                # The widest pattern run doubles as the pytest-benchmark probe.
                result, seconds = _timed(
                    lambda: benchmark.pedantic(mine_once, rounds=1, iterations=1)
                )
            else:
                result, seconds = _timed(mine_once)
            outputs = getattr(result, "patterns", None)
            reference_outputs = getattr(reference, "patterns", None)
            if outputs is None:
                outputs, reference_outputs = result.rules, reference.rules
            assert outputs == reference_outputs, (
                f"{name} parallel output diverged from serial at {workers} workers"
            )
            speedup = serial_seconds / seconds if seconds > 0 else float("inf")
            speedups[(name, workers)] = (speedup, serial_seconds)
            lines.append(
                f"{name:<10} {backend.describe():<22} {seconds:>9.2f} "
                f"{speedup:>8.2f}x {len(result):>9}"
            )

    lines.append("paper:    parallel output verified bit-identical to serial at every width")
    write_result("parallel_scaling", "\n".join(lines))

    # The speedup claim is only falsifiable on hardware that can deliver it:
    # enough physical cores and a serial run long enough to out-weigh pool
    # start-up.  Smoke runs (tiny scales, 1-2 CPU containers) still verify
    # parity above.
    pattern_speedup, serial_seconds = speedups[("patterns", WORKER_COUNTS[-1])]
    must_assert = os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or (
        (os.cpu_count() or 1) >= 4 and serial_seconds >= 2.0
    )
    if must_assert:
        assert pattern_speedup > 1.5, (
            f"expected >1.5x pattern-mining speedup at 4 workers, got {pattern_speedup:.2f}x"
        )
