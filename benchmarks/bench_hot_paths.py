"""Pattern-growth hot-loop microbenchmark: columnar blocks vs. tuple lists.

Drives the exact per-node work of the iterative-pattern search over a
repetitive loop workload twice: once on the tuple-based reference path
(``List[PatternInstance]`` + per-event boundary scans) and once on the
columnar block path the miners run (``InstanceBlock`` + per-node
``AlphabetIndex`` boundary cache).  Two loops are timed separately:

* the **growth loop** — forward projection + support pruning, the
  full-miner hot path and the core cost driver of Section 4 mining; the
  ≥3x speedup target applies here;
* the **closed loop** — growth plus the forward/backward/infix closedness
  checks.  The infix verification bottoms out in the same exact QRE oracle
  on both paths (deliberately not rewritten — it is the correctness
  anchor), so its speedup is structurally smaller.

Both traversals are asserted bit-identical before any time is reported.
On top of the loop timings the benchmark records the worker-to-coordinator
transfer volume: the pickle size of the mined instance lists in tuple form
vs. block form, plus the engine's own ``instances_materialized`` /
``shipped_bytes`` counters from a real miner run.

Results go to ``benchmarks/results/hot_paths.txt`` (human-readable) and are
*appended* as one run record to the ``BENCH_hot_paths.json`` trajectory at
the repository root — stable, before/after comparable fields so the perf
history of this hot loop accumulates PR over PR (the regression gate in
``check_bench_regression.py`` compares the newest record to its
predecessor).  The ≥3x assertion fires when ``REPRO_REQUIRE_SPEEDUP=1`` or
when the baseline run is long enough to measure reliably; tiny smoke
scales still verify bit-identity.

Scale with ``REPRO_HOTPATH_SCALE`` (default 1.0; the default workload runs
in a few seconds on a laptop).
"""

from __future__ import annotations

import os
import pickle
import random
import time
from pathlib import Path

from repro.core.positions import PositionIndex
from repro.core.projection import (
    AlphabetIndex,
    forward_extensions,
    forward_extensions_block,
    singleton_blocks,
    singleton_instances,
)
from repro.core.sequence import SequenceDatabase
from repro.patterns.closure import is_closed, is_closed_block
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig

from conftest import append_bench_record, write_result

SCALE = float(os.environ.get("REPRO_HOTPATH_SCALE", "1.0"))
REPO_ROOT = Path(__file__).resolve().parents[1]
#: The tracked trajectory file only records canonical-scale runs; smoke runs
#: at other scales write next to the other benchmark outputs instead, so
#: they never clobber the comparable PR-over-PR numbers.
CANONICAL_SCALE = SCALE == 1.0
JSON_PATH = (
    REPO_ROOT / "BENCH_hot_paths.json"
    if CANONICAL_SCALE
    else Path(__file__).parent / "results" / "BENCH_hot_paths.json"
)

#: Loop body repeated through every trace — long instance lists, deep growth
#: with a realistically wide pattern alphabet (the paper's JBoss transaction
#: pattern is 28 events long; boundary queries scale with alphabet size).
LOOP_BODY = tuple(range(8))
NOISE_ALPHABET = tuple(range(20, 32))
NOISE_RATE = 0.15
MAX_PATTERN_LENGTH = 12


def _generate_workload(scale: float):
    """Repetitive loop traces with interleaved noise (seeded, deterministic)."""
    rng = random.Random(20080823)
    num_sequences = max(4, int(24 * scale))
    repeats = max(3, int(9 * scale))
    sequences = []
    for _ in range(num_sequences):
        events = []
        for _ in range(repeats):
            for event in LOOP_BODY:
                while rng.random() < NOISE_RATE:
                    events.append(rng.choice(NOISE_ALPHABET))
                events.append(event)
        sequences.append(tuple(events))
    min_support = max(2, (num_sequences * repeats) // 2)
    return sequences, min_support


def _grow_tuple_path(encoded, index, min_support, closed):
    """The pre-columnar hot loop: projection (+ closure) over instance tuples."""
    nodes = visited_rows = 0
    emitted = []
    singletons = singleton_instances(encoded)

    def grow(pattern, instances):
        nonlocal nodes, visited_rows
        nodes += 1
        visited_rows += len(instances)
        extensions = forward_extensions(encoded, index, pattern, instances)
        at_cap = len(pattern) >= MAX_PATTERN_LENGTH
        if at_cap or not closed or is_closed(encoded, index, pattern, instances, extensions):
            emitted.append((pattern, tuple(instances)))
        if at_cap:
            return
        for event in sorted(extensions):
            extension_instances = extensions[event]
            if len(extension_instances) >= min_support:
                grow(pattern + (event,), extension_instances)

    for event in sorted(singletons):
        instances = singletons[event]
        if len(instances) >= min_support:
            grow((event,), instances)
    return emitted, nodes, visited_rows


def _grow_block_path(encoded, index, min_support, closed):
    """The columnar hot loop: identical traversal over InstanceBlock columns."""
    nodes = visited_rows = 0
    emitted = []
    singletons = singleton_blocks(encoded)

    def grow(pattern, block, node):
        nonlocal nodes, visited_rows
        nodes += 1
        visited_rows += len(block)
        extensions = forward_extensions_block(encoded, index, node, block)
        at_cap = len(pattern) >= MAX_PATTERN_LENGTH
        if at_cap or not closed or is_closed_block(encoded, index, node, block, extensions):
            emitted.append((pattern, block))
        if at_cap:
            return
        for event in sorted(extensions):
            extension_block = extensions[event]
            if len(extension_block) >= min_support:
                grow(pattern + (event,), extension_block, node.extend(event))

    for event in sorted(singletons):
        block = singletons[event]
        if len(block) >= min_support:
            grow((event,), block, AlphabetIndex(index, (event,)))
    return emitted, nodes, visited_rows


def _best_of(runs, fn):
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _compare_paths(encoded, index, min_support, closed, runs):
    """Time both paths on one loop variant and assert bit-identical output."""
    (tuple_result, tuple_nodes, tuple_rows), tuple_seconds = _best_of(
        runs, lambda: _grow_tuple_path(encoded, index, min_support, closed)
    )
    (block_result, block_nodes, block_rows), block_seconds = _best_of(
        runs, lambda: _grow_block_path(encoded, index, min_support, closed)
    )
    assert block_nodes == tuple_nodes and block_rows == tuple_rows
    assert len(block_result) == len(tuple_result)
    for (block_pattern, block), (tuple_pattern, instances) in zip(block_result, tuple_result):
        assert block_pattern == tuple_pattern
        assert block.to_tuple() == instances
    speedup = tuple_seconds / block_seconds if block_seconds > 0 else float("inf")
    return {
        "nodes": tuple_nodes,
        "instance_rows": tuple_rows,
        "patterns_emitted": len(tuple_result),
        "tuple_seconds": round(tuple_seconds, 4),
        "block_seconds": round(block_seconds, 4),
        "speedup": round(speedup, 2),
    }, tuple_result, block_result


def bench_hot_paths(benchmark):
    sequences, min_support = _generate_workload(SCALE)
    database = SequenceDatabase.from_sequences(
        [[str(event) for event in sequence] for sequence in sequences]
    )
    encoded = [tuple(sequence) for sequence in sequences]
    index = PositionIndex(encoded)
    total_events = sum(len(sequence) for sequence in sequences)
    # Best-of-N timing: the paths are deterministic, so the minimum is the
    # least noise-contaminated estimate of each loop's true cost.
    runs = 4 if SCALE <= 1.0 else 1

    growth, _, _ = _compare_paths(encoded, index, min_support, closed=False, runs=runs)
    closed, tuple_result, block_result = _compare_paths(
        encoded, index, min_support, closed=True, runs=runs
    )
    # One extra run as the pytest-benchmark probe (the fixture is single-use).
    benchmark.pedantic(
        _grow_block_path, args=(encoded, index, min_support, False), rounds=1, iterations=1
    )

    # Worker-to-coordinator transfer volume: the same instance lists as the
    # tuples the engine used to pickle vs. the block buffers it ships now.
    tuple_payload = len(pickle.dumps([instances for _, instances in tuple_result]))
    block_payload = len(pickle.dumps([block for _, block in block_result]))

    # A real miner run, for the engine-side counters.
    miner = ClosedIterativePatternMiner(
        IterativeMiningConfig(
            min_support=float(min_support),
            max_pattern_length=MAX_PATTERN_LENGTH,
            collect_instances=True,
        )
    )
    mined = miner.mine(database)
    assert len(mined.patterns) == len(tuple_result)

    payload = {
        "benchmark": "hot_paths",
        "workload": {
            "sequences": len(sequences),
            "events": total_events,
            "loop_body": len(LOOP_BODY),
            "noise_alphabet": len(NOISE_ALPHABET),
            "noise_rate": NOISE_RATE,
            "min_support": min_support,
            "max_pattern_length": MAX_PATTERN_LENGTH,
            "scale": SCALE,
            "host_cpus": os.cpu_count(),
        },
        "growth_loop": growth,
        "closed_loop": closed,
        "pickle_bytes_tuple": tuple_payload,
        "pickle_bytes_block": block_payload,
        "pickle_ratio": round(tuple_payload / block_payload, 2) if block_payload else None,
        "miner_stats": {
            "instances_materialized": mined.stats.instances_materialized,
            "shipped_bytes": mined.stats.shipped_bytes,
            "visited": mined.stats.visited,
            "emitted": mined.stats.emitted,
            "elapsed_seconds": round(mined.stats.elapsed_seconds, 4),
        },
        # The optimised-path cost the regression gate watches.
        "wall_clock_seconds": round(
            growth["block_seconds"] + closed["block_seconds"], 4
        ),
    }
    append_bench_record(JSON_PATH, payload)

    lines = [
        f"workload: {len(sequences)} sequences, {total_events} events, "
        f"min_support={min_support}, max_len={MAX_PATTERN_LENGTH} (scale {SCALE})",
        f"{'loop':<14} {'nodes':>7} {'rows':>9} {'tuple s':>9} {'block s':>9} {'speedup':>9}",
    ]
    for name, figures in [("growth", growth), ("closed", closed)]:
        lines.append(
            f"{name:<14} {figures['nodes']:>7} {figures['instance_rows']:>9} "
            f"{figures['tuple_seconds']:>9.3f} {figures['block_seconds']:>9.3f} "
            f"{figures['speedup']:>8.2f}x"
        )
    lines += [
        "outputs: bit-identical between paths on both loops",
        f"pickle volume: {tuple_payload} B (tuples) vs {block_payload} B (blocks), "
        f"{payload['pickle_ratio']}x smaller on the wire",
        f"miner counters: instances_materialized={mined.stats.instances_materialized}, "
        f"shipped_bytes={mined.stats.shipped_bytes}",
        f"json: {JSON_PATH.name}",
    ]
    write_result("hot_paths", "\n".join(lines))

    # The hot-loop claims are asserted only on workloads big enough that
    # they are falsifiable: at smoke scales timing is noise and fixed
    # per-array pickle overhead dominates the tiny blocks (bit-identity is
    # still verified above).  The gate keys on workload size, not elapsed
    # time — a slow host must not flip a smoke run into an asserting one.
    if os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1" or SCALE >= 1.0:
        assert growth["speedup"] >= 3.0, (
            f"expected >=3x growth-loop speedup, got {growth['speedup']:.2f}x"
        )
        assert block_payload < tuple_payload
