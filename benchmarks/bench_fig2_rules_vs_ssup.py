"""Figure 2: recurrent rule mining — runtime and number of rules vs min_s-sup.

Reproduces the Full-vs-NR comparison of Figure 2(a)/(b) at min_conf = 50% and
min_i-sup = 1 on the scaled D5C20N10S20 dataset.  Rules of arbitrary length
are mined, as in the paper; the threshold range is chosen so that the *full*
baseline (whose result size explodes — that is the paper's point) still
terminates in benchmark time on a laptop.
"""

from repro.analysis.compare import headline_ratios
from repro.analysis.experiment import rule_sweep_vs_s_support
from repro.analysis.reporting import format_sweep
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner

from conftest import BENCH_SCALE, write_result

MIN_S_SUPPORTS = [0.30, 0.25, 0.20, 0.18]
MIN_CONFIDENCE = 0.5
MAX_PREMISE = None
MAX_CONSEQUENT = None


def bench_fig2_rules_vs_ssup(benchmark, synthetic_database):
    rows = rule_sweep_vs_s_support(
        synthetic_database,
        MIN_S_SUPPORTS,
        min_confidence=MIN_CONFIDENCE,
        min_i_support=1,
        max_premise_length=MAX_PREMISE,
        max_consequent_length=MAX_CONSEQUENT,
    )
    ratios = headline_ratios(rows)
    text = "\n".join(
        [
            f"dataset: D5C20N10S20 scaled by {BENCH_SCALE}; min_conf=50%, min_i-sup=1, "
            "rules of arbitrary length",
            format_sweep(rows, baseline_label="Full", proposed_label="NR"),
            f"headline: {ratios.describe('rules')}",
            "paper:    up to 147x less runtime and 8500x fewer rules (full-size dataset)",
        ]
    )
    write_result("fig2_rules_vs_ssup", text)

    for row in rows:
        assert row.proposed_count <= row.baseline_count
    # The figure's shape: dropping min_s-sup grows the full set much faster
    # than the non-redundant set.
    assert rows[-1].baseline_count >= rows[0].baseline_count
    assert rows[-1].count_ratio >= rows[0].count_ratio

    config = RuleMiningConfig(
        min_s_support=MIN_S_SUPPORTS[0],
        min_confidence=MIN_CONFIDENCE,
        min_i_support=1,
        max_premise_length=MAX_PREMISE,
        max_consequent_length=MAX_CONSEQUENT,
    )
    benchmark.pedantic(
        lambda: NonRedundantRecurrentRuleMiner(config).mine(synthetic_database),
        rounds=1,
        iterations=1,
    )
