"""Wall-clock regression gate over the benchmark trajectory files.

Usage::

    python benchmarks/check_bench_regression.py [paths...] [--max-regression 0.2]

Each path is a JSON trajectory file (a list of run records, as written by
``append_bench_record``; the legacy single-object PR 2 format counts as a
one-record trajectory).  Records are grouped by benchmark name, scale,
workload shape (sequence/event counts) and host CPU count, so smoke runs
never get compared against canonical-scale history, a redesigned workload
starts a fresh lineage, and a record committed from a very different
machine class does not read as a regression.  Within each group the
*newest* record's ``wall_clock_seconds`` is compared against its
predecessor: more than ``--max-regression`` (default 20%) slower fails
the gate.  Groups with fewer than two comparable records pass trivially —
the gate only ever compares like with like.

Exit status: 0 when every comparison passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_MAX_REGRESSION = 0.2


def load_records(path: Path) -> List[Dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return payload if isinstance(payload, list) else [payload]


def group_key(record: Dict) -> Tuple[str, float, int, int, int]:
    workload = record.get("workload", {})
    return (
        record.get("benchmark", "unknown"),
        float(workload.get("scale", 1.0)),
        int(workload.get("sequences", 0)),
        int(workload.get("events", 0)),
        int(workload.get("host_cpus", 0)),
    )


def check_file(path: Path, max_regression: float) -> List[str]:
    """Return a list of failure messages for one trajectory file."""
    failures: List[str] = []
    groups: Dict[Tuple[str, float], List[Dict]] = {}
    for record in load_records(path):
        if "wall_clock_seconds" not in record:
            continue  # legacy records predate the gate field
        groups.setdefault(group_key(record), []).append(record)
    for (benchmark, scale, _, _, _), records in sorted(groups.items()):
        if len(records) < 2:
            continue
        previous = float(records[-2]["wall_clock_seconds"])
        latest = float(records[-1]["wall_clock_seconds"])
        if previous <= 0:
            continue
        change = latest / previous - 1.0
        verdict = "FAIL" if change > max_regression else "ok"
        print(
            f"{path}: {benchmark}@scale={scale}: "
            f"{previous:.3f}s -> {latest:.3f}s ({change:+.1%}) [{verdict}]"
        )
        if change > max_regression:
            failures.append(
                f"{benchmark}@scale={scale} in {path}: wall clock regressed "
                f"{change:+.1%} ({previous:.3f}s -> {latest:.3f}s), "
                f"limit is +{max_regression:.0%}"
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=["BENCH_hot_paths.json"],
        help="trajectory JSON files to check (missing files are skipped)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="maximum tolerated fractional wall-clock increase (default 0.2)",
    )
    args = parser.parse_args(argv)
    failures: List[str] = []
    for raw_path in args.paths:
        path = Path(raw_path)
        if not path.exists():
            print(f"{path}: no trajectory file, skipping")
            continue
        failures.extend(check_file(path, args.max_regression))
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
