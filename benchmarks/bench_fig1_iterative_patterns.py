"""Figure 1: iterative pattern mining — runtime and number of patterns vs min_sup.

Reproduces the Full-vs-Closed comparison of Figure 1(a) (runtime) and 1(b)
(number of mined patterns) on the scaled D5C20N10S20 dataset.  The paper
reports, at its lowest thresholds, up to 92x less runtime and 1250x fewer
patterns for the closed miner; the quantity this reproduction tracks most
faithfully is the pattern-count ratio (see EXPERIMENTS.md for the discussion
of the runtime ratio).
"""

from repro.analysis.compare import headline_ratios
from repro.analysis.experiment import iterative_pattern_sweep
from repro.analysis.reporting import format_sweep
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig

from conftest import BENCH_SCALE, write_result

#: min_sup values relative to the number of sequences (the paper's x-axis).
MIN_SUPPORTS = [0.12, 0.10, 0.08, 0.06]


def bench_fig1_iterative_patterns(benchmark, synthetic_database):
    rows = iterative_pattern_sweep(synthetic_database, MIN_SUPPORTS)
    ratios = headline_ratios(rows)
    text = "\n".join(
        [
            f"dataset: D5C20N10S20 scaled by {BENCH_SCALE} "
            f"({len(synthetic_database)} sequences)",
            format_sweep(rows, baseline_label="Full", proposed_label="Closed"),
            f"headline: {ratios.describe('patterns')}",
            "paper:    up to 92x less runtime and 1250x fewer patterns (full-size dataset)",
        ]
    )
    write_result("fig1_iterative_patterns", text)

    # Shape checks mirroring the figure: the closed set is always (much)
    # smaller than the full set and the gap widens as min_sup drops.
    for row in rows:
        assert row.proposed_count <= row.baseline_count
    assert rows[-1].count_ratio > rows[0].count_ratio
    assert rows[-1].count_ratio > 10

    config = IterativeMiningConfig(
        min_support=MIN_SUPPORTS[0],
        collect_instances=False,
        adjacent_absorption_pruning=True,
    )
    benchmark.pedantic(
        lambda: ClosedIterativePatternMiner(config).mine(synthetic_database),
        rounds=1,
        iterations=1,
    )
