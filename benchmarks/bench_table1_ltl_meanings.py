"""Table 1: LTL expressions and their meanings.

Regenerates the four rows of Table 1 — each formula rendered in the paper's
notation together with the English reading produced by
:func:`repro.ltl.pretty.explain` — and benchmarks parsing + explanation.
"""

from repro.analysis.reporting import format_table
from repro.ltl.ast import Atom, Finally, Next
from repro.ltl.parser import parse_ltl
from repro.ltl.pretty import explain
from repro.ltl.translate import rule_to_ltl

from conftest import write_result

TABLE1_FORMULAS = [
    Finally(Atom("unlock")),
    Next(Finally(Atom("unlock"))),
    rule_to_ltl(("lock",), ("unlock",)),
    rule_to_ltl(("main", "lock"), ("unlock", "end")),
]

PAPER_MEANINGS = [
    "Eventually unlock is called",
    "From the next event onwards, eventually unlock is called",
    "Globally whenever lock is called, then from the next event onwards, "
    "eventually unlock is called",
    "Globally whenever main followed by lock are called, then from the next "
    "event onwards, eventually unlock followed by end are called",
]


def bench_table1_ltl_meanings(benchmark):
    rows = [
        {"LTL expression": str(formula), "Meaning": explain(formula)}
        for formula in TABLE1_FORMULAS
    ]
    write_result("table1_ltl_meanings", format_table(rows))

    # The regenerated meanings must match the paper's wording.
    for row, expected in zip(rows, PAPER_MEANINGS):
        assert row["Meaning"] == expected
    # Every rendered formula parses back to itself.
    for formula in TABLE1_FORMULAS:
        assert parse_ltl(str(formula)) == formula

    def parse_and_explain():
        return [explain(parse_ltl(str(formula))) for formula in TABLE1_FORMULAS]

    benchmark.pedantic(parse_and_explain, rounds=5, iterations=1)
