"""IBM QUEST-style synthetic sequence generator (Section 6).

The paper's performance study uses "a synthetic data generator provided by
IBM ... with modification to ensure generation of sequences of events" and
describes it by four parameters:

* ``D`` — number of sequences (in thousands),
* ``C`` — average number of events per sequence,
* ``N`` — number of distinct events (in thousands),
* ``S`` — average number of events in the maximal (potentially frequent)
  sequences.

The original binary is not redistributable, so this module reimplements the
same generative process from the published description of the QUEST
generator family: a pool of "maximal potentially frequent sequences"
(average length ``S``) is drawn over the event alphabet with a skewed reuse
distribution; each output sequence is then assembled by concatenating
randomly chosen pool patterns — individually corrupted by random event drops
— interleaved with uniform noise events, until the target Poisson(C) length
is reached.  All randomness flows from a single seed, so datasets are fully
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence as TypingSequence, Tuple

from ..core.errors import ConfigurationError
from ..core.sequence import SequenceDatabase


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the synthetic generator.

    ``num_sequences``, ``avg_sequence_length``, ``num_events`` and
    ``avg_pattern_length`` map to the paper's D (×1000), C, N (×1000) and S
    respectively.  The remaining knobs control the pattern pool and noise
    level and default to values typical of the QUEST family.
    """

    num_sequences: int = 1000
    avg_sequence_length: int = 20
    num_events: int = 1000
    avg_pattern_length: int = 8
    num_patterns: int = 100
    corruption_probability: float = 0.25
    noise_probability: float = 0.1
    pattern_reuse_fraction: float = 0.25
    seed: int = 20080824

    def __post_init__(self) -> None:
        if self.num_sequences < 1:
            raise ConfigurationError("num_sequences must be >= 1")
        if self.avg_sequence_length < 1:
            raise ConfigurationError("avg_sequence_length must be >= 1")
        if self.num_events < 2:
            raise ConfigurationError("num_events must be >= 2")
        if self.avg_pattern_length < 2:
            raise ConfigurationError("avg_pattern_length must be >= 2")
        if self.num_patterns < 1:
            raise ConfigurationError("num_patterns must be >= 1")
        for name in ("corruption_probability", "noise_probability", "pattern_reuse_fraction"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")

    def describe(self) -> str:
        """The paper's compact D/C/N/S naming for this configuration."""
        d = self.num_sequences / 1000.0
        n = self.num_events / 1000.0
        return (
            f"D{d:g}C{self.avg_sequence_length}N{n:g}S{self.avg_pattern_length}"
        )


class QuestGenerator:
    """Generate a :class:`~repro.core.sequence.SequenceDatabase` from a :class:`QuestConfig`."""

    def __init__(self, config: QuestConfig) -> None:
        self.config = config
        self._random = random.Random(config.seed)
        self._patterns = self._build_pattern_pool()
        self._weights = self._build_pattern_weights()

    # ------------------------------------------------------------------ #
    # Pattern pool
    # ------------------------------------------------------------------ #
    def _event_label(self, event_id: int) -> str:
        return f"e{event_id}"

    def _poisson(self, mean: float) -> int:
        """Sample a Poisson variate (Knuth's method, fine for small means)."""
        limit = math.exp(-mean)
        product = self._random.random()
        count = 0
        while product > limit:
            count += 1
            product *= self._random.random()
        return count

    def _build_pattern_pool(self) -> List[Tuple[str, ...]]:
        config = self.config
        patterns: List[Tuple[str, ...]] = []
        previous: Tuple[str, ...] = ()
        for _ in range(config.num_patterns):
            length = max(2, self._poisson(config.avg_pattern_length))
            events: List[str] = []
            reused = int(round(config.pattern_reuse_fraction * min(length, len(previous))))
            if reused and previous:
                start = self._random.randrange(0, max(1, len(previous) - reused + 1))
                events.extend(previous[start : start + reused])
            while len(events) < length:
                events.append(self._event_label(self._random.randrange(config.num_events)))
            pattern = tuple(events[:length])
            patterns.append(pattern)
            previous = pattern
        return patterns

    def _build_pattern_weights(self) -> List[float]:
        weights = [self._random.expovariate(1.0) for _ in self._patterns]
        total = sum(weights)
        return [weight / total for weight in weights]

    def _pick_pattern(self) -> Tuple[str, ...]:
        return self._random.choices(self._patterns, weights=self._weights, k=1)[0]

    # ------------------------------------------------------------------ #
    # Sequence assembly
    # ------------------------------------------------------------------ #
    def _corrupt(self, pattern: TypingSequence[str]) -> List[str]:
        """Randomly drop events from a pattern occurrence (QUEST corruption)."""
        if self._random.random() >= self.config.corruption_probability:
            return list(pattern)
        kept = [event for event in pattern if self._random.random() >= 0.5]
        return kept if kept else [pattern[0]]

    def _generate_sequence(self) -> List[str]:
        config = self.config
        target_length = max(1, self._poisson(config.avg_sequence_length))
        events: List[str] = []
        while len(events) < target_length:
            for event in self._corrupt(self._pick_pattern()):
                if self._random.random() < config.noise_probability:
                    events.append(self._event_label(self._random.randrange(config.num_events)))
                events.append(event)
                if len(events) >= target_length:
                    break
        return events[:target_length]

    def generate(self) -> SequenceDatabase:
        """Generate the full database described by the configuration."""
        database = SequenceDatabase()
        for index in range(self.config.num_sequences):
            database.add(self._generate_sequence(), name=f"seq-{index}")
        return database


def generate_quest_database(config: QuestConfig) -> SequenceDatabase:
    """Convenience wrapper: generate a database from a :class:`QuestConfig`."""
    return QuestGenerator(config).generate()
