"""Named synthetic dataset profiles, including the paper's D5C20N10S20.

The performance study (Section 6) uses the dataset ``D5C20N10S20``: 5000
sequences averaging 20 events over an alphabet of 10000 distinct events,
with maximal potentially-frequent sequences averaging 20 events.  Mining
that dataset end to end with a pure-Python miner is possible but slow, so
:func:`scaled_profile` shrinks D and N proportionally while keeping C and S
(the parameters that determine the *shape* of the pattern/rule explosion)
fixed; the benchmark harness defaults to ``scale=0.1`` and accepts
``REPRO_BENCH_SCALE=1.0`` for a paper-sized run.
"""

from __future__ import annotations

import re
from typing import Dict

from ..core.errors import ConfigurationError
from ..core.sequence import SequenceDatabase
from .quest import QuestConfig, QuestGenerator

#: The dataset used throughout the paper's Section 6.
PAPER_PROFILE = "D5C20N10S20"

_PROFILES: Dict[str, QuestConfig] = {
    "D5C20N10S20": QuestConfig(
        num_sequences=5000,
        avg_sequence_length=20,
        num_events=10000,
        avg_pattern_length=20,
        num_patterns=200,
    ),
    # Smaller profiles used by tests and quick examples.
    "D1C10N1S4": QuestConfig(
        num_sequences=1000,
        avg_sequence_length=10,
        num_events=1000,
        avg_pattern_length=4,
        num_patterns=50,
    ),
    "D0.2C15N0.5S8": QuestConfig(
        num_sequences=200,
        avg_sequence_length=15,
        num_events=500,
        avg_pattern_length=8,
        num_patterns=40,
    ),
}

_PROFILE_NAME_PATTERN = re.compile(
    r"^D(?P<d>[0-9.]+)C(?P<c>[0-9]+)N(?P<n>[0-9.]+)S(?P<s>[0-9]+)$"
)


def available_profiles() -> Dict[str, QuestConfig]:
    """All named profiles shipped with the library."""
    return dict(_PROFILES)


def profile(name: str) -> QuestConfig:
    """Look up a named profile, or parse a D/C/N/S name into a configuration."""
    if name in _PROFILES:
        return _PROFILES[name]
    match = _PROFILE_NAME_PATTERN.match(name)
    if match is None:
        raise ConfigurationError(
            f"unknown dataset profile {name!r}; expected one of {sorted(_PROFILES)} "
            "or a D<d>C<c>N<n>S<s> name"
        )
    return QuestConfig(
        num_sequences=max(1, int(round(float(match.group("d")) * 1000))),
        avg_sequence_length=int(match.group("c")),
        num_events=max(2, int(round(float(match.group("n")) * 1000))),
        avg_pattern_length=int(match.group("s")),
    )


def scaled_profile(name: str, scale: float = 1.0, seed: int = None) -> QuestConfig:
    """A profile with D and N scaled by ``scale`` (shape parameters unchanged)."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale!r}")
    base = profile(name)
    return QuestConfig(
        num_sequences=max(10, int(round(base.num_sequences * scale))),
        avg_sequence_length=base.avg_sequence_length,
        num_events=max(10, int(round(base.num_events * scale))),
        avg_pattern_length=base.avg_pattern_length,
        num_patterns=max(10, int(round(base.num_patterns * max(scale, 0.1)))),
        corruption_probability=base.corruption_probability,
        noise_probability=base.noise_probability,
        pattern_reuse_fraction=base.pattern_reuse_fraction,
        seed=base.seed if seed is None else seed,
    )


def generate_profile(name: str, scale: float = 1.0, seed: int = None) -> SequenceDatabase:
    """Generate the database for a (possibly scaled) named profile."""
    return QuestGenerator(scaled_profile(name, scale=scale, seed=seed)).generate()
