"""Synthetic data generation (the paper's IBM QUEST-style generator)."""

from .noise import drop_events, inject_noise_events, interleave_databases, shuffle_windows
from .profiles import (
    PAPER_PROFILE,
    available_profiles,
    generate_profile,
    profile,
    scaled_profile,
)
from .quest import QuestConfig, QuestGenerator, generate_quest_database

__all__ = [
    "drop_events",
    "inject_noise_events",
    "interleave_databases",
    "shuffle_windows",
    "PAPER_PROFILE",
    "available_profiles",
    "generate_profile",
    "profile",
    "scaled_profile",
    "QuestConfig",
    "QuestGenerator",
    "generate_quest_database",
]
