"""Noise and corruption utilities for sequence databases.

The JBoss workloads and several robustness tests perturb clean protocol
traces with unrelated events, dropped events or locally shuffled events.
All helpers are pure: they return a new :class:`SequenceDatabase` and leave
the input untouched, and all randomness is seeded.
"""

from __future__ import annotations

import random
from typing import List, Sequence as TypingSequence

from ..core.errors import ConfigurationError
from ..core.events import EventLabel
from ..core.sequence import SequenceDatabase


def _check_probability(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def inject_noise_events(
    database: SequenceDatabase,
    noise_events: TypingSequence[EventLabel],
    probability: float = 0.1,
    seed: int = 0,
) -> SequenceDatabase:
    """Insert random events from ``noise_events`` before existing events.

    Each position independently receives a noise event with ``probability``.
    """
    _check_probability("probability", probability)
    if not noise_events:
        raise ConfigurationError("noise_events must not be empty")
    rng = random.Random(seed)
    noisy = SequenceDatabase()
    for index in range(len(database)):
        events: List[EventLabel] = []
        for event in database[index]:
            if rng.random() < probability:
                events.append(rng.choice(list(noise_events)))
            events.append(event)
        noisy.add(events, name=database.name(index))
    return noisy


def drop_events(
    database: SequenceDatabase, probability: float = 0.05, seed: int = 0
) -> SequenceDatabase:
    """Randomly remove events (each independently with ``probability``)."""
    _check_probability("probability", probability)
    rng = random.Random(seed)
    corrupted = SequenceDatabase()
    for index in range(len(database)):
        original = list(database[index])
        kept = [event for event in original if rng.random() >= probability]
        if not kept and original:
            kept = [original[0]]
        corrupted.add(kept, name=database.name(index))
    return corrupted


def shuffle_windows(
    database: SequenceDatabase, window: int = 3, probability: float = 0.1, seed: int = 0
) -> SequenceDatabase:
    """Shuffle small windows of events to simulate thread interleaving jitter."""
    _check_probability("probability", probability)
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window!r}")
    rng = random.Random(seed)
    shuffled = SequenceDatabase()
    for index in range(len(database)):
        events = list(database[index])
        position = 0
        while position + window <= len(events):
            if rng.random() < probability:
                chunk = events[position : position + window]
                rng.shuffle(chunk)
                events[position : position + window] = chunk
            position += window
        shuffled.add(events, name=database.name(index))
    return shuffled


def interleave_databases(
    first: SequenceDatabase, second: SequenceDatabase, seed: int = 0
) -> SequenceDatabase:
    """Randomly interleave the sequences of two databases pairwise.

    Sequences are paired by index (extra sequences from the longer database
    are appended unchanged); each pair is merged by a random fair shuffle
    that preserves the relative order within each source sequence —
    mimicking two components logging into a single trace.
    """
    rng = random.Random(seed)
    merged = SequenceDatabase()
    count = max(len(first), len(second))
    for index in range(count):
        left = list(first[index]) if index < len(first) else []
        right = list(second[index]) if index < len(second) else []
        events: List[EventLabel] = []
        left_position, right_position = 0, 0
        while left_position < len(left) or right_position < len(right):
            take_left = right_position >= len(right) or (
                left_position < len(left) and rng.random() < 0.5
            )
            if take_left:
                events.append(left[left_position])
                left_position += 1
            else:
                events.append(right[right_position])
                right_position += 1
        merged.add(events, name=f"interleaved-{index}")
    return merged
