"""Episode mining baselines (Mannila et al. and Casas-Garriga, refs [22], [13]).

* :class:`WinepiMiner` — fixed-window serial episode mining;
* :class:`MinepiMiner` — minimal occurrences with an optional gap constraint;
* :func:`derive_episode_rules` — episode rules from a WINEPI result.
"""

from .minepi import MinepiMiner, MinepiResult, minimal_occurrences
from .rules import EpisodeRule, EpisodeRuleResult, derive_episode_rules
from .windows import (
    Episode,
    EpisodeMiningResult,
    WinepiMiner,
    mine_episodes,
    window_support,
)

__all__ = [
    "MinepiMiner",
    "MinepiResult",
    "minimal_occurrences",
    "EpisodeRule",
    "EpisodeRuleResult",
    "derive_episode_rules",
    "Episode",
    "EpisodeMiningResult",
    "WinepiMiner",
    "mine_episodes",
    "window_support",
]
