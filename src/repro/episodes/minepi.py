"""MINEPI-style minimal occurrences and gap-constrained episodes.

Besides the windowed WINEPI count, Mannila et al. also measure episodes by
their *minimal occurrences*: intervals ``[start, end]`` in which the episode
occurs while no proper sub-interval contains it.  Casas-Garriga (ref [13])
later replaced the fixed window by a *gap constraint* between consecutive
episode events.  Both variants are provided here; the gap constraint is the
knob the ablation benchmark turns to show how gap-based semantics lose the
"lock ... unlock" style patterns that iterative patterns capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence as TypingSequence, Tuple

from ..core.errors import ConfigurationError
from ..core.events import EventLabel
from ..core.sequence import SequenceDatabase
from ..core.stats import MiningStats
from .windows import Episode


def minimal_occurrences(
    sequence: TypingSequence[EventLabel],
    episode: TypingSequence[EventLabel],
    max_gap: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Minimal occurrence intervals of a serial episode in ``sequence``.

    A minimal occurrence is an interval ``[start, end]`` such that the
    episode occurs inside it (respecting ``max_gap`` between consecutive
    episode events when given) and no proper sub-interval also contains an
    occurrence.  The standard computation walks the sequence once per episode
    event: for every possible end position the latest feasible start is
    tracked, and dominated intervals are discarded.
    """
    episode = tuple(episode)
    if not episode:
        raise ConfigurationError("cannot search for an empty episode")
    if max_gap is not None and max_gap < 0:
        raise ConfigurationError(f"max_gap must be >= 0, got {max_gap!r}")

    occurrences: List[Tuple[int, int]] = []
    for end in range(len(sequence)):
        if sequence[end] != episode[-1]:
            continue
        # Walk backwards matching the episode right-to-left as late as
        # possible; this yields the largest feasible start for this end,
        # which is exactly what minimality requires.
        position = end
        matched = len(episode) - 1
        start = end
        feasible = True
        while matched > 0:
            matched -= 1
            previous = position - 1
            found = None
            while previous >= 0:
                if sequence[previous] == episode[matched]:
                    found = previous
                    break
                previous -= 1
            if found is None:
                feasible = False
                break
            if max_gap is not None and (position - found - 1) > max_gap:
                feasible = False
                break
            position = found
            start = found
        if not feasible:
            continue
        interval = (start, end)
        # Minimality: drop any previously recorded interval containing this
        # one, and skip this one if a recorded interval is contained in it.
        if occurrences and occurrences[-1][0] >= start:
            # The previous interval starts no earlier and ends earlier, so it
            # is contained in the new one: the new interval is not minimal.
            continue
        occurrences.append(interval)
    return occurrences


@dataclass
class MinepiResult:
    """Episodes measured by their number of minimal occurrences."""

    episodes: List[Episode] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)
    max_gap: Optional[int] = None
    min_support: int = 0

    def __len__(self) -> int:
        return len(self.episodes)

    def __iter__(self):
        return iter(self.episodes)

    def support_of(self, events: TypingSequence[EventLabel]) -> Optional[int]:
        """Support of the exact episode, or ``None`` if it was not mined."""
        target = tuple(events)
        for episode in self.episodes:
            if episode.events == target:
                return episode.support
        return None


class MinepiMiner:
    """Mine serial episodes by minimal-occurrence count, with an optional gap constraint."""

    def __init__(
        self,
        min_support: int = 2,
        max_gap: Optional[int] = None,
        max_episode_length: Optional[int] = 4,
    ) -> None:
        if min_support < 1:
            raise ConfigurationError(f"min_support must be >= 1, got {min_support!r}")
        self.min_support = min_support
        self.max_gap = max_gap
        self.max_episode_length = max_episode_length

    def mine(self, database: SequenceDatabase) -> MinepiResult:
        """Mine all episodes whose minimal-occurrence count meets the threshold."""
        stats = MiningStats()
        stats.start()
        result = MinepiResult(stats=stats, max_gap=self.max_gap, min_support=self.min_support)

        sequences = [tuple(sequence) for sequence in database]
        alphabet = sorted({event for sequence in sequences for event in sequence}, key=str)

        def support(episode: Tuple[EventLabel, ...]) -> int:
            return sum(
                len(minimal_occurrences(sequence, episode, self.max_gap))
                for sequence in sequences
            )

        def grow(episode: Tuple[EventLabel, ...], episode_support: int) -> None:
            stats.visited += 1
            stats.emitted += 1
            result.episodes.append(Episode(episode, episode_support))
            if self.max_episode_length is not None and len(episode) >= self.max_episode_length:
                return
            for event in alphabet:
                extended = episode + (event,)
                extended_support = support(extended)
                if extended_support >= self.min_support:
                    grow(extended, extended_support)
                else:
                    stats.pruned_support += 1

        for event in alphabet:
            singleton = (event,)
            singleton_support = support(singleton)
            if singleton_support >= self.min_support:
                grow(singleton, singleton_support)
            else:
                stats.pruned_support += 1

        stats.stop()
        return result
