"""WINEPI-style frequent serial episode mining (Mannila et al., ref [22]).

Episode mining is the related technique the paper contrasts iterative
patterns with: related events must fall inside a *window* of fixed width.
This module implements the serial-episode variant used for those
comparisons.  A serial episode is an ordered tuple of events; it is
*supported by a window* (a contiguous slice of ``window_width`` events) when
it is a subsequence of the slice.  The support of an episode in a sequence
is the number of windows supporting it, and supports add up across the
sequences of a database (the original formulation handles a single long
sequence; we simply sum, which reduces to it for a one-sequence database).

The "window barrier" the paper criticises is directly visible here: a
pattern whose events lie further apart than ``window_width`` has support 0
no matter how often it occurs — the behaviour exercised by the comparison
tests and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence as TypingSequence, Tuple

from ..core.errors import ConfigurationError
from ..core.events import EventLabel
from ..core.pattern import format_pattern, is_subsequence
from ..core.sequence import SequenceDatabase
from ..core.stats import MiningStats


@dataclass(frozen=True)
class Episode:
    """A serial episode with its window support."""

    events: Tuple[EventLabel, ...]
    support: int

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        return f"{format_pattern(self.events)} (win-sup={self.support})"


@dataclass
class EpisodeMiningResult:
    """Frequent serial episodes plus run statistics."""

    episodes: List[Episode] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)
    window_width: int = 0
    min_support: int = 0

    def __len__(self) -> int:
        return len(self.episodes)

    def __iter__(self):
        return iter(self.episodes)

    def support_of(self, events: TypingSequence[EventLabel]) -> Optional[int]:
        """Support of the exact episode, or ``None`` if it was not mined."""
        target = tuple(events)
        for episode in self.episodes:
            if episode.events == target:
                return episode.support
        return None


def window_support(
    sequence: TypingSequence[EventLabel],
    episode: TypingSequence[EventLabel],
    window_width: int,
) -> int:
    """Number of width-``window_width`` windows of ``sequence`` supporting ``episode``."""
    if window_width < 1:
        raise ConfigurationError(f"window_width must be >= 1, got {window_width!r}")
    episode = tuple(episode)
    if len(episode) > window_width:
        return 0
    count = 0
    last_start = max(0, len(sequence) - window_width)
    for start in range(last_start + 1):
        window = sequence[start : start + window_width]
        if is_subsequence(episode, window):
            count += 1
    return count


class WinepiMiner:
    """Depth-first mining of frequent serial episodes under a fixed window."""

    def __init__(
        self,
        window_width: int,
        min_support: int = 2,
        max_episode_length: Optional[int] = None,
    ) -> None:
        if window_width < 1:
            raise ConfigurationError(f"window_width must be >= 1, got {window_width!r}")
        if min_support < 1:
            raise ConfigurationError(f"min_support must be >= 1, got {min_support!r}")
        self.window_width = window_width
        self.min_support = min_support
        self.max_episode_length = max_episode_length

    def mine(self, database: SequenceDatabase) -> EpisodeMiningResult:
        """Mine all frequent serial episodes of the database."""
        stats = MiningStats()
        stats.start()
        result = EpisodeMiningResult(
            stats=stats, window_width=self.window_width, min_support=self.min_support
        )

        sequences = [tuple(sequence) for sequence in database]
        alphabet = sorted({event for sequence in sequences for event in sequence}, key=str)

        def support(episode: Tuple[EventLabel, ...]) -> int:
            return sum(
                window_support(sequence, episode, self.window_width) for sequence in sequences
            )

        def grow(episode: Tuple[EventLabel, ...], episode_support: int) -> None:
            stats.visited += 1
            stats.emitted += 1
            result.episodes.append(Episode(episode, episode_support))
            max_length = self.max_episode_length or self.window_width
            if len(episode) >= max_length:
                return
            for event in alphabet:
                extended = episode + (event,)
                extended_support = support(extended)
                if extended_support >= self.min_support:
                    grow(extended, extended_support)
                else:
                    stats.pruned_support += 1

        for event in alphabet:
            singleton = (event,)
            singleton_support = support(singleton)
            if singleton_support >= self.min_support:
                grow(singleton, singleton_support)
            else:
                stats.pruned_support += 1

        stats.stop()
        return result


def mine_episodes(
    database: SequenceDatabase,
    window_width: int,
    min_support: int = 2,
    max_episode_length: Optional[int] = None,
) -> EpisodeMiningResult:
    """Convenience wrapper around :class:`WinepiMiner`."""
    miner = WinepiMiner(
        window_width=window_width,
        min_support=min_support,
        max_episode_length=max_episode_length,
    )
    return miner.mine(database)
