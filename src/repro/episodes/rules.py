"""Episode rules (Mannila et al., ref [22]).

An episode rule ``alpha => beta`` relates an episode ``beta`` and one of its
prefixes ``alpha``: its confidence is ``support(beta) / support(alpha)`` —
"when the prefix is seen inside a window, how often does the whole episode
complete within the same window".  Rules are generated directly from a
WINEPI mining result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.errors import ConfigurationError
from ..core.events import EventLabel
from ..core.pattern import format_pattern
from .windows import EpisodeMiningResult


@dataclass(frozen=True)
class EpisodeRule:
    """An episode rule ``prefix => episode`` with window-based confidence."""

    premise: Tuple[EventLabel, ...]
    consequent: Tuple[EventLabel, ...]
    support: int
    confidence: float

    @property
    def episode(self) -> Tuple[EventLabel, ...]:
        """The full episode the rule predicts (premise followed by consequent)."""
        return self.premise + self.consequent

    def __str__(self) -> str:
        return (
            f"{format_pattern(self.premise)} => {format_pattern(self.consequent)} "
            f"(sup={self.support}, conf={self.confidence:.3f})"
        )


@dataclass
class EpisodeRuleResult:
    """Episode rules derived from a WINEPI result."""

    rules: List[EpisodeRule] = field(default_factory=list)
    window_width: int = 0

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)


def derive_episode_rules(
    episodes: EpisodeMiningResult, min_confidence: float = 0.5
) -> EpisodeRuleResult:
    """Generate all episode rules meeting ``min_confidence`` from mined episodes."""
    if not (0.0 < min_confidence <= 1.0):
        raise ConfigurationError(f"min_confidence must be in (0, 1], got {min_confidence!r}")

    support_by_episode: Dict[Tuple[EventLabel, ...], int] = {
        episode.events: episode.support for episode in episodes.episodes
    }
    result = EpisodeRuleResult(window_width=episodes.window_width)
    for episode in episodes.episodes:
        if len(episode.events) < 2:
            continue
        for split in range(1, len(episode.events)):
            premise = episode.events[:split]
            consequent = episode.events[split:]
            premise_support = support_by_episode.get(premise)
            if not premise_support:
                continue
            confidence = episode.support / premise_support
            if confidence >= min_confidence:
                result.rules.append(
                    EpisodeRule(
                        premise=premise,
                        consequent=consequent,
                        support=episode.support,
                        confidence=confidence,
                    )
                )
    return result
