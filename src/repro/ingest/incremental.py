"""Incremental mining over an append-only :class:`TraceStore`.

A from-scratch mine re-explores every first-level root of the search even
when an appended batch touched a handful of events.  The key observation
that makes delta mining sound is *root locality*: the entire subtree below
a first-level root ``e`` — pattern growth, closure checks, temporal points,
consequent growth, confidences — is computed exclusively from the sequences
that contain ``e`` (every instance of a pattern or premise starting with
``e`` lives in such a sequence).  Appending sequences that do not contain
``e`` therefore cannot change any record rooted at ``e``, and in an
append-only store supports only ever grow, so a root absent from the
appended batches' alphabets keeps its cached records verbatim.

:class:`IncrementalMiner` exploits this through the existing engine: it
wraps the real miner in a plan filter that keeps only the *touched* roots
(events appearing in the newly appended batches), runs the filtered plan on
any :class:`~repro.engine.backend.ExecutionBackend` — serial, process pool
or work stealing — and merges the fresh records with the cached records of
untouched roots by the miner's canonical record key.  Because every backend
already merges deterministically by that same key, the merged output is
bit-identical to a full re-mine of the concatenated store.  Three events
force a full re-mine instead: the first refresh, a support threshold whose
absolute value moved with the database size (relative thresholds), and a
change in the premise filter's resolved event ids.

Between refreshes the miner keeps the per-run search context alive: the
:class:`~repro.core.positions.PositionIndex` is *extended* with just the
appended sequences instead of being rebuilt, and the context's derived
caches are invalidated, so the serial hot path pays O(new events) — not
O(corpus) — of indexing per refresh.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Tuple, Union

from ..core.errors import ConfigurationError
from ..core.events import EventId
from ..core.sequence import SequenceDatabase
from ..core.stats import MiningStats
from ..durability.checkpoint import miner_config_token
from ..durability.journal import atomic_write_bytes
from ..engine import ExecutionBackend, PlanResult, SerialBackend, ShardRunner, run_sharded
from .store import TraceStore

#: On-disk record-cache format version; unknown versions are ignored.
CACHE_VERSION = 1


@dataclass(frozen=True)
class RefreshReport:
    """What one :meth:`IncrementalMiner.refresh` actually did."""

    traces_total: int
    traces_added: int
    roots_total: int
    roots_remined: int
    full_remine: bool
    reason: str
    elapsed_seconds: float


class _DeltaPlanMiner:
    """Engine-protocol wrapper restricting a miner's plan to touched roots.

    Everything except planning delegates to the wrapped miner, so the
    search below each kept root — and therefore each root's records — is
    byte-for-byte the search a full mine would run.  ``changed=None``
    keeps the whole plan (a full re-mine through the same code path).
    """

    def __init__(self, inner: Any, changed: Optional[FrozenSet[EventId]]) -> None:
        self.inner = inner
        self.changed = changed
        self.planned_total = 0
        self.planned_kept = 0

    def plan_roots(self, context: Any) -> PlanResult:
        plan = self.inner.plan_roots(context)
        self.planned_total = len(plan.roots)
        if self.changed is None:
            self.planned_kept = len(plan.roots)
            return plan
        kept = tuple(
            (root, weight) for root, weight in plan.roots if root in self.changed
        )
        self.planned_kept = len(kept)
        return PlanResult(kept, plan.pruned_support)

    def build_context(self, encoded: Any, extras: Dict[str, Any]) -> Any:
        return self.inner.build_context(encoded, extras)

    def mine_root(self, context: Any, root: EventId, stats: MiningStats) -> Any:
        return self.inner.mine_root(context, root, stats)

    def initial_units(self, context: Any, plan: PlanResult) -> Any:
        return self.inner.initial_units(context, plan)

    def mine_unit(self, context: Any, unit: Any, stats: MiningStats, splitter: Any) -> Any:
        return self.inner.mine_unit(context, unit, stats, splitter)

    def resolve_units(self, outcomes: Any) -> Any:
        return self.inner.resolve_units(outcomes)


class IncrementalMiner:
    """Keep a miner's output in sync with a growing :class:`TraceStore`.

    Works with any miner implementing the engine protocol plus the
    incremental hooks on the two miner base classes
    (``resolved_support_threshold`` / ``runner_extras`` / ``record_root``
    / ``record_sort_key`` / ``collect_result``): both iterative-pattern
    miners and both recurrent-rule miners qualify.

    With ``persist=True`` (or an explicit ``cache_path``) the committed
    record cache is also written into the store directory after every
    successful refresh, and a later :class:`IncrementalMiner` over the same
    store resumes from it — so separate processes (CLI invocations, daemon
    restarts) stay incremental too.  The persisted cache is invalidated by
    a store-fingerprint or miner-configuration mismatch and silently
    discarded; a discarded cache only ever costs a full re-mine.

    Example
    -------
    >>> miner = IncrementalMiner(ClosedIterativePatternMiner(config), store)
    >>> result, report = miner.refresh()        # full mine of the store
    >>> store.append_batch(new_traces)
    >>> result, report = miner.refresh()        # delta: touched roots only
    """

    def __init__(
        self,
        miner: Any,
        store: TraceStore,
        backend: Optional[ExecutionBackend] = None,
        *,
        persist: bool = False,
        cache_path: Optional[Union[str, Path]] = None,
    ) -> None:
        for hook in (
            "resolved_support_threshold",
            "runner_extras",
            "record_root",
            "record_sort_key",
            "collect_result",
        ):
            if not hasattr(miner, hook):
                raise ConfigurationError(
                    f"{type(miner).__name__} does not implement the incremental "
                    f"mining protocol (missing {hook!r})"
                )
        self.miner = miner
        self.store = store
        self.backend = backend
        self._database: Optional[SequenceDatabase] = None
        self._context: Any = None
        self._synced_batches = 0
        # Mining-cache state, committed only after a successful run — a
        # refresh that raises mid-mine must leave the next refresh seeing
        # its roots as still dirty, never a silently stale cache.
        self._cache: Optional[Dict[EventId, Tuple[Any, ...]]] = None
        self._cache_threshold: Optional[int] = None
        self._cache_extras: Optional[Dict[str, Any]] = None
        self._cache_roots_total = 0
        self._dirty: FrozenSet[EventId] = frozenset()
        # Optional on-disk persistence of the record cache (CLI invocations
        # and daemon restarts stay incremental across processes).
        if cache_path is not None:
            self._cache_path: Optional[Path] = Path(cache_path)
        elif persist:
            self._cache_path = self.default_cache_path(store, miner)
        else:
            self._cache_path = None
        #: Whether the last construction adopted a persisted cache.
        self.resumed_from_cache = False
        if self._cache_path is not None:
            self.resumed_from_cache = self._load_persisted_cache()

    @property
    def database(self) -> Optional[SequenceDatabase]:
        """The live concatenated database (``None`` before the first refresh)."""
        return self._database

    # ------------------------------------------------------------------ #
    # Record-cache persistence
    # ------------------------------------------------------------------ #
    @staticmethod
    def default_cache_path(store: TraceStore, miner: Any) -> Path:
        """Where a persisted record cache lives inside the store directory.

        One file per miner class: two miners with the same class but
        different configurations share the path, and the configuration
        token inside the payload arbitrates (a mismatch discards the
        cache, never silently reuses it).
        """
        return store.directory / "cache" / f"{type(miner).__name__}.records.pkl"

    def _config_token(self) -> str:
        """Identity of the cached search: miner class + full configuration.

        Shared with the checkpoint journal (one definition of "same mining
        run" across both persistence layers); see
        :func:`repro.durability.checkpoint.miner_config_token` for why
        set-valued fields render sorted.
        """
        return miner_config_token(self.miner)

    def _load_persisted_cache(self) -> bool:
        """Adopt a persisted record cache when it matches store + config.

        Validation is strict and failure is silent-but-safe: any mismatch
        (missing file, unreadable pickle, different miner/config token,
        store fingerprint that does not chain to the cached sync point)
        just leaves the miner cold — the next refresh is a full re-mine,
        which is always correct.  The payload is a pickle written by this
        class into the user's own store directory; treat the store
        directory with the same trust as the traces themselves.
        """
        path = self._cache_path
        if path is None or not path.is_file():
            return False
        try:
            payload = pickle.loads(path.read_bytes())
        except Exception:  # noqa: BLE001 - any corrupt cache means "cold start"
            return False
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return False
        if payload.get("identity") != self._config_token():
            return False
        synced = payload.get("synced_batches")
        if not isinstance(synced, int) or not 1 <= synced <= len(self.store.batches):
            return False
        # Chained fingerprints make prefix validation one comparison: the
        # cache is valid iff the store's first `synced` batches are exactly
        # the corpus the cache was computed from.
        if self.store.batches[synced - 1].fingerprint != payload.get("fingerprint"):
            return False
        database = SequenceDatabase(self.store.vocabulary)
        for trace in self.store.iter_traces(stop_batch=synced):
            database.add_encoded(trace.events, name=trace.name)
        self._database = database
        self._synced_batches = synced
        self._cache = {
            root: tuple(records) for root, records in payload["records"].items()
        }
        self._cache_threshold = payload["threshold"]
        self._cache_extras = payload["extras"]
        self._cache_roots_total = payload["roots_total"]
        return True

    def _save_persisted_cache(self) -> None:
        """Write the committed cache state next to the store (atomically)."""
        path = self._cache_path
        if path is None or self._synced_batches < 1 or self._cache is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "identity": self._config_token(),
            "synced_batches": self._synced_batches,
            "fingerprint": self.store.batches[self._synced_batches - 1].fingerprint,
            "threshold": self._cache_threshold,
            "extras": self._cache_extras,
            "roots_total": self._cache_roots_total,
            "records": self._cache,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    def refresh(self, backend: Optional[ExecutionBackend] = None) -> Tuple[Any, RefreshReport]:
        """Bring the mining result up to date with the store.

        Returns the result — bit-identical to a from-scratch mine of the
        store's current snapshot — together with a :class:`RefreshReport`
        saying how much of the search actually ran.
        """
        started = time.perf_counter()
        chosen = backend or self.backend or SerialBackend()

        if self._database is None:
            # Sharing the store's vocabulary object keeps decoding in sync
            # as later appends intern new labels; the database itself only
            # ever receives pre-encoded traces.
            self._database = SequenceDatabase(self.store.vocabulary)
        database = self._database

        # Sync the live database with the store.  The fallible reads happen
        # before any state moves: once the buffered traces are appended the
        # batch counter advances with them, and the roots they touch join
        # the *dirty* set — which only a successful mine clears, so a
        # refresh that dies mid-run leaves them pending for the retry.
        new_traces = list(self.store.iter_traces(start_batch=self._synced_batches))
        touched = frozenset(self.store.alphabet_since(self._synced_batches))
        before = len(database)
        for trace in new_traces:
            database.add_encoded(trace.events, name=trace.name)
        appended = database.encoded[before:]
        self._synced_batches = len(self.store.batches)
        self._dirty = self._dirty | touched

        threshold = self.miner.resolved_support_threshold(database)
        extras = self.miner.runner_extras(database)
        if self._cache is None:
            full, reason = True, "initial mine"
        elif self._cache_threshold != threshold:
            full, reason = True, (
                f"support threshold moved {self._cache_threshold} -> {threshold} "
                "with the database size"
            )
        elif self._cache_extras != extras:
            full, reason = True, "premise event filter resolved differently"
        elif not self._dirty:
            full, reason = False, "no new batches"
        elif appended:
            full, reason = False, f"{len(appended)} appended traces"
        else:
            full, reason = False, f"retrying {len(self._dirty)} dirty roots"

        if full or self._context is None:
            self._context = self.miner.build_context(database.encoded, extras)
        elif appended:
            self._context.absorb_appended(appended)

        stats = MiningStats()
        stats.start()
        if not full and not self._dirty:
            # Nothing to re-mine: rebuild the result straight from the
            # cache without touching the backend (a polling caller must
            # not pay pool spin-up and plan/merge for zero work).
            roots_total, roots_remined = self._cache_roots_total, 0
            cache = dict(self._cache or {})
        else:
            changed = None if full else self._dirty
            delta = _DeltaPlanMiner(self.miner, changed)
            runner = ShardRunner(delta, database.encoded, extras, context=self._context)
            records, search_stats = run_sharded(chosen, runner)
            stats.merge_counters(search_stats)

            cache = {} if full else dict(self._cache or {})
            if changed is not None:
                for root in changed:
                    cache.pop(root, None)
            grouped: Dict[EventId, List[Any]] = {}
            for record in records:
                grouped.setdefault(self.miner.record_root(record), []).append(record)
            for root, root_records in grouped.items():
                cache[root] = tuple(root_records)
            roots_total, roots_remined = delta.planned_total, delta.planned_kept
        # The run succeeded: commit the cache state and clear the debt.
        self._cache = cache
        self._cache_threshold = threshold
        self._cache_extras = extras
        self._cache_roots_total = roots_total
        self._dirty = frozenset()
        self._save_persisted_cache()

        merged: List[Any] = []
        for root_records in cache.values():
            merged.extend(root_records)
        merged.sort(key=self.miner.record_sort_key)

        result = self.miner.collect_result(database, merged, stats)
        stats.stop()
        report = RefreshReport(
            traces_total=len(database),
            traces_added=len(appended),
            roots_total=roots_total,
            roots_remined=roots_remined,
            full_remine=full,
            reason=reason,
            elapsed_seconds=time.perf_counter() - started,
        )
        return result, report
