"""Streaming trace format adapters.

The historical readers in :mod:`repro.traces.io` materialise a whole
:class:`~repro.core.sequence.SequenceDatabase` from one file.  This module
is the streaming replacement underneath them: every format is exposed as a
:class:`FormatAdapter` whose reader *yields* :class:`TraceRecord` values one
trace at a time from an open text handle, so arbitrarily large trace files
are parsed with memory bounded by the longest single trace (the CSV reader
additionally keeps a set of finished trace ids to catch non-contiguous
files loudly — see :func:`read_csv_stream`).  The adapters
are registered in a small registry keyed by format name; ``.gz``-wrapped
variants of every format are handled transparently by the path layer
(``traces.jsonl.gz`` is the ``jsonl`` format behind a gzip codec).

Three line-oriented formats ship by default, with exactly the grammar the
batch readers historically accepted:

* **text** — one event label per line, blank line between traces, optional
  ``# name`` comment naming the following trace;
* **jsonl** — one JSON object per line: ``{"name": ..., "events": [...]}``;
* **csv** — ``trace_id,position,event`` rows with a header.  Rows of one
  trace must be contiguous (the layout every writer produces); a trace id
  that reappears after its run ended is a loud :class:`DataFormatError`
  rather than a silent reorder, because a streaming reader cannot sort the
  whole file.

On top of the per-trace streams, :func:`stream_encoded_traces` interns the
labels through an :class:`~repro.core.events.EventVocabulary` so that
downstream consumers (the :class:`~repro.ingest.store.TraceStore`, the
miners) only ever see small integer ids, and :func:`stream_batches` chunks
any stream into bounded-size lists for batched appends.
"""

from __future__ import annotations

import csv
import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from ..core.errors import DataFormatError
from ..core.events import EventId, EventVocabulary

PathLike = Union[str, Path]

#: Default number of traces per chunk in :func:`stream_batches`.
DEFAULT_BATCH_SIZE = 1024


class TraceRecord(NamedTuple):
    """One trace as it crosses the streaming layer: labels plus a name."""

    events: Tuple[str, ...]
    name: Optional[str] = None


#: A streaming reader: yields one :class:`TraceRecord` per trace.
TraceReader = Callable[[TextIO], Iterator[TraceRecord]]
#: A streaming writer: consumes records, returns how many were written.
TraceWriter = Callable[[TextIO, Iterable[TraceRecord]], int]


@dataclass(frozen=True)
class FormatAdapter:
    """A named trace format: streaming reader + writer + path suffixes."""

    name: str
    suffixes: Tuple[str, ...]
    read: TraceReader
    write: TraceWriter


# ---------------------------------------------------------------------- #
# Plain text
# ---------------------------------------------------------------------- #
def read_text_stream(handle: TextIO) -> Iterator[TraceRecord]:
    """Yield traces from the plain-text format, one at a time."""
    current: List[str] = []
    current_name: Optional[str] = None
    for raw_line in handle:
        line = raw_line.strip()
        if not line:
            if current:
                yield TraceRecord(tuple(current), current_name)
            current, current_name = [], None
            continue
        if line.startswith("#"):
            current_name = line.lstrip("#").strip() or None
            continue
        current.append(line)
    if current:
        yield TraceRecord(tuple(current), current_name)


def write_text_stream(handle: TextIO, records: Iterable[TraceRecord]) -> int:
    """Write traces in the plain-text format; returns the trace count."""
    written = 0
    for record in records:
        if record.name:
            handle.write(f"# {record.name}\n")
        for event in record.events:
            handle.write(f"{event}\n")
        handle.write("\n")
        written += 1
    return written


# ---------------------------------------------------------------------- #
# JSON lines
# ---------------------------------------------------------------------- #
def read_jsonl_stream(handle: TextIO) -> Iterator[TraceRecord]:
    """Yield traces from the JSON-lines format, one object at a time."""
    for line_number, line in enumerate(handle, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise DataFormatError(f"invalid JSON on line {line_number}: {error}") from error
        if not isinstance(record, dict) or "events" not in record:
            raise DataFormatError(f"line {line_number} is not a trace record: {line!r}")
        yield TraceRecord(tuple(record["events"]), record.get("name"))


def write_jsonl_stream(handle: TextIO, records: Iterable[TraceRecord]) -> int:
    """Write one JSON object per trace; returns the trace count."""
    written = 0
    for record in records:
        payload = {"name": record.name, "events": [str(event) for event in record.events]}
        handle.write(json.dumps(payload) + "\n")
        written += 1
    return written


# ---------------------------------------------------------------------- #
# CSV
# ---------------------------------------------------------------------- #
def iter_csv_rows(handle: TextIO) -> Iterator[Tuple[int, int, str]]:
    """Validated ``(trace_id, position, event)`` rows of a CSV trace file.

    The single grammar both CSV consumers share: the streaming reader
    groups contiguous runs on top of it, the whole-file reader in
    :mod:`repro.traces.io` buffers and sorts — so header validation and
    row parsing can never drift between the two.
    """
    reader = csv.DictReader(handle)
    required = {"trace_id", "position", "event"}
    if reader.fieldnames is None or not required.issubset(set(reader.fieldnames)):
        raise DataFormatError(
            f"CSV trace file must have columns {sorted(required)}, got {reader.fieldnames}"
        )
    for row in reader:
        try:
            yield int(row["trace_id"]), int(row["position"]), row["event"]
        except (TypeError, ValueError) as error:
            raise DataFormatError(f"invalid CSV trace row: {row!r}") from error


def read_csv_stream(handle: TextIO) -> Iterator[TraceRecord]:
    """Yield traces from contiguous ``trace_id,position,event`` runs.

    Positions are sorted within each run, so shuffled rows *inside* one
    trace are fine; a trace id coming back after its run ended means the
    file cannot be parsed with bounded memory and raises.  (The
    whole-file readers in :mod:`repro.traces.io` buffer instead and
    accept interleaved rows.)

    One deliberate exception to the bounded-memory contract: detecting a
    reappearing id loudly requires remembering every finished trace id —
    a set of ints, O(traces) but tiny per entry.  That is the price of
    never mis-parsing an interleaved file as two truncated traces.
    """
    finished: set = set()
    current_id: Optional[int] = None
    current: List[Tuple[int, str]] = []
    for trace_id, position, event in iter_csv_rows(handle):
        if trace_id != current_id:
            if current_id is not None:
                yield TraceRecord(
                    tuple(event for _, event in sorted(current)), f"trace-{current_id}"
                )
                finished.add(current_id)
            if trace_id in finished:
                raise DataFormatError(
                    f"CSV trace rows for trace_id {trace_id} are not contiguous; "
                    "a streaming reader cannot reorder whole traces"
                )
            current_id, current = trace_id, []
        current.append((position, event))
    if current_id is not None:
        yield TraceRecord(tuple(event for _, event in sorted(current)), f"trace-{current_id}")


def write_csv_stream(handle: TextIO, records: Iterable[TraceRecord]) -> int:
    """Write ``trace_id,position,event`` rows; returns the trace count."""
    writer = csv.writer(handle)
    writer.writerow(["trace_id", "position", "event"])
    written = 0
    for trace_id, record in enumerate(records):
        for position, event in enumerate(record.events):
            writer.writerow([trace_id, position, str(event)])
        written += 1
    return written


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_ADAPTERS: Dict[str, FormatAdapter] = {}
_SUFFIX_TO_FORMAT: Dict[str, str] = {}


def register_format(adapter: FormatAdapter) -> FormatAdapter:
    """Register (or replace) a format adapter and its path suffixes."""
    _ADAPTERS[adapter.name] = adapter
    for suffix in adapter.suffixes:
        _SUFFIX_TO_FORMAT[suffix.lower()] = adapter.name
    return adapter


def registered_formats() -> Tuple[str, ...]:
    """The names of every registered format, sorted."""
    return tuple(sorted(_ADAPTERS))


def adapter_for(name: str) -> FormatAdapter:
    """Look a format adapter up by name."""
    try:
        return _ADAPTERS[name]
    except KeyError:
        raise DataFormatError(f"unknown trace format {name!r}") from None


register_format(FormatAdapter("text", (".txt", ".trace"), read_text_stream, write_text_stream))
register_format(FormatAdapter("jsonl", (".jsonl",), read_jsonl_stream, write_jsonl_stream))
register_format(FormatAdapter("csv", (".csv",), read_csv_stream, write_csv_stream))


def format_for_path(path: PathLike, explicit: Optional[str] = None) -> Tuple[str, bool]:
    """Resolve ``(format name, gzipped?)`` for a path.

    A trailing ``.gz`` selects the gzip codec and the format is inferred
    from (or checked against) the suffix underneath it, so
    ``traces.jsonl.gz`` works with no explicit format.
    """
    path = Path(path)
    gzipped = path.suffix.lower() == ".gz"
    inner = Path(path.stem) if gzipped else path
    if explicit is not None:
        adapter_for(explicit)  # validate the name even when it wins outright
        return explicit, gzipped
    suffix = inner.suffix.lower()
    if suffix in _SUFFIX_TO_FORMAT:
        return _SUFFIX_TO_FORMAT[suffix], gzipped
    raise DataFormatError(
        f"cannot infer trace format from suffix {suffix!r}; pass format= explicitly"
    )


def open_trace_text(path: PathLike, mode: str, gzipped: bool) -> TextIO:
    """Open a trace file as text, through the gzip codec when asked.

    newline="" on both directions: the csv module requires it, and the
    line-oriented readers strip their own terminators anyway.
    """
    if gzipped:
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


def stream_traces(path: PathLike, format: Optional[str] = None) -> Iterator[TraceRecord]:
    """Stream the traces of a file, decompressing ``.gz`` transparently."""
    name, gzipped = format_for_path(path, format)
    adapter = adapter_for(name)
    with open_trace_text(path, "r", gzipped) as handle:
        yield from adapter.read(handle)


def write_trace_records(
    path: PathLike, records: Iterable[TraceRecord], format: Optional[str] = None
) -> int:
    """Write a stream of traces to a file, gzip-compressing ``.gz`` paths."""
    name, gzipped = format_for_path(path, format)
    adapter = adapter_for(name)
    with open_trace_text(path, "w", gzipped) as handle:
        return adapter.write(handle, records)


# ---------------------------------------------------------------------- #
# Interning and chunking
# ---------------------------------------------------------------------- #
class EncodedTrace(NamedTuple):
    """A trace after interning: small integer event ids plus a name."""

    events: Tuple[EventId, ...]
    name: Optional[str] = None


def stream_encoded_traces(
    path: PathLike,
    vocabulary: EventVocabulary,
    format: Optional[str] = None,
) -> Iterator[EncodedTrace]:
    """Stream a file's traces interned through ``vocabulary``.

    Labels leave this function as dense integer ids and stay that way all
    the way through the store and the miners; the vocabulary is append-only
    so ids handed out earlier never change meaning.
    """
    for record in stream_traces(path, format=format):
        yield EncodedTrace(vocabulary.encode(record.events, register=True), record.name)


def stream_batches(
    records: Iterable,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[List]:
    """Chunk any record stream into lists of at most ``batch_size``."""
    if batch_size < 1:
        raise DataFormatError(f"batch_size must be >= 1, got {batch_size!r}")
    batch: List = []
    for record in records:
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
