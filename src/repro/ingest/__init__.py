"""Streaming trace ingestion and incremental mining.

Three layers, each usable on its own:

* :mod:`repro.ingest.formats` — streaming format adapters (text, JSONL,
  CSV, each with a transparent ``.gz`` variant) that parse trace files one
  trace at a time with bounded memory, plus label interning so events are
  small integer ids end-to-end;
* :mod:`repro.ingest.store` — :class:`TraceStore`, an append-only on-disk
  store of compactly encoded traces with a manifest of per-batch offsets,
  statistics and chained content fingerprints;
* :mod:`repro.ingest.incremental` — :class:`IncrementalMiner`, which keeps
  mining state alive across store appends and re-mines only the first-level
  roots an appended batch could have touched, producing output bit-identical
  to a full re-mine on every execution backend.
"""

from .formats import (
    DEFAULT_BATCH_SIZE,
    EncodedTrace,
    FormatAdapter,
    TraceRecord,
    adapter_for,
    format_for_path,
    register_format,
    registered_formats,
    stream_batches,
    stream_encoded_traces,
    stream_traces,
    write_trace_records,
)
from .incremental import IncrementalMiner, RefreshReport
from .store import BatchInfo, TraceStore

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "EncodedTrace",
    "FormatAdapter",
    "TraceRecord",
    "adapter_for",
    "format_for_path",
    "register_format",
    "registered_formats",
    "stream_batches",
    "stream_encoded_traces",
    "stream_traces",
    "write_trace_records",
    "IncrementalMiner",
    "RefreshReport",
    "BatchInfo",
    "TraceStore",
]
