"""An append-only on-disk store of compactly encoded traces.

A :class:`TraceStore` is a directory holding two files:

* ``traces.bin`` — every trace ever appended, concatenated.  Each trace is
  a tiny binary record (name, event count, then the interned event ids as
  little-endian 32-bit ints), so a million-event corpus is a few megabytes
  and decoding is one ``struct.unpack`` per trace;
* ``manifest.json`` — the interned label vocabulary plus one entry per
  appended batch: byte offset and length inside ``traces.bin``, trace and
  event counts, the batch's distinct event ids (what the incremental miner
  uses to decide which first-level roots a batch can possibly touch), and a
  chained SHA-256 content fingerprint.

Appends are batch-granular and atomic at the manifest level: the payload is
appended to the data file and fsynced first, then the manifest is replaced
atomically and durably (write temporary, fsync, rename, fsync the
directory — :func:`repro.durability.journal.atomic_write_text`), so a
crash between the two leaves a manifest that simply does not know about
the trailing bytes (and :meth:`TraceStore.open` tolerates exactly that).
Nothing is ever rewritten in place — the store is the durable substrate
under streaming ingestion and incremental mining, and its fingerprint
history is how downstream artifacts (specification repositories, benchmark
records) say *which* corpus they were computed from.

The one sanctioned rewrite is :meth:`TraceStore.compact`
(:mod:`repro.durability.compact`): batches tombstoned by
:meth:`TraceStore.mark_deleted` are dropped, unreferenced vocabulary
labels garbage-collected, and the store re-rooted into a fresh fingerprint
lineage whose manifest records ``compacted_from`` — the provenance link
that tells caches and checkpoints their state belongs to the old lineage.
:mod:`repro.durability.fsck` is the auditor that re-verifies all of the
above on demand (``repro fsck``).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..core.errors import DataFormatError
from ..core.events import EventId, EventVocabulary
from ..core.sequence import SequenceDatabase
from ..durability.journal import atomic_write_text
from ..testing import faults
from .formats import EncodedTrace, TraceRecord, stream_traces

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
DATA_NAME = "traces.bin"
MANIFEST_VERSION = 1

_HEADER = struct.Struct("<II")  # name byte-length + 1 (0 = unnamed), event count


class BatchInfo(NamedTuple):
    """Manifest entry for one appended batch.

    ``source`` is optional ingest provenance (``{"path": ..., "sha256":
    ...}`` for file ingests) committed atomically with the batch — it is
    how a crashed multi-file ingest can be re-run without duplicating the
    files that already committed.  ``deleted`` is the tombstone set by
    :meth:`TraceStore.mark_deleted`; reads still include tombstoned
    batches until :meth:`TraceStore.compact` rewrites the store.
    """

    index: int
    offset: int
    nbytes: int
    traces: int
    events: int
    alphabet: Tuple[EventId, ...]
    fingerprint: str
    deleted: bool = False
    source: Optional[dict] = None

    def as_dict(self) -> dict:
        payload = {
            "index": self.index,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "traces": self.traces,
            "events": self.events,
            "alphabet": list(self.alphabet),
            "fingerprint": self.fingerprint,
        }
        if self.deleted:
            payload["deleted"] = True
        if self.source is not None:
            payload["source"] = dict(self.source)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "BatchInfo":
        return cls(
            index=int(payload["index"]),
            offset=int(payload["offset"]),
            nbytes=int(payload["nbytes"]),
            traces=int(payload["traces"]),
            events=int(payload["events"]),
            alphabet=tuple(int(event) for event in payload["alphabet"]),
            fingerprint=str(payload["fingerprint"]),
            deleted=bool(payload.get("deleted", False)),
            source=payload.get("source"),
        )


def _encode_trace(events: Sequence[EventId], name: Optional[str]) -> bytes:
    name_bytes = name.encode("utf-8") if name is not None else b""
    name_field = len(name_bytes) + 1 if name is not None else 0
    return (
        _HEADER.pack(name_field, len(events))
        + name_bytes
        + struct.pack(f"<{len(events)}i", *events)
    )


def _read_exact(handle, size: int, what: str) -> bytes:
    payload = handle.read(size)
    if len(payload) != size:
        raise DataFormatError(f"truncated {what} in store data file")
    return payload


def _decode_traces(handle, nbytes: int) -> Iterator[EncodedTrace]:
    """Decode one batch's traces from an open handle, one trace at a time.

    Reads exactly ``nbytes`` starting at the current position; memory is
    bounded by the longest single trace, never the batch.
    """
    consumed = 0
    while consumed < nbytes:
        header = _read_exact(handle, _HEADER.size, "trace record")
        name_field, count = _HEADER.unpack(header)
        consumed += _HEADER.size
        name: Optional[str] = None
        if name_field:
            name_len = name_field - 1
            name = _read_exact(handle, name_len, "trace name").decode("utf-8")
            consumed += name_len
        events = struct.unpack(
            f"<{count}i", _read_exact(handle, 4 * count, "trace events")
        )
        consumed += 4 * count
        yield EncodedTrace(events, name)
    if consumed != nbytes:
        raise DataFormatError("store batch payload does not align with its manifest entry")


class TraceStore:
    """Append-only trace storage with an interned vocabulary and a manifest.

    The constructor opens an existing store or (with ``create=True``, the
    default) initialises an empty one; :meth:`open` is the strict variant
    for "this must already exist" callers like the CLI.  Appends go through
    :meth:`append_batch` / :meth:`append_trace_file` and are atomic at the
    batch level — readers never observe half a batch.  Reads are either
    whole-corpus (:meth:`snapshot` decodes everything into a
    :class:`~repro.core.sequence.SequenceDatabase` for mining) or
    batch-granular (:meth:`iter_traces` with a start batch, plus
    :meth:`alphabet_since` — what incremental refresh uses to decide which
    roots an append can touch).  ``len(store)`` counts
    traces; :attr:`fingerprint` is the chained content hash of everything
    appended so far, quoted as provenance by specification repositories
    and the persisted incremental-mining cache.
    """

    def __init__(self, directory: PathLike, *, create: bool = True) -> None:
        self.directory = Path(directory)
        self.vocabulary = EventVocabulary()
        self.batches: List[BatchInfo] = []
        #: Name of the data file inside the directory.  ``traces.bin`` for
        #: generation 0; compaction writes a new generation-named file and
        #: repoints the manifest (see :mod:`repro.durability.compact`).
        self.data_file = DATA_NAME
        #: Incremented by every compaction; part of the new data file name.
        self.generation = 0
        #: The final fingerprint of the lineage this store was compacted
        #: from, or ``None`` for a never-compacted store.  Downstream
        #: caches treat a fingerprint from the old lineage as invalid,
        #: forcing one full re-mine after compaction.
        self.compacted_from: Optional[str] = None
        manifest = self.directory / MANIFEST_NAME
        if manifest.exists():
            self._load_manifest(manifest)
        elif create:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._save_manifest()
        else:
            raise DataFormatError(f"no trace store at {self.directory}")

    @classmethod
    def open(cls, directory: PathLike) -> "TraceStore":
        """Open an existing store; raise if the directory has no manifest."""
        return cls(directory, create=False)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append_batch(
        self,
        traces: Iterable[Union[TraceRecord, EncodedTrace, Sequence]],
        *,
        source: Optional[dict] = None,
    ) -> BatchInfo:
        """Append one batch of traces and return its manifest entry.

        Accepts label records (:class:`TraceRecord`, or any plain sequence
        of labels) — interned through the store vocabulary — and
        already-interned :class:`EncodedTrace` values, which must have been
        encoded against this store's vocabulary.  ``source`` is optional
        provenance recorded in the batch's manifest entry.

        The append is atomic at the batch level: the manifest is replaced
        only after the whole batch streamed to disk, so a source that
        raises mid-iteration — or a manifest replace that fails —
        commits nothing (partial bytes are torn trailing data the next
        append overwrites; interned labels and the in-memory batch list
        roll back).
        """
        checkpoint = len(self.batches)
        vocabulary_checkpoint = len(self.vocabulary)
        try:
            batch = self._append_batch_unsaved(traces, source=source)
            self._save_manifest()
        except BaseException:
            del self.batches[checkpoint:]
            self.vocabulary.truncate(vocabulary_checkpoint)
            raise
        return batch

    def append_batches(
        self,
        batches: Iterable[Iterable[Union[TraceRecord, EncodedTrace, Sequence]]],
        *,
        source: Optional[dict] = None,
    ) -> List[BatchInfo]:
        """Append several batches, committing the manifest once at the end.

        All-or-nothing across the whole iterable: if any batch (or the
        final manifest replace) fails, the in-memory state rolls back and
        the on-disk manifest is left untouched, so a re-run after fixing
        the input cannot duplicate the earlier batches.  Committing once
        also keeps a large chunked ingest linear — the manifest is not
        rewritten per chunk.  Batches that turn out empty are skipped
        entirely: a zero-trace append must not advance the content
        fingerprint (an identical corpus must fingerprint identically
        however it arrived).  ``source`` provenance, if given, is recorded
        on every batch of this call.
        """
        checkpoint = len(self.batches)
        vocabulary_checkpoint = len(self.vocabulary)
        infos: List[BatchInfo] = []
        try:
            for batch in batches:
                info = self._append_batch_unsaved(batch, source=source)
                if info.traces == 0:
                    self.batches.pop()
                    continue
                infos.append(info)
            self._save_manifest()
        except BaseException:
            del self.batches[checkpoint:]
            self.vocabulary.truncate(vocabulary_checkpoint)
            raise
        return infos

    def _append_batch_unsaved(
        self,
        traces: Iterable[Union[TraceRecord, EncodedTrace, Sequence]],
        *,
        source: Optional[dict] = None,
    ) -> BatchInfo:
        """Stream one batch to the data file; the caller saves the manifest."""
        if faults.ACTIVE is not None:
            # Chaos hook (tests/faults/): a full disk at the worst moment —
            # before any bytes land, so the batch rollback path is what the
            # injected ENOSPC exercises.
            faults.trigger("store.append")
        digest = hashlib.sha256()
        traces_count = 0
        events_count = 0
        nbytes = 0
        alphabet: set = set()
        offset = self._data_size()
        # Write at the *manifest* offset, not the physical end of file:
        # a torn earlier append (or a failed batch in this process) can
        # leave trailing bytes the manifest does not know about, and they
        # must be overwritten, never built upon.  Chunks stream straight
        # to disk with the content hash folded incrementally, so memory
        # stays bounded by the longest single trace.
        with open(self.data_path, "r+b" if self.data_path.exists() else "w+b") as handle:
            handle.seek(offset)
            for trace in traces:
                name: Optional[str] = None
                if isinstance(trace, EncodedTrace):
                    encoded = trace.events
                    name = trace.name
                    for event in encoded:
                        if not 0 <= event < len(self.vocabulary):
                            raise DataFormatError(
                                f"encoded trace uses unknown event id {event}"
                            )
                else:
                    if isinstance(trace, TraceRecord):
                        events, name = trace.events, trace.name
                    else:
                        events = trace
                    encoded = self.vocabulary.encode(events, register=True)
                chunk = _encode_trace(encoded, name)
                handle.write(chunk)
                digest.update(chunk)
                nbytes += len(chunk)
                traces_count += 1
                events_count += len(encoded)
                alphabet.update(encoded)
            handle.truncate()
            # The payload must be durable before any manifest names it:
            # otherwise a power loss after the (fsynced) manifest rename
            # could surface a manifest promising bytes the disk never got.
            handle.flush()
            os.fsync(handle.fileno())

        previous = self.batches[-1].fingerprint if self.batches else ""
        fingerprint = hashlib.sha256(
            previous.encode("ascii") + digest.digest()
        ).hexdigest()
        batch = BatchInfo(
            index=len(self.batches),
            offset=offset,
            nbytes=nbytes,
            traces=traces_count,
            events=events_count,
            alphabet=tuple(sorted(alphabet)),
            fingerprint=fingerprint,
            source=source,
        )
        self.batches.append(batch)
        return batch

    def discard_if_empty(self) -> bool:
        """Remove the store's files if nothing was ever committed.

        Best-effort cleanup for callers that created a store speculatively
        (the CLI, before its first ingest succeeds); returns whether the
        store was removed.  The directory itself is only removed when the
        store's own files were the only thing in it.
        """
        if self.batches:
            return False
        self.manifest_path.unlink(missing_ok=True)
        self.data_path.unlink(missing_ok=True)
        try:
            self.directory.rmdir()
        except OSError:
            pass
        return True

    def append_trace_file(
        self, path: PathLike, format: Optional[str] = None
    ) -> BatchInfo:
        """Stream one trace file (any registered format, ``.gz`` included)
        into the store as a single batch.

        Atomic per file: a parse error anywhere in the file commits
        nothing (see :meth:`append_batch`)."""
        return self.append_batch(stream_traces(path, format=format))

    def has_source(self, source: dict) -> bool:
        """Whether any committed batch carries this ``source`` provenance.

        The ingest CLI's crash-resume check: a file whose identity already
        appears in the manifest was fully committed by an earlier run and
        must not be appended again.
        """
        return any(batch.source == source for batch in self.batches)

    # ------------------------------------------------------------------ #
    # Deletion and compaction
    # ------------------------------------------------------------------ #
    def mark_deleted(self, indices: Iterable[int]) -> int:
        """Tombstone batches for the next :meth:`compact`.

        Deletion is deliberately deferred: reads (and the fingerprint
        chain, and every cache keyed on it) still include tombstoned
        batches, so marking is cheap and safe at any time.  The space and
        the dead vocabulary labels are reclaimed by :meth:`compact`,
        which re-roots the lineage.  Returns how many batches changed
        state; unknown indices raise :class:`DataFormatError`.
        """
        targets = set(int(index) for index in indices)
        unknown = targets - {batch.index for batch in self.batches}
        if unknown:
            raise DataFormatError(
                f"cannot delete unknown batch indices {sorted(unknown)} "
                f"(store has {len(self.batches)} batches)"
            )
        changed = 0
        for position, batch in enumerate(self.batches):
            if batch.index in targets and not batch.deleted:
                self.batches[position] = batch._replace(deleted=True)
                changed += 1
        if changed:
            self._save_manifest()
        return changed

    def compact(self):
        """Rewrite the store dropping tombstoned batches and dead labels.

        Delegates to :func:`repro.durability.compact.compact_store`; see
        there for the crash-safety argument.  Returns a
        :class:`~repro.durability.compact.CompactionReport`.
        """
        from ..durability.compact import compact_store

        return compact_store(self)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def iter_traces(
        self, start_batch: int = 0, stop_batch: Optional[int] = None
    ) -> Iterator[EncodedTrace]:
        """Yield the encoded traces of batches ``[start_batch, stop_batch)``."""
        selected = self.batches[start_batch:stop_batch]
        if not selected:
            return
        with open(self.data_path, "rb") as handle:
            for batch in selected:
                handle.seek(batch.offset)
                yield from _decode_traces(handle, batch.nbytes)

    def snapshot(self, stop_batch: Optional[int] = None) -> SequenceDatabase:
        """Materialise batches ``[0, stop_batch)`` as a mining database.

        The snapshot owns a *copy* of the vocabulary, so interning more
        labels into either side never desynchronises the other; ids agree
        by construction because the vocabulary is append-only.
        """
        database = SequenceDatabase(EventVocabulary(self.vocabulary.labels()))
        for trace in self.iter_traces(stop_batch=stop_batch):
            database.add_encoded(trace.events, name=trace.name)
        return database

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(batch.traces for batch in self.batches)

    def total_events(self) -> int:
        """Total number of events across every appended batch."""
        return sum(batch.events for batch in self.batches)

    @property
    def fingerprint(self) -> str:
        """The chained content fingerprint of everything appended so far."""
        return self.batches[-1].fingerprint if self.batches else ""

    def alphabet_since(self, start_batch: int) -> Tuple[EventId, ...]:
        """Distinct event ids appearing in batches ``[start_batch, ...)``.

        This is the incremental miner's damage report: a first-level root
        absent from this set cannot have gained support or changed its
        subtree's output.
        """
        events: set = set()
        for batch in self.batches[start_batch:]:
            events.update(batch.alphabet)
        return tuple(sorted(events))

    def describe(self) -> dict:
        """A small statistics dictionary for reports and the CLI."""
        return {
            "directory": str(self.directory),
            "batches": len(self.batches),
            "deleted_batches": sum(1 for batch in self.batches if batch.deleted),
            "traces": len(self),
            "events": self.total_events(),
            "distinct_events": len(self.vocabulary),
            "bytes": self._data_size(),
            "generation": self.generation,
            "fingerprint": self.fingerprint,
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @property
    def data_path(self) -> Path:
        return self.directory / self.data_file

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _data_size(self) -> int:
        if not self.batches:
            return 0
        last = self.batches[-1]
        return last.offset + last.nbytes

    def _load_manifest(self, manifest: Path) -> None:
        try:
            payload = json.loads(manifest.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise DataFormatError(f"invalid store manifest {manifest}: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != MANIFEST_VERSION:
            raise DataFormatError(f"unsupported store manifest version in {manifest}")
        self.vocabulary = EventVocabulary(payload.get("labels", []))
        self.batches = [BatchInfo.from_dict(entry) for entry in payload.get("batches", [])]
        self.data_file = str(payload.get("data_file", DATA_NAME))
        self.generation = int(payload.get("generation", 0))
        self.compacted_from = payload.get("compacted_from")
        expected = self._data_size()
        actual = self.data_path.stat().st_size if self.data_path.exists() else 0
        # Trailing bytes beyond the manifest are a torn append and ignored;
        # fewer bytes than the manifest promises is real corruption.
        if actual < expected:
            raise DataFormatError(
                f"store data file {self.data_path} is {actual} bytes, "
                f"manifest expects at least {expected}"
            )

    def _save_manifest(self) -> None:
        if faults.ACTIVE is not None:
            # Chaos hook (tests/faults/): the manifest replace failing or
            # the process dying between the data append and the commit.
            # Keyed by the batch count being committed, so tests can
            # target "the commit after the Nth batch".
            faults.trigger("store.manifest", key=str(len(self.batches)))
        payload = {
            "version": MANIFEST_VERSION,
            "labels": list(self.vocabulary.labels()),
            "batches": [batch.as_dict() for batch in self.batches],
        }
        if self.data_file != DATA_NAME:
            payload["data_file"] = self.data_file
        if self.generation:
            payload["generation"] = self.generation
        if self.compacted_from is not None:
            payload["compacted_from"] = self.compacted_from
        atomic_write_text(self.manifest_path, json.dumps(payload, indent=2) + "\n")
