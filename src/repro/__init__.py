"""repro — mining patterns and rules for software specification discovery.

A from-scratch reproduction of Lo & Khoo, *"Mining Patterns and Rules for
Software Specification Discovery"*, VLDB 2008: closed iterative pattern
mining, non-redundant recurrent rule mining, the LTL view of mined rules,
the baselines they are compared against (full miners, sequential patterns,
episodes, two-event rules), an IBM QUEST-style synthetic generator, a
simulated JBoss substrate for the case studies, and runtime monitoring of
the mined specifications.

Quickstart::

    from repro import SequenceDatabase, mine_closed_patterns, mine_non_redundant_rules

    db = SequenceDatabase.from_sequences([
        ["lock", "use", "unlock", "lock", "unlock"],
        ["lock", "read", "unlock"],
    ])
    patterns = mine_closed_patterns(db, min_support=3)
    rules = mine_non_redundant_rules(db, min_s_support=2, min_confidence=0.9)
"""

from .core import (
    EventVocabulary,
    MiningStats,
    PatternInstance,
    Sequence,
    SequenceDatabase,
)
from .core.errors import (
    ConfigurationError,
    DataFormatError,
    ExecutionFault,
    MonitoringError,
    PatternError,
    ReproError,
    ServingTimeout,
    SessionLost,
    VocabularyError,
)
from .datagen import QuestConfig, QuestGenerator, generate_profile
from .engine import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from .ltl import holds, ltl_to_rule, parse_ltl, rule_to_ltl
from .patterns import (
    ClosedIterativePatternMiner,
    FullIterativePatternMiner,
    GeneratorPatternMiner,
    IterativeMiningConfig,
    MinedPattern,
    PatternMiningResult,
    mine_closed_patterns,
    mine_frequent_patterns,
    mine_generators,
)
from .rules import (
    FullRecurrentRuleMiner,
    NonRedundantRecurrentRuleMiner,
    RecurrentRule,
    RuleMiningConfig,
    RuleMiningResult,
    mine_all_rules,
    mine_non_redundant_rules,
)
from .serving import CompiledRuleSet, StreamingMonitor, WatchDaemon, compile_rules
from .specs import SpecificationRepository, chart_from_pattern, rank_patterns, rank_rules
from .traces import Trace, TraceCollector, instrument, read_traces, write_traces
from .verification import RuleMonitor, coverage_of, monitor_database

__version__ = "1.0.0"

__all__ = [
    "EventVocabulary",
    "MiningStats",
    "PatternInstance",
    "Sequence",
    "SequenceDatabase",
    "ConfigurationError",
    "DataFormatError",
    "ExecutionFault",
    "MonitoringError",
    "PatternError",
    "ReproError",
    "ServingTimeout",
    "SessionLost",
    "VocabularyError",
    "QuestConfig",
    "QuestGenerator",
    "generate_profile",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "resolve_backend",
    "holds",
    "ltl_to_rule",
    "parse_ltl",
    "rule_to_ltl",
    "ClosedIterativePatternMiner",
    "FullIterativePatternMiner",
    "GeneratorPatternMiner",
    "IterativeMiningConfig",
    "MinedPattern",
    "PatternMiningResult",
    "mine_closed_patterns",
    "mine_frequent_patterns",
    "mine_generators",
    "FullRecurrentRuleMiner",
    "NonRedundantRecurrentRuleMiner",
    "RecurrentRule",
    "RuleMiningConfig",
    "RuleMiningResult",
    "mine_all_rules",
    "mine_non_redundant_rules",
    "CompiledRuleSet",
    "StreamingMonitor",
    "WatchDaemon",
    "compile_rules",
    "SpecificationRepository",
    "chart_from_pattern",
    "rank_patterns",
    "rank_rules",
    "Trace",
    "TraceCollector",
    "instrument",
    "read_traces",
    "write_traces",
    "RuleMonitor",
    "coverage_of",
    "monitor_database",
    "__version__",
]
