"""HTTP exposition sidecar: ``/metrics``, ``/healthz`` and ``/statusz``.

The wire protocol's ``METRICS`` verb serves scrapes to *push-protocol*
clients, but a Prometheus server (or a plain ``curl``) speaks HTTP.  This
module is the bridge: a :class:`MetricsHTTPServer` hosts a stdlib
``ThreadingHTTPServer`` on a daemon thread next to a serving process and
answers three read-only endpoints:

``/metrics``
    The process-wide registry in Prometheus text format (version 0.0.4).
    When a pool is attached, its level gauges (queue depths, active
    sessions) are refreshed first so the scrape reflects this instant.
``/healthz``
    A JSON readiness probe: HTTP 200 with ``{"status": "ok"}`` while every
    attached component is live, 503 with ``{"status": "degraded"}`` when a
    pool shard thread has died or the attached watch daemon is backing off
    after consecutive poll failures.  Load balancers key off the status
    code; humans read the body.
``/statusz``
    A JSON snapshot for humans and dashboards: the pool's ``stats()``
    dict plus the full ``REGISTRY.snapshot()``.

Everything else is 404.  The server binds ``127.0.0.1`` by default — it
exposes operational detail and has no authentication, so binding a public
interface is an explicit operator decision (``--http-host``).  Attach one
via ``--http-port`` on ``repro serve`` / ``repro watch``, or in code::

    from repro.obs.httpexpo import MetricsHTTPServer
    expo = MetricsHTTPServer(port=9090, pool=pool)
    host, port = expo.start()
    ...
    expo.close()

The sidecar never mutates the components it reports on; ``pool`` and
``daemon`` are duck-typed (``stats``/``shard_liveness``/``generation`` and
``consecutive_failures``/``current_backoff``/``last_error``) so tests can
hand in stubs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .metrics import REGISTRY

__all__ = ["MetricsHTTPServer"]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Route the three endpoints; everything else is 404."""

    # Keep-alive would pin scrape threads on half-closed connections.
    protocol_version = "HTTP/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        expo: "MetricsHTTPServer" = self.server.expo  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(200, PROMETHEUS_CONTENT_TYPE, expo.render_metrics())
        elif path == "/healthz":
            status, body = expo.health()
            self._send(200 if status == "ok" else 503, "application/json", body)
        elif path == "/statusz":
            self._send(200, "application/json", expo.render_status())
        else:
            self._send(404, "application/json", '{"error": "not found"}\n')

    def _send(self, code: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are periodic; stderr chatter would drown real output."""


class _ExpoHTTPServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, expo: "MetricsHTTPServer") -> None:
        self.expo = expo
        super().__init__(address, _Handler)


class MetricsHTTPServer:
    """A background HTTP server exposing metrics and health for one process.

    Parameters
    ----------
    host / port:
        Bind address; port ``0`` binds an ephemeral port (read it back
        from :attr:`address`).
    pool:
        Optional :class:`~repro.serving.pool.MonitorPool` whose gauges are
        refreshed per scrape and whose shard liveness feeds ``/healthz``.
    daemon:
        Optional :class:`~repro.serving.daemon.WatchDaemon` whose poll
        failure/backoff state feeds ``/healthz``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pool: Optional[Any] = None,
        daemon: Optional[Any] = None,
    ) -> None:
        self.pool = pool
        self.daemon = daemon
        self._server = _ExpoHTTPServer((host, port), self)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — with port 0, the port actually bound."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Serve on a daemon thread; returns the bound address (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="metrics-http", daemon=True
            )
            self._thread.start()
        return self.address

    def close(self) -> None:
        """Stop serving and release the listening socket (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Endpoint bodies (separated from HTTP plumbing for direct testing)
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        """The Prometheus text body served at ``/metrics``."""
        if self.pool is not None:
            self.pool.stats()  # refresh queue/session level gauges
        return REGISTRY.render_text()

    def health(self) -> Tuple[str, str]:
        """``("ok" | "degraded", json_body)`` for ``/healthz``."""
        checks: Dict[str, object] = {}
        status = "ok"
        if self.pool is not None:
            liveness = list(self.pool.shard_liveness())
            checks["pool"] = {
                "generation": self.pool.generation,
                "shards_alive": sum(liveness),
                "shards": len(liveness),
            }
            if not all(liveness):
                status = "degraded"
        if self.daemon is not None:
            failures = self.daemon.consecutive_failures
            checks["daemon"] = {
                "consecutive_failures": failures,
                "backoff_seconds": self.daemon.current_backoff,
                "last_error": self.daemon.last_error,
            }
            if failures:
                status = "degraded"
        body = json.dumps({"status": status, "checks": checks}, sort_keys=True)
        return status, body + "\n"

    def render_status(self) -> str:
        """The JSON body served at ``/statusz``."""
        status: Dict[str, object] = {}
        if self.pool is not None:
            status["pool"] = dict(self.pool.stats())
        status["metrics"] = REGISTRY.snapshot()
        return json.dumps(status, sort_keys=True, default=repr) + "\n"
