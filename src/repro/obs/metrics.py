"""Process-wide metrics registry: labelled counters, gauges, histograms.

Telemetry before this layer was fragmented: :class:`~repro.core.stats.MiningStats`
ad-hoc ``extra`` dicts, one-shot ``MonitorPool.stats()`` snapshots, and
``watch_state.json`` blobs — no latency distributions, no uniform naming,
and no way to scrape a live server.  This module is the single funnel:

* :class:`MetricsRegistry` holds *families* (:class:`Counter`,
  :class:`Gauge`, fixed-bucket :class:`Histogram`), each carrying labelled
  sample children.  All mutation goes through one registry lock, so any
  thread (shard workers, the server's handler threads, the watch daemon)
  can record without coordination.
* Registries are **mergeable**: :meth:`MetricsRegistry.snapshot` produces a
  plain picklable dict and :meth:`MetricsRegistry.merge` folds one in —
  counters and histogram buckets add, gauges keep their maximum — so
  engine *worker processes* ship a delta registry back inside their
  shard/unit outcomes and the coordinator folds them in deterministically,
  exactly like ``MiningStats.merge_counters``.  Merging is commutative and
  associative, so completion order never changes the result.
* :meth:`MetricsRegistry.render_text` renders the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` + samples, deterministically
  ordered), which is what the ``METRICS`` wire verb and ``repro metrics``
  print.

Every metric family the library records is declared at the bottom of this
module against the process-wide :data:`REGISTRY`, so importing any
instrumented module makes the *whole* catalogue visible to a scrape (empty
families still render their ``HELP``/``TYPE`` header).  The catalogue is
documented in ``docs/observability.md``.

Instrumentation can be globally disabled (:func:`set_enabled`) which turns
every record call into an early return — ``benchmarks/bench_obs_overhead.py``
uses this to measure the instrumented-vs-bare delta on the canonical
workloads.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "SERVING_BUCKETS",
    "UNIT_BUCKETS",
    "set_enabled",
    "enabled",
    "record_mining_stats",
    "record_rule_close",
    "unit_observation",
    "shard_observation",
    "merge_outcome_metrics",
]

#: Fixed default histogram buckets (seconds).  Spanning 100µs..10s covers
#: everything from a single verb dispatch to a full mining shard.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Serving-verb dispatch and per-event work are dominated by
#: sub-millisecond costs the 100µs default floor cannot resolve: 5µs..250ms.
SERVING_BUCKETS: Tuple[float, ...] = (
    0.000005,
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
)

#: Work units, shards, and rule/session lifetimes run long-tailed the
#: other way — whole subtrees or whole sessions: 1ms..120s.
UNIT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)

#: Global enable flag: one module-attribute check per record call when the
#: registry is muted (the ``faults.ACTIVE`` idiom), so the overhead
#: benchmark can compare armed vs. disarmed runs of the same code.
ENABLED: bool = True


def set_enabled(value: bool) -> None:
    """Globally arm (default) or mute every metric record call."""
    global ENABLED
    ENABLED = bool(value)


def enabled() -> bool:
    """Whether record calls currently reach the registry."""
    return ENABLED


def _validated_buckets(name: str, buckets: Sequence[float]) -> Tuple[float, ...]:
    """Validate declared histogram bounds: non-empty, positive, ascending.

    Buckets are part of a family's identity (cross-process merging is only
    exact when both sides share them), so a bad declaration must fail at
    declaration time with a message naming the family — not later as a
    merge conflict or a silently empty bucket.
    """
    bounds = tuple(float(bound) for bound in buckets)
    if not bounds:
        raise ValueError(f"histogram {name!r} needs at least one bucket bound")
    for bound in bounds:
        if not bound > 0:
            raise ValueError(
                f"histogram {name!r} bucket bounds must be positive, got {bound!r}"
            )
    for lower, upper in zip(bounds, bounds[1:]):
        if upper <= lower:
            raise ValueError(
                f"histogram {name!r} bucket bounds must be sorted strictly "
                f"ascending, got {upper!r} after {lower!r}"
            )
    return bounds


def _format_value(value: float) -> str:
    """Render a sample value the Prometheus way (integers without ``.0``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def _label_text(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Family:
    """Shared machinery of one named metric family.

    Samples live in ``self._samples`` keyed by the tuple of label *values*
    (in declared label-name order).  All mutation happens under the owning
    registry's lock, so concurrent recorders from any thread are safe.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._lock = lock
        self._samples: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, got {tuple(labels)}"
            )
        try:
            return tuple(str(labels[name]) for name in self.label_names)
        except KeyError as exc:  # pragma: no cover - caller bug
            raise ValueError(f"metric {self.name!r} missing label {exc}") from exc


class Counter(_Family):
    """A monotonically increasing labelled counter."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount  # type: ignore[operator]

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))  # type: ignore[arg-type]


class Gauge(_Family):
    """A labelled gauge: a value that can go up and down (queue depths)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount  # type: ignore[operator]

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))  # type: ignore[arg-type]


class Histogram(_Family):
    """A labelled fixed-bucket histogram of observations (seconds).

    Each sample child is ``[bucket_counts, total_sum, total_count]`` where
    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` *non*-
    cumulatively; cumulative counts (and the implicit ``+Inf`` bucket) are
    computed at render/snapshot time.  Fixed shared buckets are what make
    cross-process merging exact.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names, lock)
        self.buckets = _validated_buckets(name, buckets)

    def observe(self, value: float, **labels: object) -> None:
        if not ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            child = self._samples.get(key)
            if child is None:
                child = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._samples[key] = child
            counts, _, _ = child  # type: ignore[misc]
            index = len(self.buckets)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    index = position
                    break
            counts[index] += 1
            child[1] += value  # type: ignore[index]
            child[2] += 1  # type: ignore[index]

    def time(self, **labels: object) -> "_HistogramTimer":
        """Context manager observing the elapsed wall-clock on exit."""
        return _HistogramTimer(self, labels)

    def sample(self, **labels: object) -> Tuple[List[int], float, int]:
        """(non-cumulative bucket counts incl. overflow, sum, count)."""
        key = self._key(labels)
        with self._lock:
            child = self._samples.get(key)
            if child is None:
                return [0] * (len(self.buckets) + 1), 0.0, 0
            counts, total, count = child  # type: ignore[misc]
            return list(counts), float(total), int(count)


class _HistogramTimer:
    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: Mapping[str, object]) -> None:
        self._histogram = histogram
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start, **self._labels)


class MetricsRegistry:
    """A set of metric families sharing one lock and one namespace.

    The process-wide instance is :data:`REGISTRY`; worker processes build
    throwaway instances to carry deltas (see :func:`unit_observation`).
    Family constructors are idempotent: re-declaring the same name with the
    same type/labels returns the existing family, a conflicting
    re-declaration raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------- #
    # Family declaration
    # ------------------------------------------------------------- #
    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help_text, tuple(labels))

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help_text, tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        family = self._declare(Histogram, name, help_text, tuple(labels), tuple(buckets))
        return family

    def _declare(self, cls, name, help_text, label_names, buckets=None):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already declared as {existing.kind}"
                        f"{existing.label_names}"
                    )
                if buckets is not None and existing.buckets != _validated_buckets(  # type: ignore[attr-defined]
                    name, buckets
                ):
                    raise ValueError(f"histogram {name!r} already declared with other buckets")
                return existing
            if cls is Histogram:
                family = cls(name, help_text, label_names, self._lock, buckets)
            else:
                family = cls(name, help_text, label_names, self._lock)
            self._families[name] = family
            return family

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------- #
    # Snapshot / merge
    # ------------------------------------------------------------- #
    def snapshot(self) -> Dict[str, object]:
        """A deterministic, picklable view of every family and sample.

        The shape is stable (sorted family names, sorted label tuples) so
        two registries that recorded the same events — in any order —
        snapshot identically; the engine's merge-determinism tests pin
        this.
        """
        out: Dict[str, object] = {}
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                entry: Dict[str, object] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                }
                if isinstance(family, Histogram):
                    entry["buckets"] = list(family.buckets)
                    entry["samples"] = [
                        [list(key), list(child[0]), float(child[1]), int(child[2])]  # type: ignore[index]
                        for key, child in sorted(family._samples.items())
                    ]
                else:
                    entry["samples"] = [
                        [list(key), float(value)]  # type: ignore[arg-type]
                        for key, value in sorted(family._samples.items())
                    ]
                out[name] = entry
        return out

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges max.

        Families absent here are created from the snapshot's metadata, so a
        delta built by a worker that only ever saw two families merges into
        the full coordinator registry.  Counter and histogram merging is
        commutative/associative; gauges take the maximum — the only
        deterministic order-free combination for level-style values.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry["kind"]  # type: ignore[index]
            labels = tuple(entry["labels"])  # type: ignore[index,arg-type]
            help_text = entry.get("help", "")  # type: ignore[union-attr]
            if kind == "histogram":
                family = self.histogram(name, help_text, labels, entry["buckets"])  # type: ignore[index]
                with self._lock:
                    for key, counts, total, count in entry["samples"]:  # type: ignore[index]
                        child = family._samples.get(tuple(key))
                        if child is None:
                            child = [[0] * (len(family.buckets) + 1), 0.0, 0]
                            family._samples[tuple(key)] = child
                        for position, bucket_count in enumerate(counts):
                            child[0][position] += bucket_count  # type: ignore[index]
                        child[1] += total  # type: ignore[index]
                        child[2] += count  # type: ignore[index]
                continue
            if kind == "counter":
                counter = self.counter(name, help_text, labels)
                with self._lock:
                    for key, value in entry["samples"]:  # type: ignore[index]
                        counter._samples[tuple(key)] = (
                            counter._samples.get(tuple(key), 0.0) + value  # type: ignore[operator]
                        )
                continue
            gauge = self.gauge(name, help_text, labels)
            with self._lock:
                for key, value in entry["samples"]:  # type: ignore[index]
                    current = gauge._samples.get(tuple(key))
                    if current is None or value > current:  # type: ignore[operator]
                        gauge._samples[tuple(key)] = float(value)

    def reset(self) -> None:
        """Zero every sample while keeping the declared families (tests)."""
        with self._lock:
            for family in self._families.values():
                family._samples.clear()

    # ------------------------------------------------------------- #
    # Exposition
    # ------------------------------------------------------------- #
    def render_text(self) -> str:
        """Prometheus text exposition format, deterministically ordered."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                lines.append(f"# TYPE {name} {family.kind}")
                if isinstance(family, Histogram):
                    for key, child in sorted(family._samples.items()):
                        counts, total, count = child  # type: ignore[misc]
                        cumulative = 0
                        for bound, bucket_count in zip(family.buckets, counts):
                            cumulative += bucket_count
                            labels = _label_text(
                                family.label_names, key, f'le="{_format_le(bound)}"'
                            )
                            lines.append(f"{name}_bucket{labels} {cumulative}")
                        labels = _label_text(family.label_names, key, 'le="+Inf"')
                        lines.append(f"{name}_bucket{labels} {count}")
                        lines.append(
                            f"{name}_sum{_label_text(family.label_names, key)}"
                            f" {_format_value(total)}"
                        )
                        lines.append(f"{name}_count{_label_text(family.label_names, key)} {count}")
                else:
                    for key, value in sorted(family._samples.items()):
                        labels = _label_text(family.label_names, key)
                        lines.append(f"{name}{labels} {_format_value(value)}")  # type: ignore[arg-type]
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumented module records into.
REGISTRY = MetricsRegistry()


# ------------------------------------------------------------------- #
# The metric catalogue (documented in docs/observability.md)
# ------------------------------------------------------------------- #

# --- engine ---------------------------------------------------------
ENGINE_UNIT_SECONDS = REGISTRY.histogram(
    "repro_engine_unit_seconds",
    "Wall-clock seconds per work-stealing work unit, by unit kind.",
    labels=("kind",),
    buckets=UNIT_BUCKETS,
)
ENGINE_SHARD_SECONDS = REGISTRY.histogram(
    "repro_engine_shard_seconds",
    "Wall-clock seconds per statically planned mining shard.",
    buckets=UNIT_BUCKETS,
)
ENGINE_UNITS_TOTAL = REGISTRY.counter(
    "repro_engine_units_total",
    "Work units executed to completion, by unit kind.",
    labels=("kind",),
)
ENGINE_SHARDS_TOTAL = REGISTRY.counter(
    "repro_engine_shards_total",
    "Mining shards executed to completion.",
)
ENGINE_RUNS_TOTAL = REGISTRY.counter(
    "repro_engine_runs_total",
    "Mining runs completed, by execution backend.",
    labels=("backend",),
)

# --- mining counters (MiningStats mirror) ---------------------------
MINING_COUNTER_TOTAL = REGISTRY.counter(
    "repro_mining_counter_total",
    "MiningStats dataclass counters accumulated over completed runs.",
    labels=("name",),
)
MINING_EXTRA_TOTAL = REGISTRY.counter(
    "repro_mining_extra_total",
    "MiningStats.extra ad-hoc counters accumulated over completed runs.",
    labels=("key",),
)

# --- serving: monitor pool ------------------------------------------
POOL_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_pool_queue_depth",
    "Events waiting in a shard's bounded queue (set at scrape time).",
    labels=("shard",),
)
POOL_SESSIONS_ACTIVE = REGISTRY.gauge(
    "repro_pool_sessions_active",
    "Open sessions across the pool (set at scrape time).",
)
POOL_SESSIONS_OPENED_TOTAL = REGISTRY.counter(
    "repro_pool_sessions_opened_total",
    "Sessions admitted by the pool.",
)
POOL_SESSIONS_CLOSED_TOTAL = REGISTRY.counter(
    "repro_pool_sessions_closed_total",
    "Sessions closed normally (END processed).",
)
POOL_SESSIONS_LOST_TOTAL = REGISTRY.counter(
    "repro_pool_sessions_lost_total",
    "Sessions lost to shard crashes (answered SESSION_LOST).",
)
POOL_BUSY_TOTAL = REGISTRY.counter(
    "repro_pool_busy_rejections_total",
    "Events rejected with BUSY because a shard queue was full.",
)
POOL_SHARD_RESTARTS_TOTAL = REGISTRY.counter(
    "repro_pool_shard_restarts_total",
    "Shard worker threads restarted by the supervisor.",
)
POOL_EVENTS_TOTAL = REGISTRY.counter(
    "repro_pool_events_total",
    "Events drained and processed by shard workers.",
)

# --- serving: push server -------------------------------------------
SERVER_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_server_request_seconds",
    "EventPushServer dispatch latency per request, by verb.",
    labels=("op",),
    buckets=SERVING_BUCKETS,
)
SERVER_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_server_requests_total",
    "Requests dispatched by the push server, by verb.",
    labels=("op",),
)
SERVER_BUSY_REPLIES_TOTAL = REGISTRY.counter(
    "repro_server_busy_replies_total",
    "Replies carrying BUSY backpressure.",
)
SERVER_SESSION_LOST_REPLIES_TOTAL = REGISTRY.counter(
    "repro_server_session_lost_replies_total",
    "Replies reporting SESSION_LOST after a shard crash.",
)
SERVER_ERRORS_TOTAL = REGISTRY.counter(
    "repro_server_errors_total",
    "Requests answered with an ERROR frame.",
)
SERVER_CONNECTIONS_TOTAL = REGISTRY.counter(
    "repro_server_connections_total",
    "TCP connections accepted by the push server.",
)

# --- serving: per-rule analytics ------------------------------------
RULE_POINTS_TOTAL = REGISTRY.counter(
    "repro_rule_points_total",
    "Temporal points per monitored rule, by outcome (opened/satisfied/violated).",
    labels=("rule", "outcome"),
)
RULE_TRIE_ADVANCES_TOTAL = REGISTRY.counter(
    "repro_rule_trie_advances_total",
    "Premise-trie advances that armed a rule (its full premise matched).",
    labels=("rule",),
)
RULE_ACTIVE_SECONDS = REGISTRY.histogram(
    "repro_rule_active_seconds",
    "Wall-clock from a rule's first opened point to its trace close.",
    labels=("rule",),
    buckets=UNIT_BUCKETS,
)

# --- serving: watch daemon ------------------------------------------
DAEMON_CYCLE_SECONDS = REGISTRY.histogram(
    "repro_daemon_cycle_seconds",
    "WatchDaemon cycle wall-clock seconds.",
)
DAEMON_CYCLES_TOTAL = REGISTRY.counter(
    "repro_daemon_cycles_total",
    "WatchDaemon cycles completed, by outcome status.",
    labels=("status",),
)
DAEMON_SWAPS_TOTAL = REGISTRY.counter(
    "repro_daemon_swaps_total",
    "Hot swaps of the compiled rule set performed by the daemon.",
)

# --- observability self-monitoring ----------------------------------
OBS_SPANS_DROPPED_TOTAL = REGISTRY.counter(
    "repro_obs_spans_dropped_total",
    "Finished spans lost to ring eviction or trace-file write failures.",
    labels=("reason",),
)

# --- durability ------------------------------------------------------
DURABILITY_JOURNAL_APPENDS_TOTAL = REGISTRY.counter(
    "repro_durability_journal_appends_total",
    "Records appended to checkpoint journals.",
)
DURABILITY_JOURNAL_FSYNCS_TOTAL = REGISTRY.counter(
    "repro_durability_journal_fsyncs_total",
    "fsync(2) calls issued by checkpoint journals.",
)
DURABILITY_RESUMED_TOTAL = REGISTRY.counter(
    "repro_durability_checkpoint_resumed_total",
    "Work items skipped on resume because the journal already held them.",
    labels=("kind",),
)


# ------------------------------------------------------------------- #
# Engine helpers: worker-side deltas and run-level stats mirroring
# ------------------------------------------------------------------- #

def unit_observation(kind: str, seconds: float) -> Dict[str, object]:
    """A delta snapshot recording one executed work unit.

    Built worker-side (a throwaway registry, not :data:`REGISTRY`) and
    shipped inside the :class:`~repro.engine.sharding.UnitOutcome`; the
    coordinator merges it so single-process and multi-process runs record
    identical counters.
    """
    delta = MetricsRegistry()
    delta.histogram(
        ENGINE_UNIT_SECONDS.name,
        ENGINE_UNIT_SECONDS.help,
        ("kind",),
        buckets=ENGINE_UNIT_SECONDS.buckets,
    ).observe(seconds, kind=kind)
    delta.counter(ENGINE_UNITS_TOTAL.name, ENGINE_UNITS_TOTAL.help, ("kind",)).inc(kind=kind)
    return delta.snapshot()


def shard_observation(seconds: float) -> Dict[str, object]:
    """A delta snapshot recording one executed mining shard."""
    delta = MetricsRegistry()
    delta.histogram(
        ENGINE_SHARD_SECONDS.name,
        ENGINE_SHARD_SECONDS.help,
        buckets=ENGINE_SHARD_SECONDS.buckets,
    ).observe(seconds)
    delta.counter(ENGINE_SHARDS_TOTAL.name, ENGINE_SHARDS_TOTAL.help).inc()
    return delta.snapshot()


def merge_outcome_metrics(outcomes: Iterable[object]) -> None:
    """Fold the ``metrics`` delta of every outcome into :data:`REGISTRY`."""
    if not ENABLED:
        return
    for outcome in outcomes:
        delta = getattr(outcome, "metrics", None)
        if delta:
            REGISTRY.merge(delta)


def record_rule_close(
    rule: str,
    opened: int,
    satisfied: int,
    violated: int,
    advances: int,
    active_seconds: Optional[float] = None,
) -> None:
    """Mirror one rule's per-trace tallies onto the analytics families.

    Called once per rule per closed trace by ``StreamingMonitor.end_trace``
    — never at per-event sites, so the monitoring hot loop stays free of
    registry locks and the mirrored totals merge order-free across shards.
    """
    if not ENABLED:
        return
    if opened:
        RULE_POINTS_TOTAL.inc(opened, rule=rule, outcome="opened")
    if satisfied:
        RULE_POINTS_TOTAL.inc(satisfied, rule=rule, outcome="satisfied")
    if violated:
        RULE_POINTS_TOTAL.inc(violated, rule=rule, outcome="violated")
    if advances:
        RULE_TRIE_ADVANCES_TOTAL.inc(advances, rule=rule)
    if active_seconds is not None:
        RULE_ACTIVE_SECONDS.observe(active_seconds, rule=rule)


def record_mining_stats(stats: object, backend: str) -> None:
    """Mirror a finished run's ``MiningStats`` onto registry counters.

    Called exactly once per mining run by the execution backends, *after*
    per-shard stats have been merged — never at individual bump sites, so
    in-process and cross-process accumulation can't double-count.  Keeps
    ``MiningStats.extra`` as the backward-compatible carrier while giving
    every key (``units_retried``, ``workers_lost``, ``pool_restarts``,
    ``units_resumed``, …) a scrapeable counter.
    """
    if not ENABLED:
        return
    ENGINE_RUNS_TOTAL.inc(backend=backend)
    for name in (
        "visited",
        "emitted",
        "pruned_support",
        "pruned_confidence",
        "pruned_closure",
        "pruned_redundancy",
        "instances_materialized",
        "shipped_bytes",
    ):
        value = getattr(stats, name, 0)
        if value:
            MINING_COUNTER_TOTAL.inc(value, name=name)
    for key, value in sorted(getattr(stats, "extra", {}).items()):
        if value:
            MINING_EXTRA_TOTAL.inc(value, key=key)
