"""Unified observability: the metrics registry and span tracing.

Telemetry used to be scattered — ``MiningStats.extra`` dicts, one-shot
``MonitorPool.stats()`` snapshots, ``watch_state.json`` blobs.  This
package is the single funnel every layer records into:

* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry` of
  labelled counters, gauges, and fixed-bucket histograms; thread-safe,
  snapshot/merge-able across worker processes (engine workers ship
  registry deltas inside their shard/unit outcomes, merged
  deterministically like ``MiningStats``), rendered in the Prometheus
  text format for the ``METRICS`` wire verb and ``repro metrics``;
* :mod:`repro.obs.tracing` — lightweight spans
  (``with span("engine.shard", index=3)``) recording monotonic durations
  to a bounded ring and optionally a JSONL trace file
  (``--trace-out``), disarmed at the cost of one attribute check per
  site, summarised offline by ``tools/trace_summary.py``; spans carry
  trace/span/parent ids that propagate over the push-protocol wire and
  back from engine worker processes (shipped inside outcomes);
* :mod:`repro.obs.httpexpo` — a stdlib HTTP sidecar exposing
  ``/metrics`` (Prometheus text), ``/healthz`` (readiness) and
  ``/statusz`` (JSON snapshot), attached with ``--http-port`` on
  ``repro serve`` / ``repro watch``.

The metric catalogue, span naming scheme, and scrape/trace workflows are
documented in ``docs/observability.md``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    SERVING_BUCKETS,
    UNIT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    merge_outcome_metrics,
    record_mining_stats,
    record_rule_close,
    set_enabled,
    shard_observation,
    unit_observation,
)
from .tracing import (
    TraceCollector,
    install as install_tracing,
    remote_span,
    reset as reset_tracing,
    span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "SERVING_BUCKETS",
    "UNIT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceCollector",
    "enabled",
    "install_tracing",
    "merge_outcome_metrics",
    "record_mining_stats",
    "record_rule_close",
    "remote_span",
    "reset_tracing",
    "set_enabled",
    "shard_observation",
    "span",
    "unit_observation",
]
