"""Lightweight span tracing: monotonic timings to a ring and a JSONL file.

Metrics (``repro.obs.metrics``) answer *how much / how fast on average*;
spans answer *where did this particular run spend its time*.  A span is
one timed region with a dotted name and free-form attributes::

    from ..obs import tracing
    ...
    with tracing.span("engine.shard", index=shard.index):
        outcome = runner.run_shard(shard)

Tracing follows the ``testing/faults.py`` arming pattern: the module-level
:data:`ACTIVE` collector is ``None`` unless somebody installed one, and
:func:`span` returns a shared no-op context manager in that case — so an
untraced run pays one attribute check per site and the mining hot loops
stay free (per-event work is deliberately *not* spanned; the finest grain
is a work unit / request / cycle).

When armed (``--trace-out FILE`` on ``repro mine-patterns`` /
``mine-rules`` / ``serve`` / ``watch``, or :func:`install` in code), every
finished span is appended to a bounded in-memory ring (oldest entries
evicted) and, if a path was given, written as one JSON line::

    {"name": "engine.shard", "ts": 1720000000.123, "dur": 0.0421,
     "pid": 4242, "trace": "9f0c…", "span": "41d2…", "parent": "77aa…",
     "attrs": {"index": 3}}

``tools/trace_summary.py`` aggregates such a file into a per-span-name
breakdown.  The span naming scheme (``layer.phase``) is documented in
``docs/observability.md``.

**Trace context.**  Every armed span carries a ``trace`` id and its own
``span`` id; nested spans record their parent's id as ``parent``.  The
context crosses process boundaries two ways:

* *over the wire* — ``PushClient`` stamps the caller's current ids into
  each frame (:func:`ensure_context`), and the push server / pool shards
  open child spans under the received ids (:func:`remote_span`), so one
  trace id threads client → server → shard;
* *into engine workers* — worker processes arm a file-less *shipping*
  collector (:func:`install_shipping`), adopt the coordinator's context
  (:func:`adopt`), and their finished spans travel back inside
  ``UnitOutcome``/``ShardOutcome`` (the ``spans`` field) for the
  coordinator to fold into its own ring and JSONL file
  (:func:`absorb_outcome_spans`).  Workers never write the trace file
  themselves — spawned workers re-import this module disarmed, and forked
  workers sharing the parent's file handle would interleave writes — so
  the single-writer property is preserved while worker timings still land
  in the one trace.

**Span loss is counted, never silent**: ring evictions and trace-file
write failures increment ``repro_obs_spans_dropped_total`` (labelled by
``reason``) so a scrape shows when a trace file is incomplete.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from . import metrics as _metrics

__all__ = [
    "ACTIVE",
    "TraceCollector",
    "absorb_outcome_spans",
    "adopt",
    "current_ids",
    "drain_shipped",
    "ensure_context",
    "install",
    "install_shipping",
    "remote_span",
    "reset",
    "shipping",
    "span",
]


def _new_id() -> str:
    """A fresh 64-bit hex id for a trace or span."""
    return uuid.uuid4().hex[:16]


#: Per-thread span stack (innermost open span's ids) and ambient trace id.
_local = threading.local()

#: Process-base context adopted from a remote coordinator (worker side):
#: spans opened with no enclosing span become children of this.
_BASE: Optional[Tuple[str, Optional[str]]] = None


def _stack() -> List[Tuple[str, str]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_ids() -> Optional[Tuple[str, Optional[str]]]:
    """The innermost open ``(trace_id, span_id)`` on this thread, if any.

    Falls back to the process-base context installed by :func:`adopt`, so
    a worker's top-level spans still parent under the coordinator's span.
    """
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return _BASE


def ensure_context() -> Tuple[str, Optional[str]]:
    """Ids to stamp into an outgoing wire frame: ``(trace_id, span_id)``.

    Inside a span this is that span's ids; outside, a per-thread ambient
    trace id is created lazily (no parent span), so all of one client
    thread's requests share a trace even when the caller never opened a
    span itself.
    """
    ids = current_ids()
    if ids is not None:
        return ids
    ambient = getattr(_local, "ambient", None)
    if ambient is None:
        ambient = _local.ambient = _new_id()
    return ambient, None


def adopt(trace_id: Optional[str], parent_id: Optional[str] = None) -> None:
    """Adopt a remote trace context as this process's base (worker side)."""
    global _BASE
    if isinstance(trace_id, str) and trace_id:
        _BASE = (trace_id, parent_id if isinstance(parent_id, str) else None)
    else:
        _BASE = None


class TraceCollector:
    """Bounded ring of finished spans, optionally mirrored to a JSONL file.

    With ``shipping=True`` the collector is a worker-side buffer: no file,
    and :meth:`drain` hands the accumulated spans over (cleared) for
    shipping inside an outcome.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        ring_size: int = 4096,
        shipping: bool = False,
    ) -> None:
        self.path = path
        self.shipping = shipping
        #: The process that installed the collector: a forked worker finds
        #: itself holding a collector whose pid is not its own and must
        #: replace it (writing the parent's file from two processes would
        #: interleave) — see ``ShardRunner.setup``.
        self.pid = os.getpid()
        self._ring: Deque[Dict[str, object]] = deque(maxlen=max(1, ring_size))
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8") if path else None

    def record(
        self,
        name: str,
        duration: float,
        attrs: Dict[str, object],
        trace: Optional[str] = None,
        span_id: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> None:
        entry: Dict[str, object] = {
            "name": name,
            "ts": time.time(),
            "dur": duration,
            "pid": os.getpid(),
        }
        if trace is not None:
            entry["trace"] = trace
        if span_id is not None:
            entry["span"] = span_id
        if parent is not None:
            entry["parent"] = parent
        if attrs:
            entry["attrs"] = attrs
        self._append(entry)

    def absorb(self, entries: Iterable[Dict[str, object]]) -> None:
        """Fold pre-built span entries (shipped from a worker) in verbatim."""
        for entry in entries:
            self._append(dict(entry))

    def _append(self, entry: Dict[str, object]) -> None:
        with self._lock:
            # A shipping buffer is drained per unit, so eviction there means
            # genuine loss too — count it the same way.
            if len(self._ring) == self._ring.maxlen:
                _metrics.OBS_SPANS_DROPPED_TOTAL.inc(reason="ring")
            self._ring.append(entry)
            if self._file is not None:
                try:
                    self._file.write(json.dumps(entry, sort_keys=True) + "\n")
                    self._file.flush()
                except (OSError, ValueError):
                    # Disk full / closed handle: the span survives in the
                    # ring, but the file is now incomplete — say so.
                    _metrics.OBS_SPANS_DROPPED_TOTAL.inc(reason="write")

    def snapshot(self) -> List[Dict[str, object]]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> List[Dict[str, object]]:
        """Hand over and clear the ring (worker-side shipping)."""
        with self._lock:
            entries = list(self._ring)
            self._ring.clear()
            return entries

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: The armed collector, or ``None``:  span sites pay one attribute check.
ACTIVE: Optional[TraceCollector] = None


def install(path: Optional[str] = None, ring_size: int = 4096) -> TraceCollector:
    """Arm tracing (closing any previous collector) and return the collector."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = TraceCollector(path=path, ring_size=ring_size)
    return ACTIVE


def install_shipping(ring_size: int = 4096) -> TraceCollector:
    """Arm a worker-side shipping buffer: spans accumulate for :func:`drain_shipped`."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = TraceCollector(ring_size=ring_size, shipping=True)
    return ACTIVE


def reset() -> None:
    """Disarm tracing and close the collector's trace file, if any."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
        ACTIVE = None
    adopt(None)


def shipping() -> bool:
    """Whether the armed collector is a worker-side shipping buffer."""
    collector = ACTIVE
    return collector is not None and collector.shipping


def drain_shipped() -> Optional[Tuple[Dict[str, object], ...]]:
    """Finished spans to ship in an outcome, or ``None`` when not shipping."""
    collector = ACTIVE
    if collector is None or not collector.shipping:
        return None
    entries = collector.drain()
    return tuple(entries) if entries else None


def absorb_outcome_spans(outcomes: Iterable[object]) -> None:
    """Fold the ``spans`` batches shipped inside outcomes into :data:`ACTIVE`.

    The coordinator-side companion of :func:`drain_shipped`; called by the
    execution backends right next to ``merge_outcome_metrics``.  A no-op
    when tracing is disarmed (the batches are simply discarded with the
    outcomes).
    """
    collector = ACTIVE
    if collector is None:
        return
    for outcome in outcomes:
        batch = getattr(outcome, "spans", None)
        if batch:
            collector.absorb(batch)


class _Span:
    __slots__ = ("_collector", "_name", "_attrs", "_start", "_trace", "_span_id", "_parent")

    def __init__(
        self,
        collector: TraceCollector,
        name: str,
        attrs: Dict[str, object],
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> None:
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._trace = trace
        self._parent = parent
        self._span_id = _new_id()

    def __enter__(self) -> "_Span":
        if self._trace is None:
            ids = current_ids()
            if ids is not None:
                self._trace, self._parent = ids
            else:
                self._trace = _new_id()
        _stack().append((self._trace, self._span_id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        try:
            self._collector.record(
                self._name,
                duration,
                self._attrs,
                trace=self._trace,
                span_id=self._span_id,
                parent=self._parent,
            )
        finally:
            stack = getattr(_local, "stack", None)
            if stack:
                stack.pop()


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str, **attrs: object):
    """A context manager timing the enclosed region as span ``name``.

    Free when tracing is disarmed: the shared no-op manager is returned
    after a single module-attribute check.  Armed, the span inherits the
    innermost open span's trace context (or starts a fresh trace).
    """
    collector = ACTIVE
    if collector is None:
        return _NOOP
    return _Span(collector, name, attrs)


def remote_span(
    name: str,
    trace_id: object,
    parent_id: object = None,
    **attrs: object,
):
    """A span continuing a trace context received over the wire.

    ``trace_id``/``parent_id`` come from an untrusted frame, so anything
    non-string is ignored and the span falls back to local context.
    """
    collector = ACTIVE
    if collector is None:
        return _NOOP
    if not isinstance(trace_id, str) or not trace_id:
        return _Span(collector, name, attrs)
    parent = parent_id if isinstance(parent_id, str) and parent_id else None
    return _Span(collector, name, attrs, trace=trace_id, parent=parent)
