"""Lightweight span tracing: monotonic timings to a ring and a JSONL file.

Metrics (``repro.obs.metrics``) answer *how much / how fast on average*;
spans answer *where did this particular run spend its time*.  A span is
one timed region with a dotted name and free-form attributes::

    from ..obs import tracing
    ...
    with tracing.span("engine.shard", index=shard.index):
        outcome = runner.run_shard(shard)

Tracing follows the ``testing/faults.py`` arming pattern: the module-level
:data:`ACTIVE` collector is ``None`` unless somebody installed one, and
:func:`span` returns a shared no-op context manager in that case — so an
untraced run pays one attribute check per site and the mining hot loops
stay free (per-event work is deliberately *not* spanned; the finest grain
is a work unit / request / cycle).

When armed (``--trace-out FILE`` on ``repro mine-patterns`` /
``mine-rules`` / ``serve`` / ``watch``, or :func:`install` in code), every
finished span is appended to a bounded in-memory ring (oldest entries
evicted) and, if a path was given, written as one JSON line::

    {"name": "engine.shard", "ts": 1720000000.123, "dur": 0.0421,
     "pid": 4242, "attrs": {"index": 3}}

``tools/trace_summary.py`` aggregates such a file into a per-span-name
breakdown.  The span naming scheme (``layer.phase``) is documented in
``docs/observability.md``.

Collectors are coordinator-side: engine *worker processes* do not inherit
an armed collector (spawned workers re-import the module; forked workers
sharing the parent's file handle would interleave writes), so traces
describe the orchestrating process — per-unit worker timings travel as
metrics deltas instead.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = [
    "ACTIVE",
    "TraceCollector",
    "install",
    "reset",
    "span",
]


class TraceCollector:
    """Bounded ring of finished spans, optionally mirrored to a JSONL file."""

    def __init__(self, path: Optional[str] = None, ring_size: int = 4096) -> None:
        self.path = path
        self._ring: Deque[Dict[str, object]] = deque(maxlen=max(1, ring_size))
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8") if path else None

    def record(self, name: str, duration: float, attrs: Dict[str, object]) -> None:
        entry: Dict[str, object] = {
            "name": name,
            "ts": time.time(),
            "dur": duration,
            "pid": os.getpid(),
        }
        if attrs:
            entry["attrs"] = attrs
        with self._lock:
            self._ring.append(entry)
            if self._file is not None:
                self._file.write(json.dumps(entry, sort_keys=True) + "\n")
                self._file.flush()

    def snapshot(self) -> List[Dict[str, object]]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: The armed collector, or ``None``:  span sites pay one attribute check.
ACTIVE: Optional[TraceCollector] = None


def install(path: Optional[str] = None, ring_size: int = 4096) -> TraceCollector:
    """Arm tracing (closing any previous collector) and return the collector."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = TraceCollector(path=path, ring_size=ring_size)
    return ACTIVE


def reset() -> None:
    """Disarm tracing and close the collector's trace file, if any."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
        ACTIVE = None


class _Span:
    __slots__ = ("_collector", "_name", "_attrs", "_start")

    def __init__(self, collector: TraceCollector, name: str, attrs: Dict[str, object]) -> None:
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._collector.record(self._name, time.perf_counter() - self._start, self._attrs)


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str, **attrs: object):
    """A context manager timing the enclosed region as span ``name``.

    Free when tracing is disarmed: the shared no-op manager is returned
    after a single module-attribute check.
    """
    collector = ACTIVE
    if collector is None:
        return _NOOP
    return _Span(collector, name, attrs)
