"""Ranking mined patterns and rules (Section 8, future work).

The paper lists "develop a method to rank mined patterns and rules" as
future work.  The rankers here implement the natural baseline scores used by
follow-up specification-mining literature: support-weighted length for
patterns (long, frequent behaviours first) and a confidence/support/length
combination for rules.  Scores are deliberately simple, deterministic and
documented so downstream users can substitute their own.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..patterns.result import MinedPattern, PatternMiningResult
from ..rules.result import RuleMiningResult
from ..rules.rule import RecurrentRule


def pattern_score(pattern: MinedPattern) -> float:
    """Score a pattern: longer and more frequent is better (log-damped support)."""
    return len(pattern.events) * math.log1p(pattern.support)


def rank_patterns(result: PatternMiningResult, top: int = None) -> List[Tuple[float, MinedPattern]]:
    """Patterns sorted by :func:`pattern_score` (descending)."""
    scored = sorted(
        ((pattern_score(pattern), pattern) for pattern in result.patterns),
        key=lambda item: (-item[0], tuple(map(str, item[1].events))),
    )
    return scored[:top] if top is not None else scored


def rule_score(rule: RecurrentRule) -> float:
    """Score a rule: confidence first, then support and total length (log-damped)."""
    return rule.confidence * math.log1p(rule.i_support) * math.log1p(len(rule))


def rank_rules(result: RuleMiningResult, top: int = None) -> List[Tuple[float, RecurrentRule]]:
    """Rules sorted by :func:`rule_score` (descending)."""
    scored = sorted(
        ((rule_score(rule), rule) for rule in result.rules),
        key=lambda item: (-item[0], tuple(map(str, item[1].events))),
    )
    return scored[:top] if top is not None else scored
