"""MSC-style charts built from mined iterative patterns (Section 3.2).

Iterative patterns are inspired by Message Sequence Charts / Live Sequence
Charts but abstract away caller/callee information.  When events follow the
``Class.method`` convention the class part can be recovered, which is enough
to rebuild a simple chart: one *lifeline* per class, one *message* per
pattern event, in pattern order.  The chart is what the specification
repository stores and what the ASCII renderer draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence as TypingSequence, Tuple

from ..core.errors import DataFormatError
from ..core.events import EventLabel
from ..traces.event_model import MethodCallEvent


@dataclass(frozen=True)
class ChartMessage:
    """One message of a chart: a method invocation on a lifeline."""

    lifeline: str
    method: str
    position: int

    @property
    def label(self) -> str:
        """The flat event label of this message."""
        return f"{self.lifeline}.{self.method}"


@dataclass
class SequenceChart:
    """A minimal MSC-like chart: ordered messages over class lifelines."""

    name: str
    lifelines: List[str] = field(default_factory=list)
    messages: List[ChartMessage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.messages)

    def events(self) -> Tuple[EventLabel, ...]:
        """The chart's messages as the flat event labels of the source pattern."""
        return tuple(message.label for message in self.messages)

    def messages_on(self, lifeline: str) -> List[ChartMessage]:
        """All messages targeting one lifeline, in order."""
        return [message for message in self.messages if message.lifeline == lifeline]


def chart_from_pattern(
    pattern: TypingSequence[EventLabel],
    name: str = "mined-pattern",
    default_lifeline: str = "System",
) -> SequenceChart:
    """Build a chart from a pattern of (preferably ``Class.method``) events.

    Events that do not follow the ``Class.method`` convention are attached to
    ``default_lifeline`` so arbitrary mined patterns can still be charted.
    """
    if not pattern:
        raise DataFormatError("cannot build a chart from an empty pattern")
    chart = SequenceChart(name=name)
    for position, event in enumerate(pattern):
        try:
            call = MethodCallEvent.parse(str(event))
            lifeline, method = call.class_name, call.method_name
        except DataFormatError:
            lifeline, method = default_lifeline, str(event)
        if lifeline not in chart.lifelines:
            chart.lifelines.append(lifeline)
        chart.messages.append(ChartMessage(lifeline=lifeline, method=method, position=position))
    return chart
