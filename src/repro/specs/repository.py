"""A small repository for mined specifications.

Mining runs produce patterns and rules; downstream uses (program
comprehension, runtime verification, documentation) want to store, query and
serialise them together.  :class:`SpecificationRepository` holds both kinds,
supports querying by event, converts rules to their LTL form and round-trips
through JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..core.errors import DataFormatError
from ..core.events import EventLabel
from ..durability.journal import atomic_write_text
from ..patterns.result import MinedPattern, PatternMiningResult
from ..rules.result import RuleMiningResult
from ..rules.rule import RecurrentRule

PathLike = Union[str, Path]


class SpecificationRepository:
    """Stores mined iterative patterns and recurrent rules."""

    def __init__(self, name: str = "specifications") -> None:
        self.name = name
        self._patterns: List[MinedPattern] = []
        self._rules: List[RecurrentRule] = []
        #: Provenance of the last refresh (store fingerprint and corpus
        #: statistics), round-tripped through the JSON form when present.
        self.source: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def add_pattern(self, pattern: MinedPattern) -> None:
        """Store a single mined pattern."""
        self._patterns.append(pattern)

    def add_rule(self, rule: RecurrentRule) -> None:
        """Store a single mined rule."""
        self._rules.append(rule)

    def add_pattern_result(self, result: PatternMiningResult) -> int:
        """Store every pattern of a mining result; returns the number stored."""
        for pattern in result.patterns:
            self.add_pattern(pattern)
        return len(result.patterns)

    def add_rule_result(self, result: RuleMiningResult) -> int:
        """Store every rule of a mining result; returns the number stored."""
        for rule in result.rules:
            self.add_rule(rule)
        return len(result.rules)

    def replace_rules(
        self,
        rules: Iterable[RecurrentRule],
        source: Optional[Dict[str, object]] = None,
    ) -> None:
        """Swap the stored rule set wholesale (patterns are untouched).

        The watch daemon calls this on every hot-swap: the re-mined rules
        replace the previous generation atomically, and ``source`` (store
        fingerprint and corpus statistics) records which corpus state the
        new generation reflects.
        """
        self._rules = list(rules)
        if source is not None:
            self.source = dict(source)

    @staticmethod
    def provenance_from(description: Dict[str, object]) -> Dict[str, object]:
        """The :attr:`source` payload for a trace-store ``describe()`` dict.

        One definition of "which corpus state produced these specs" shared
        by :meth:`refresh_from_store` and the watch daemon's hot swap.
        """
        return {
            "store": description.get("directory"),
            "fingerprint": description.get("fingerprint"),
            "batches": description.get("batches"),
            "traces": description.get("traces"),
            "events": description.get("events"),
        }

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def patterns(self) -> List[MinedPattern]:
        """All stored patterns."""
        return list(self._patterns)

    @property
    def rules(self) -> List[RecurrentRule]:
        """All stored rules."""
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._patterns) + len(self._rules)

    def patterns_mentioning(self, event: EventLabel) -> List[MinedPattern]:
        """Patterns whose alphabet contains ``event``."""
        return [pattern for pattern in self._patterns if event in pattern.events]

    def rules_mentioning(self, event: EventLabel) -> List[RecurrentRule]:
        """Rules whose premise or consequent contains ``event``."""
        return [rule for rule in self._rules if event in rule.premise or event in rule.consequent]

    def rules_as_ltl(self) -> List[str]:
        """Every stored rule rendered as an LTL formula string."""
        return [rule.to_ltl() for rule in self._rules]

    # ------------------------------------------------------------------ #
    # Refreshing from a trace store
    # ------------------------------------------------------------------ #
    def refresh_from_store(
        self,
        store,
        pattern_miner=None,
        rule_miner=None,
        backend=None,
    ) -> "SpecificationRepository":
        """Replace this repository's contents from a trace-store snapshot.

        ``store`` is a :class:`~repro.ingest.store.TraceStore` (duck-typed:
        anything with ``snapshot()``/``describe()``); at least one of
        ``pattern_miner``/``rule_miner`` must be given and is run over the
        snapshot on the chosen backend.  The store's chained content
        fingerprint and corpus statistics are recorded in :attr:`source`,
        so a saved repository says exactly which corpus state it reflects.
        """
        if pattern_miner is None and rule_miner is None:
            raise DataFormatError(
                "refresh_from_store needs a pattern_miner and/or a rule_miner"
            )
        database = store.snapshot()
        # Mine before replacing anything: a miner that raises mid-run must
        # leave the repository exactly as it was, not emptied.
        patterns: List[MinedPattern] = []
        rules: List[RecurrentRule] = []
        if pattern_miner is not None:
            patterns = list(pattern_miner.mine(database, backend=backend).patterns)
        if rule_miner is not None:
            rules = list(rule_miner.mine(database, backend=backend).rules)
        self._patterns = patterns
        self._rules = rules
        self.source = self.provenance_from(store.describe())
        return self

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation of the whole repository."""
        payload: Dict[str, object] = {
            "name": self.name,
            "patterns": [pattern.as_dict() for pattern in self._patterns],
            "rules": [rule.as_dict() for rule in self._rules],
        }
        if self.source is not None:
            payload["source"] = self.source
        return payload

    def save(self, path: PathLike) -> None:
        """Write the repository to a JSON file, atomically and durably.

        Repositories are served from (and hot-swapped under a running
        daemon), so a crashed save must leave either the previous file or
        the new one — never a truncated mixture.
        """
        atomic_write_text(Path(path), json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpecificationRepository":
        """Rebuild a repository from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "patterns" not in payload or "rules" not in payload:
            raise DataFormatError("not a specification repository payload")
        repository = cls(name=str(payload.get("name", "specifications")))
        source = payload.get("source")
        if isinstance(source, dict):
            repository.source = source
        for entry in payload["patterns"]:
            repository.add_pattern(
                MinedPattern(events=tuple(entry["events"]), support=int(entry["support"]))
            )
        for entry in payload["rules"]:
            repository.add_rule(
                RecurrentRule(
                    premise=tuple(entry["premise"]),
                    consequent=tuple(entry["consequent"]),
                    s_support=int(entry["s_support"]),
                    i_support=int(entry["i_support"]),
                    confidence=float(entry["confidence"]),
                )
            )
        return repository

    @classmethod
    def load(cls, path: PathLike) -> "SpecificationRepository":
        """Read a repository previously written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise DataFormatError(f"invalid repository file {path}: {error}") from error
        return cls.from_dict(payload)
