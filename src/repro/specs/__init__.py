"""Specification model: charts, rendering, ranking and storage of mined specs."""

from .chart import ChartMessage, SequenceChart, chart_from_pattern
from .ranking import pattern_score, rank_patterns, rank_rules, rule_score
from .render import render_chart, render_pattern_blocks, render_rule
from .repository import SpecificationRepository

__all__ = [
    "ChartMessage",
    "SequenceChart",
    "chart_from_pattern",
    "pattern_score",
    "rank_patterns",
    "rank_rules",
    "rule_score",
    "render_chart",
    "render_pattern_blocks",
    "render_rule",
    "SpecificationRepository",
]
