"""ASCII rendering of charts and rules.

The paper's future work mentions a visualization tool for navigating mined
specifications; this module provides the text-mode version: charts are drawn
with one column per lifeline and one row per message (the style of Figure 4,
read top to bottom), rules are rendered premise-above-consequent (the style
of Figure 5).
"""

from __future__ import annotations

from typing import List, Sequence as TypingSequence

from ..core.events import EventLabel
from ..rules.rule import RecurrentRule
from .chart import SequenceChart


def render_chart(chart: SequenceChart, column_width: int = None) -> str:
    """Render a chart as an ASCII table: lifelines as columns, messages as rows."""
    if not chart.messages:
        return f"{chart.name}: (empty chart)"
    width = column_width or max(
        [len(lifeline) for lifeline in chart.lifelines]
        + [len(message.method) + 2 for message in chart.messages]
    )
    width = max(width, 8)

    def cell(text: str) -> str:
        return text[:width].center(width)

    lines: List[str] = [chart.name, ""]
    lines.append(" | ".join(cell(lifeline) for lifeline in chart.lifelines))
    lines.append("-+-".join("-" * width for _ in chart.lifelines))
    for message in chart.messages:
        row = []
        for lifeline in chart.lifelines:
            row.append(cell(f"[{message.method}]" if lifeline == message.lifeline else "|"))
        lines.append(" | ".join(row))
    return "\n".join(lines)


def render_pattern_blocks(
    pattern: TypingSequence[EventLabel], block_titles: TypingSequence[str] = (), block_size: int = 8
) -> str:
    """Render a long pattern as titled blocks, Figure 4 style."""
    lines: List[str] = []
    block_index = 0
    for start in range(0, len(pattern), block_size):
        title = (
            block_titles[block_index]
            if block_index < len(block_titles)
            else f"Block {block_index + 1}"
        )
        lines.append(title)
        for event in pattern[start : start + block_size]:
            lines.append(f"  {event}")
        block_index += 1
    return "\n".join(lines)


def render_rule(rule: RecurrentRule) -> str:
    """Render a rule premise-above-consequent, Figure 5 style."""
    lines: List[str] = ["Premise:"]
    lines.extend(f"  {event}" for event in rule.premise)
    lines.append("Consequent:")
    lines.extend(f"  {event}" for event in rule.consequent)
    lines.append(
        f"(s-sup={rule.s_support}, i-sup={rule.i_support}, conf={rule.confidence:.2f})"
    )
    return "\n".join(lines)
