"""PrefixSpan: classic sequential pattern mining (Pei et al., ICDE 2001).

The paper positions iterative pattern mining as an extension of sequential
pattern mining, so the library ships the classic algorithm both as a baseline
for comparisons and as a building block (the recurrent-rule premise miner is
a PrefixSpan variant).  A pattern here is *supported by a sequence* when it
is a subsequence of it; support is the number of supporting sequences —
repetitions within a sequence are deliberately not counted, which is exactly
the difference the paper's Section 1 motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence as TypingSequence, Tuple

from ..core.errors import ConfigurationError
from ..core.events import EventLabel
from ..core.pattern import format_pattern, is_subsequence
from ..core.sequence import SequenceDatabase
from ..core.stats import MiningStats


@dataclass(frozen=True)
class SequentialPattern:
    """A frequent sequential pattern with its sequence support."""

    events: Tuple[EventLabel, ...]
    support: int

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        return f"{format_pattern(self.events)} (seq-sup={self.support})"

    def is_subpattern_of(self, other: "SequentialPattern") -> bool:
        """Whether this pattern is a subsequence of ``other``."""
        return is_subsequence(self.events, other.events)


@dataclass
class SequentialMiningResult:
    """Frequent sequential patterns plus the run's statistics."""

    patterns: List[SequentialPattern] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)
    min_support: int = 0

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def support_of(self, events: TypingSequence[EventLabel]) -> Optional[int]:
        """Support of the exact pattern, or ``None`` if it was not mined."""
        target = tuple(events)
        for pattern in self.patterns:
            if pattern.events == target:
                return pattern.support
        return None


class PrefixSpan:
    """Depth-first sequential pattern mining over earliest-position projections."""

    def __init__(self, min_support: float = 2.0, max_length: Optional[int] = None) -> None:
        if min_support <= 0:
            raise ConfigurationError(f"min_support must be positive, got {min_support!r}")
        if max_length is not None and max_length < 1:
            raise ConfigurationError(f"max_length must be at least 1, got {max_length!r}")
        self.min_support = min_support
        self.max_length = max_length

    def mine(self, database: SequenceDatabase) -> SequentialMiningResult:
        """Mine all frequent sequential patterns of the database."""
        stats = MiningStats()
        stats.start()
        result = SequentialMiningResult(stats=stats)
        result.min_support = database.absolute_support(self.min_support)

        encoded = database.encoded
        initial: Dict[int, List[Tuple[int, int]]] = {}
        for sequence_index, sequence in enumerate(encoded):
            first_seen: Dict[int, int] = {}
            for position, event in enumerate(sequence):
                if event not in first_seen:
                    first_seen[event] = position
            for event, position in first_seen.items():
                initial.setdefault(event, []).append((sequence_index, position))

        for event in sorted(initial):
            projections = initial[event]
            if len(projections) < result.min_support:
                stats.pruned_support += 1
                continue
            self._grow(database, encoded, (event,), projections, result)

        stats.stop()
        return result

    def _grow(
        self,
        database: SequenceDatabase,
        encoded: List[Tuple[int, ...]],
        pattern: Tuple[int, ...],
        projections: List[Tuple[int, int]],
        result: SequentialMiningResult,
    ) -> None:
        stats = result.stats
        stats.visited += 1
        stats.emitted += 1
        result.patterns.append(
            SequentialPattern(database.vocabulary.decode(pattern), len(projections))
        )

        if self.max_length is not None and len(pattern) >= self.max_length:
            return

        extensions: Dict[int, List[Tuple[int, int]]] = {}
        for sequence_index, position in projections:
            sequence = encoded[sequence_index]
            first_seen: Dict[int, int] = {}
            for next_position in range(position + 1, len(sequence)):
                event = sequence[next_position]
                if event not in first_seen:
                    first_seen[event] = next_position
            for event, next_position in first_seen.items():
                extensions.setdefault(event, []).append((sequence_index, next_position))

        for event in sorted(extensions):
            extended = extensions[event]
            if len(extended) < result.min_support:
                stats.pruned_support += 1
                continue
            self._grow(database, encoded, pattern + (event,), extended, result)


def mine_sequential_patterns(
    database: SequenceDatabase, min_support: float = 2.0, max_length: Optional[int] = None
) -> SequentialMiningResult:
    """Convenience wrapper around :class:`PrefixSpan`."""
    return PrefixSpan(min_support=min_support, max_length=max_length).mine(database)
