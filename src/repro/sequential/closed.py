"""Closed sequential pattern mining (CloSpan / BIDE style result).

A frequent sequential pattern is *closed* when no frequent super-sequence has
the same sequence support (Yan et al. [32], Wang & Han [30]).  Because
sequence support is anti-monotone under the general subsequence relation,
every same-support super-sequence of a frequent pattern is itself frequent
and therefore present in the full result; a grouping-by-support post filter
is thus an exact (if not maximally fast) way to obtain the closed set, which
is all the baseline comparisons in this library need.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.sequence import SequenceDatabase
from .prefixspan import PrefixSpan, SequentialMiningResult, SequentialPattern


def closed_filter(result: SequentialMiningResult) -> SequentialMiningResult:
    """Return a new result keeping only the closed patterns of ``result``."""
    by_support: Dict[int, List[SequentialPattern]] = {}
    for pattern in result.patterns:
        by_support.setdefault(pattern.support, []).append(pattern)

    closed = SequentialMiningResult(stats=result.stats, min_support=result.min_support)
    for pattern in result.patterns:
        peers = by_support.get(pattern.support, [])
        dominated = any(
            peer.events != pattern.events and pattern.is_subpattern_of(peer) for peer in peers
        )
        if dominated:
            result.stats.bump("pruned_sequential_closure")
        else:
            closed.patterns.append(pattern)
    return closed


class ClosedSequentialPatternMiner:
    """Mine the closed set of frequent sequential patterns."""

    def __init__(self, min_support: float = 2.0, max_length: int = None) -> None:
        self._prefixspan = PrefixSpan(min_support=min_support, max_length=max_length)

    def mine(self, database: SequenceDatabase) -> SequentialMiningResult:
        """Mine all frequent patterns, then keep the closed ones."""
        return closed_filter(self._prefixspan.mine(database))


def mine_closed_sequential_patterns(
    database: SequenceDatabase, min_support: float = 2.0, max_length: int = None
) -> SequentialMiningResult:
    """Convenience wrapper around :class:`ClosedSequentialPatternMiner`."""
    return ClosedSequentialPatternMiner(min_support=min_support, max_length=max_length).mine(database)
