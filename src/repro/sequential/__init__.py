"""Sequential pattern mining baselines (related work reimplementations).

* :class:`PrefixSpan` — frequent sequential patterns (Pei et al., ref [24]);
* :class:`ClosedSequentialPatternMiner` — closed sequential patterns
  (CloSpan / BIDE, refs [32], [30]);
* :class:`TwoEventRuleMiner` — the Perracotta-style two-event rule baseline
  the paper generalises (ref [33]).
"""

from .closed import ClosedSequentialPatternMiner, closed_filter, mine_closed_sequential_patterns
from .prefixspan import (
    PrefixSpan,
    SequentialMiningResult,
    SequentialPattern,
    mine_sequential_patterns,
)
from .rules import TwoEventRuleMiner, TwoEventRuleResult, mine_two_event_rules

__all__ = [
    "ClosedSequentialPatternMiner",
    "closed_filter",
    "mine_closed_sequential_patterns",
    "PrefixSpan",
    "SequentialMiningResult",
    "SequentialPattern",
    "mine_sequential_patterns",
    "TwoEventRuleMiner",
    "TwoEventRuleResult",
    "mine_two_event_rules",
]
