"""Two-event temporal rule mining (the Perracotta-style baseline, ref [33]).

The paper generalises prior rule-based specification miners that are "limited
to two-event rules (e.g. <lock> -> <unlock>)" and "first list all possible
two-event rules and then check the significance of each rule".  This module
implements exactly that baseline so the case studies and the ablation
benchmarks can compare it with the multi-event recurrent-rule miner:

* candidate rules are all ordered pairs ``(a, b)`` of events that co-occur in
  at least one sequence with ``a`` before ``b``;
* each candidate's statistics are computed with the same temporal-point
  semantics as recurrent rules, so the numbers are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..core.errors import ConfigurationError
from ..core.positions import PositionIndex
from ..core.sequence import SequenceDatabase
from ..core.stats import MiningStats
from ..rules.rule import RecurrentRule
from ..rules.temporal_points import rule_statistics


@dataclass
class TwoEventRuleResult:
    """Mined two-event rules plus run statistics."""

    rules: List[RecurrentRule] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)
    candidates_examined: int = 0

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)


class TwoEventRuleMiner:
    """Enumerate-and-check mining of two-event rules ``<a> -> <b>``."""

    def __init__(
        self,
        min_s_support: float = 2.0,
        min_confidence: float = 0.5,
        min_i_support: int = 1,
    ) -> None:
        if min_s_support <= 0:
            raise ConfigurationError(f"min_s_support must be positive, got {min_s_support!r}")
        if not (0.0 < min_confidence <= 1.0):
            raise ConfigurationError(
                f"min_confidence must be in (0, 1], got {min_confidence!r}"
            )
        if min_i_support < 1:
            raise ConfigurationError(f"min_i_support must be >= 1, got {min_i_support!r}")
        self.min_s_support = min_s_support
        self.min_confidence = min_confidence
        self.min_i_support = min_i_support

    def _candidate_pairs(self, database: SequenceDatabase) -> Set[Tuple[int, int]]:
        """Ordered event pairs occurring in order within at least one sequence."""
        pairs: Set[Tuple[int, int]] = set()
        for sequence in database.encoded:
            seen_before: Set[int] = set()
            for event in sequence:
                for earlier in seen_before:
                    pairs.add((earlier, event))
                seen_before.add(event)
        return pairs

    def mine(self, database: SequenceDatabase) -> TwoEventRuleResult:
        """Check every candidate pair and keep the significant ones."""
        stats = MiningStats()
        stats.start()
        result = TwoEventRuleResult(stats=stats)

        encoded = database.encoded
        index = PositionIndex(encoded)
        min_s_support = database.absolute_support(self.min_s_support)
        vocabulary = database.vocabulary

        # Premise-level sequence supports, reused across candidates.
        premise_support: Dict[int, int] = {}
        for event in index.distinct_events():
            premise_support[event] = index.sequence_support(event)

        for premise_event, consequent_event in sorted(self._candidate_pairs(database)):
            result.candidates_examined += 1
            stats.visited += 1
            if premise_support.get(premise_event, 0) < min_s_support:
                stats.pruned_support += 1
                continue
            s_support, i_support, confidence = rule_statistics(
                encoded, index, (premise_event,), (consequent_event,)
            )
            if (
                s_support >= min_s_support
                and i_support >= self.min_i_support
                and confidence >= self.min_confidence
            ):
                stats.emitted += 1
                result.rules.append(
                    RecurrentRule(
                        premise=(vocabulary.label_of(premise_event),),
                        consequent=(vocabulary.label_of(consequent_event),),
                        s_support=s_support,
                        i_support=i_support,
                        confidence=confidence,
                    )
                )
            else:
                stats.bump("rejected_candidates")

        stats.stop()
        return result


def mine_two_event_rules(
    database: SequenceDatabase,
    min_s_support: float = 2.0,
    min_confidence: float = 0.5,
    min_i_support: int = 1,
) -> TwoEventRuleResult:
    """Convenience wrapper around :class:`TwoEventRuleMiner`."""
    miner = TwoEventRuleMiner(
        min_s_support=min_s_support,
        min_confidence=min_confidence,
        min_i_support=min_i_support,
    )
    return miner.mine(database)
