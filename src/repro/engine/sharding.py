"""Deterministic sharding of the mining search space.

Both miner families grow their search trees from independent first-level
roots: singleton events for the iterative-pattern miners, single-event
premises for the recurrent-rule miners.  The subtree below each root never
reads state produced by another subtree, so the roots can be mined in any
order — and therefore in parallel — as long as the per-root outputs are
reassembled in the canonical (sorted-root, depth-first) order the serial
miners emit.

This module owns the two deterministic halves of that contract:

* :func:`plan_shards` packs weighted roots into a fixed number of shards
  with a greedy longest-processing-time heuristic whose tie-breaking is
  fully deterministic, so the same inputs always produce the same plan;
* :func:`merge_outcomes` reassembles per-shard outputs by sorted root id,
  which is provably the serial emission order regardless of how the roots
  were packed or which worker finished first.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Sequence as TypingSequence, Tuple

from ..core.events import EventId
from ..core.stats import MiningStats


class Shard(NamedTuple):
    """One unit of parallel work: a set of search-tree roots to mine."""

    index: int
    roots: Tuple[EventId, ...]


class WorkUnit(NamedTuple):
    """One stealable unit of search work for the work-stealing backend.

    ``path`` identifies a search-tree node as the chain of events from the
    root (``path[0] == root``); the worker re-derives the node's state by
    replaying projections along it.  ``kind`` is interpreted by the miner:
    subtree units (``"grow"`` / ``"rules"``) mine the whole subtree below
    the node, offload units (``"verify"`` / ``"consequent"``) run one
    node's deferred heavy phase.  ``cost_hint`` is a cheap relative cost
    estimate (instance or projection rows) used to order the initial queue
    heavy-first; correctness never depends on it.
    """

    kind: str
    root: EventId
    path: Tuple[EventId, ...]
    cost_hint: int = 0


def describe_unit(unit: WorkUnit) -> str:
    """Human-readable identity of a unit for diagnostics (poison quarantine)."""
    path = "/".join(str(event) for event in unit.path)
    return f"{unit.kind} unit at path [{path}] (root {unit.root}, cost hint {unit.cost_hint})"


class UnitOutcome(NamedTuple):
    """Everything a worker reports back for one executed work unit.

    Outcomes arrive in completion order; the miners' ``resolve_units``
    reassembles the records deterministically (each record carries its own
    search-tree key, and the serial depth-first emission order is exactly
    the ascending lexicographic order of those keys), so splitting and
    completion order never leak into the output.
    """

    unit: WorkUnit
    records: Tuple[object, ...]
    stats: MiningStats
    #: Metrics-registry delta recorded while executing the unit (wall-time
    #: histogram + unit counter), shipped across the process boundary and
    #: merged into the coordinator's registry; ``None`` when muted.
    metrics: Optional[Dict[str, object]] = None
    #: Finished trace spans buffered worker-side while executing the unit,
    #: shipped back for the coordinator's collector to absorb; ``None``
    #: when tracing is disarmed (or coordinator-side, where spans land in
    #: the armed collector directly).
    spans: Optional[Tuple[Dict[str, object], ...]] = None


class PlanResult(NamedTuple):
    """The frequent roots of a search (with weights) plus root-level pruning.

    ``roots`` holds ``(root_event, weight)`` pairs where the weight is a
    cheap proxy for subtree cost (instance or projection count);
    ``pruned_support`` counts roots discarded by the support threshold,
    mirroring the serial miners' root-level ``pruned_support`` accounting.
    """

    roots: Tuple[Tuple[EventId, int], ...]
    pruned_support: int


class RootResult(NamedTuple):
    """The records mined from one root's subtree, in depth-first order."""

    root: EventId
    records: Tuple[object, ...]


class ShardOutcome(NamedTuple):
    """Everything a worker reports back for one shard."""

    shard_index: int
    root_results: Tuple[RootResult, ...]
    stats: MiningStats
    #: Metrics-registry delta recorded while executing the shard, merged
    #: into the coordinator's registry like the stats; ``None`` when muted.
    metrics: Optional[Dict[str, object]] = None
    #: Worker-side trace spans for this shard, absorbed by the coordinator
    #: (see :func:`repro.obs.tracing.absorb_outcome_spans`); ``None`` when
    #: tracing is disarmed.
    spans: Optional[Tuple[Dict[str, object], ...]] = None


def plan_shards(
    roots: TypingSequence[Tuple[EventId, int]], num_shards: int
) -> List[Shard]:
    """Pack weighted roots into at most ``num_shards`` deterministic shards.

    Uses the classic longest-processing-time greedy: place heavy roots
    first, each into the currently lightest shard.  Ties (equal weights,
    equal loads) break on root id and shard index respectively, so the
    plan is a pure function of its inputs.  Within a shard, roots are kept
    sorted ascending; the merge step re-sorts globally anyway, so the
    packing never influences output order.
    """
    if not roots:
        return []
    num_shards = max(1, min(num_shards, len(roots)))
    if num_shards == 1:
        return [Shard(0, tuple(sorted(event for event, _ in roots)))]

    # (load, shard_index) heap: lightest shard first, lowest index on ties.
    heap: List[Tuple[int, int]] = [(0, index) for index in range(num_shards)]
    heapq.heapify(heap)
    assignments: List[List[EventId]] = [[] for _ in range(num_shards)]
    for event, weight in sorted(roots, key=lambda item: (-item[1], item[0])):
        load, index = heapq.heappop(heap)
        assignments[index].append(event)
        heapq.heappush(heap, (load + max(1, weight), index))

    return [
        Shard(index, tuple(sorted(events)))
        for index, events in enumerate(assignments)
        if events
    ]


def merge_outcomes(
    outcomes: TypingSequence[ShardOutcome],
) -> Tuple[List[object], MiningStats]:
    """Reassemble shard outputs into the canonical serial order.

    The serial miners iterate roots in ascending id order and emit each
    subtree depth-first; concatenating per-root record lists by sorted root
    id therefore reproduces the serial output exactly.  Search counters are
    summed across shards; wall-clock time is deliberately *not* summed
    (the caller times the whole run — summing per-worker clocks would
    double-count overlapping work).
    """
    stats = MiningStats()
    root_results: List[RootResult] = []
    for outcome in outcomes:
        root_results.extend(outcome.root_results)
        stats.merge_counters(outcome.stats)
    root_results.sort(key=lambda result: result.root)
    records: List[object] = []
    for result in root_results:
        records.extend(result.records)
    return records, stats
