"""Execution backends: where and how the mining search actually runs.

A backend's :meth:`ExecutionBackend.execute` owns the whole plan → run →
merge pipeline for one :class:`~repro.engine.runner.ShardRunner`.  This
module ships the two statically planned backends:

* :class:`SerialBackend` — run every shard in the current process.  This is
  the default and the reference semantics; with ``max_shards=1`` (the
  default) it is exactly the historical single-pass depth-first search.
* :class:`ProcessPoolBackend` — fan shards out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  The runner is shipped
  to each worker once through the pool initializer; workers rebuild their
  ``PositionIndex`` cache once and reuse it across all their shards.

:class:`~repro.engine.stealing.WorkStealingBackend` (its own module) adds
the adaptive third option: dynamic subtree splitting over a shared work
queue for skewed databases.

Because the merge step is deterministic — sorted root id on the shard
path (:func:`~repro.engine.sharding.merge_outcomes`), sorted record keys
on the stealing path — every backend produces bit-identical mining
results; parallelism only changes wall-clock time.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence as TypingSequence, Tuple

from ..core.errors import ConfigurationError, ExecutionFault
from ..core.stats import MiningStats
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..testing import faults
from .runner import ShardRunner
from .sharding import Shard, ShardOutcome, merge_outcomes, plan_shards

#: Shards created per worker so stragglers can be rebalanced by the pool.
OVERSUBSCRIPTION = 4

#: How many times a broken pool (a worker process died mid-shard) is
#: rebuilt and the unfinished shards resubmitted before the run fails
#: with a diagnostic naming the shards that never survived a round.
DEFAULT_POOL_RESTARTS = 3

# Per-worker-process runner installed by the pool initializer.  Module-level
# state is required here: only module-level functions pickle cleanly as pool
# initializers/tasks, and the whole point is to ship the runner once per
# worker instead of once per shard.
_WORKER_RUNNER: Optional[ShardRunner] = None


def _initialize_worker(runner: ShardRunner) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner
    runner.setup()


def _execute_shard(shard: Shard) -> ShardOutcome:
    assert _WORKER_RUNNER is not None, "worker used before initialization"
    if faults.ACTIVE is not None:
        faults.trigger("engine.shard", key=str(shard.index))
    return _WORKER_RUNNER.run_shard(shard)


class ExecutionBackend:
    """Strategy interface for executing a miner's root-parallel search.

    ``execute`` owns the whole plan → run → merge pipeline.  The default
    implementation is the static path: pack the planned roots into LPT
    shards, run them through :meth:`map_shards`, and reassemble by sorted
    root id.  Backends with their own scheduling discipline (the
    work-stealing backend) override ``execute`` outright and never touch
    the shard machinery.
    """

    name = "abstract"

    #: Optional :class:`~repro.durability.checkpoint.MiningCheckpoint`.
    #: When set, every completed shard (or work unit, on the stealing
    #: backend) is journaled as it lands, and ``execute`` reuses the
    #: outcomes already journaled by a previous (crashed) run instead of
    #: re-mining them.  Soundness: outcomes are pure functions of the
    #: database and configuration the checkpoint identity pins, and the
    #: merge is deterministic, so a resumed run is byte-identical to an
    #: uninterrupted one.
    checkpoint = None

    def execute(self, runner: ShardRunner) -> Tuple[List[Any], MiningStats]:
        """Run the whole pipeline and publish the run's observability data.

        The search itself lives in :meth:`_execute` (overridden by
        backends with their own scheduling discipline); this wrapper owns
        the single per-run touch point with :mod:`repro.obs` — the span
        around the run and the one-shot mirror of the final merged
        ``MiningStats`` onto registry counters.  Mirroring here, after all
        per-shard/per-unit stats merged, is what keeps the registry free
        of double counting on any backend.
        """
        with tracing.span("engine.execute", backend=self.name):
            records, stats = self._execute(runner)
        obs_metrics.record_mining_stats(stats, self.name)
        return records, stats

    def _execute(self, runner: ShardRunner) -> Tuple[List[Any], MiningStats]:
        """Plan, execute and merge the search; return (records, counters)."""
        plan = runner.plan()
        if not plan.roots:
            stats = MiningStats()
            stats.pruned_support += plan.pruned_support
            return [], stats
        shards = plan_shards(plan.roots, self.shard_count(len(plan.roots)))
        cached: List[ShardOutcome] = []
        pending = list(shards)
        if self.checkpoint is not None:
            done = self.checkpoint.completed_shards()
            cached = [done[tuple(s.roots)] for s in shards if tuple(s.roots) in done]
            pending = [s for s in shards if tuple(s.roots) not in done]
        outcomes = self.map_shards(runner, pending) if pending else []
        records, stats = merge_outcomes(cached + outcomes)
        obs_metrics.merge_outcome_metrics(cached + outcomes)
        tracing.absorb_outcome_spans(outcomes)
        stats.pruned_support += plan.pruned_support
        if cached:
            stats.bump("shards_resumed", len(cached))
            obs_metrics.DURABILITY_RESUMED_TOTAL.inc(len(cached), kind="shard")
        return records, stats

    def _record_shard(self, shard: Shard, outcome: ShardOutcome) -> None:
        """Journal one completed shard if a checkpoint is armed."""
        if self.checkpoint is not None:
            self.checkpoint.record_shard(shard, outcome)

    def shard_count(self, num_roots: int) -> int:
        """How many shards to split ``num_roots`` roots into."""
        raise NotImplementedError

    def map_shards(
        self, runner: ShardRunner, shards: TypingSequence[Shard]
    ) -> List[ShardOutcome]:
        """Execute every shard and return outcomes in shard order."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable form used by the CLI and benchmarks."""
        return self.name


class SerialBackend(ExecutionBackend):
    """Run shards in-process, in order.

    ``max_shards`` exists for testing the shard/merge path without
    processes: the default of 1 keeps the classic single-pass search, while
    larger values force the work through the same planning and merging
    machinery the parallel backend uses.
    """

    name = "serial"

    def __init__(self, max_shards: int = 1) -> None:
        if max_shards < 1:
            raise ConfigurationError(f"max_shards must be >= 1, got {max_shards!r}")
        self.max_shards = max_shards

    def shard_count(self, num_roots: int) -> int:
        return max(1, min(self.max_shards, num_roots))

    def map_shards(
        self, runner: ShardRunner, shards: TypingSequence[Shard]
    ) -> List[ShardOutcome]:
        runner.setup()
        outcomes = []
        for shard in shards:
            with tracing.span("engine.shard", index=shard.index, roots=len(shard.roots)):
                outcome = runner.run_shard(shard)
            self._record_shard(shard, outcome)
            outcomes.append(outcome)
        return outcomes


class ProcessPoolBackend(ExecutionBackend):
    """Fan shards out to a pool of worker processes.

    Worker-process death (OOM kill, segfault) breaks a
    :class:`ProcessPoolExecutor` wholesale; this backend recovers by
    keeping every completed shard outcome, rebuilding the pool and
    resubmitting only the unfinished shards.  Shards are replayable by
    construction (pure functions of the shipped runner), so the merged
    result is unchanged by recovery.  A shard that never survives
    ``pool_restarts`` consecutive rebuilds fails the run with an
    :class:`~repro.core.errors.ExecutionFault` naming it.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        oversubscription: int = OVERSUBSCRIPTION,
        pool_restarts: int = DEFAULT_POOL_RESTARTS,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if oversubscription < 1:
            raise ConfigurationError(
                f"oversubscription must be >= 1, got {oversubscription!r}"
            )
        if pool_restarts < 0:
            raise ConfigurationError(
                f"pool_restarts must be >= 0, got {pool_restarts!r}"
            )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.oversubscription = oversubscription
        self.pool_restarts = pool_restarts
        self._recovery_counters: Dict[str, int] = {}

    def shard_count(self, num_roots: int) -> int:
        return max(1, min(num_roots, self.workers * self.oversubscription))

    def _execute(self, runner: ShardRunner) -> Tuple[List[Any], MiningStats]:
        self._recovery_counters = {}
        records, stats = super()._execute(runner)
        for name, amount in self._recovery_counters.items():
            stats.bump(name, amount)
        return records, stats

    def map_shards(
        self, runner: ShardRunner, shards: TypingSequence[Shard]
    ) -> List[ShardOutcome]:
        if self.workers <= 1 or len(shards) <= 1:
            # Nothing to parallelise; avoid pool start-up entirely.  The
            # fallback inherits the checkpoint so completions still journal.
            fallback = SerialBackend(max_shards=len(shards) or 1)
            fallback.checkpoint = self.checkpoint
            return fallback.map_shards(runner, shards)
        outcomes: Dict[int, ShardOutcome] = {}
        remaining: Dict[int, Shard] = {shard.index: shard for shard in shards}
        broken_rounds = 0
        while remaining:
            if not self._run_round(runner, remaining, outcomes):
                continue  # everything submitted this round completed
            broken_rounds += 1
            self._bump("pool_restarts")
            if broken_rounds > self.pool_restarts:
                survivors = ", ".join(
                    f"shard {index} (roots {list(remaining[index].roots)})"
                    for index in sorted(remaining)
                )
                raise ExecutionFault(
                    "process pool broke "
                    f"{broken_rounds} times without completing: {survivors}; "
                    "quarantining as poison shards"
                )
            self._bump("shards_retried", len(remaining))
        return [outcomes[shard.index] for shard in shards]

    def _run_round(
        self,
        runner: ShardRunner,
        remaining: Dict[int, Shard],
        outcomes: Dict[int, ShardOutcome],
    ) -> bool:
        """Run one pool over the remaining shards; True if the pool broke."""
        broken = False
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(remaining)),
            initializer=_initialize_worker,
            initargs=(runner,),
        ) as pool:
            futures = {
                index: pool.submit(_execute_shard, shard)
                for index, shard in sorted(remaining.items())
            }
            for index, future in futures.items():
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    # A worker died; this future (and possibly others) was
                    # lost with it.  Harvest whatever did finish and let
                    # the caller rebuild the pool for the rest.
                    broken = True
                    continue
                outcomes[index] = outcome
                self._record_shard(remaining[index], outcome)
                del remaining[index]
        return broken

    def _bump(self, name: str, amount: int = 1) -> None:
        self._recovery_counters[name] = self._recovery_counters.get(name, 0) + amount

    def describe(self) -> str:
        if self.workers <= 1:
            return f"{self.name}[workers={self.workers}] (serial fallback)"
        return f"{self.name}[workers={self.workers}]"


def resolve_backend(
    name: Optional[str] = None,
    workers: Optional[int] = None,
    split_depth: Optional[int] = None,
) -> ExecutionBackend:
    """Build a backend from CLI-style ``--backend`` / ``--workers`` values.

    ``name=None`` (or ``"auto"``) picks the process pool whenever more than
    one worker is requested and the serial backend otherwise, so plain
    ``--workers 4`` is enough to go parallel.  Asking for the serial
    backend *and* multiple workers is contradictory and rejected rather
    than silently ignoring the worker count; likewise ``split_depth`` only
    means something to the work-stealing backend.
    """
    # Imported here: stealing builds on this module's ExecutionBackend.
    from .stealing import DEFAULT_SPLIT_DEPTH, WorkStealingBackend

    if split_depth is not None and name != "stealing":
        raise ConfigurationError(
            f"--split-depth only applies to the 'stealing' backend, not {name!r}"
        )
    if name == "stealing":
        return WorkStealingBackend(
            workers=workers,
            split_depth=split_depth if split_depth is not None else DEFAULT_SPLIT_DEPTH,
        )
    if name is None or name == "auto":
        if workers is not None and workers > 1:
            return ProcessPoolBackend(workers=workers)
        return SerialBackend()
    if name == "serial":
        if workers is not None and workers > 1:
            raise ConfigurationError(
                f"the serial backend runs one process; drop --workers {workers} "
                "or use the 'process' backend"
            )
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(workers=workers)
    raise ConfigurationError(
        f"unknown execution backend {name!r} "
        "(expected 'serial', 'process', 'stealing' or 'auto')"
    )


def run_sharded(
    backend: ExecutionBackend,
    runner: ShardRunner,
) -> Tuple[List[Any], MiningStats]:
    """Plan, execute and merge a root-parallel search on ``backend``.

    Returns the mined records in canonical serial order together with the
    summed search counters (including root-level support pruning from the
    planning step).  Kept as a thin wrapper for backward compatibility;
    the pipeline lives in :meth:`ExecutionBackend.execute`.
    """
    return backend.execute(runner)


#: Backend names accepted by :func:`resolve_backend` (CLI choices).
BACKEND_CHOICES = ("auto", "serial", "process", "stealing")
