"""Adaptive work-stealing execution: dynamic subtree splitting under skew.

The static LPT shard plan (:func:`~repro.engine.sharding.plan_shards`)
guesses subtree costs at plan time from root-level weights.  On skewed
databases — a handful of hot first-level prefixes owning most of the search
tree — that guess is structurally wrong: whole worker pools idle behind the
one shard that drew the hot root.  This module replaces the guess with
demand-driven subdivision:

* workers pull :class:`~repro.engine.sharding.WorkUnit` values from a
  shared queue seeded with one unit per frequent root (heaviest first);
* while mining a unit, a worker periodically consults its
  :class:`StealSplitter`; when the queue runs low it *splits* the
  shallowest unexplored frontier nodes of its depth-first search — suffix
  extensions of its current prefix — into new units other workers can
  steal, and may *offload* a node's heavy verification phase (closure
  checking, consequent growth) as a separate unit;
* a stolen unit names its node by ``(root, split-path)`` only; the thief
  re-derives the node's projections by replaying along the path, so units
  stay a few dozen bytes on the wire regardless of subtree size.

Determinism: every record a unit produces carries its own search-tree key
(the pattern, or the premise/consequent pair), and the serial depth-first
emission order is exactly the ascending lexicographic order of those keys,
so the miners' ``resolve_units`` reassembles bit-identical serial output
from any interleaving of splits and completions.

Spawn accounting is routed through the coordinator: workers announce
splits on the result queue and the coordinator re-enqueues the new units,
so a unit can never complete before the coordinator has registered it —
the outstanding-unit counter is exact without any cross-queue ordering
assumptions.  The shared ``queued`` counter (incremented at submit time by
the splitting worker itself) is only a scheduling hint for the hunger
heuristic and never affects correctness.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import traceback
from collections import deque
from typing import Any, Callable, List, NamedTuple, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.stats import MiningStats
from .backend import ExecutionBackend
from .sharding import UnitOutcome, WorkUnit

#: Maximum node depth (path length) at which frontier nodes may still be
#: split off as stealable units.  Thieves replay projections along the
#: split path, so deeper splits cost more to steal; shallow splits move the
#: most work per replayed step.
DEFAULT_SPLIT_DEPTH = 8

#: Search nodes visited between two hunger checks inside ``mine_unit``.
DEFAULT_CHECK_INTERVAL = 64

#: Minimum cost hint (instance / projection rows) below which a node's
#: heavy phase is never offloaded as its own unit — replaying the path
#: would cost more than the phase itself.
DEFAULT_OFFLOAD_MIN_COST = 256


class NullSplitter:
    """The no-splitting policy: serial and shard backends use this."""

    split_depth = 0

    def should_split(self) -> bool:
        return False

    def should_offload(self, cost_hint: int) -> bool:
        return False

    def submit(self, units: Sequence[WorkUnit]) -> None:
        raise RuntimeError("NullSplitter cannot accept split-off work units")


NULL_SPLITTER = NullSplitter()


class StealSplitter:
    """Worker-side splitting policy handed to ``miner.mine_unit``.

    ``should_split`` answers "is the pool hungry?" (the shared queue is
    below its low watermark); ``should_offload`` additionally weighs a
    node's cost hint against the replay cost of a stolen unit.  ``submit``
    hands split-off units to the executor.  ``eager`` forces both answers
    to yes with no cost floor *and* drops the check interval to every
    visit — the deterministic in-process stress mode the parity tests use
    to exercise every split and offload path on every example, however
    small.
    """

    __slots__ = ("split_depth", "check_interval", "_submit", "_hungry", "_offload_min_cost", "_eager")

    def __init__(
        self,
        submit: Callable[[List[WorkUnit]], None],
        hungry: Callable[[], bool],
        split_depth: int,
        check_interval: int,
        offload_min_cost: int,
        eager: bool,
    ) -> None:
        self.split_depth = split_depth
        self.check_interval = 1 if eager else check_interval
        self._submit = submit
        self._hungry = hungry
        self._offload_min_cost = 0 if eager else offload_min_cost
        self._eager = eager

    def should_split(self) -> bool:
        return self._eager or self._hungry()

    def should_offload(self, cost_hint: int) -> bool:
        if self._eager:
            return True
        return cost_hint >= self._offload_min_cost and self._hungry()

    def submit(self, units: Sequence[WorkUnit]) -> None:
        if units:
            self._submit(list(units))


class FrontierFrame:
    """One depth-first frame of a splittable subtree search.

    ``key`` is the node's search-tree path (pattern or premise prefix);
    ``state`` is an opaque miner payload carried alongside (e.g. the
    pattern miners' per-node ``AlphabetIndex``); ``extensions`` maps each
    candidate child event to its projection payload, and ``explore`` /
    ``cursor`` track which children are still pending.  Everything past
    ``cursor`` is the frame's unexplored frontier — exactly what
    :func:`drive_split_subtree` may carve off as stolen units.
    """

    __slots__ = ("key", "state", "extensions", "explore", "cursor")

    def __init__(self, key: Tuple, state: Any, extensions: dict, explore: List) -> None:
        self.key = key
        self.state = state
        self.extensions = extensions
        self.explore = explore
        self.cursor = 0


def drive_split_subtree(
    first_frame: Optional[FrontierFrame],
    visit_child: Callable[[FrontierFrame, Any, Any], Optional[FrontierFrame]],
    min_rows: int,
    splitter: Any,
    stats: MiningStats,
    unit_kind: str,
) -> None:
    """Run a depth-first subtree with periodic frontier splitting.

    ``visit_child`` performs one node visit (counting, emission, child
    expansion) and returns the child's frame, or ``None`` for leaves.
    Children whose payload has fewer than ``min_rows`` rows are support-
    pruned in place, mirroring the serial loops.  Every
    ``splitter.check_interval`` child visits the splitter is consulted;
    when it says the pool is hungry, the pending frontier of the
    *shallowest* eligible frame is submitted as fresh ``unit_kind`` units
    (the biggest stealable subtrees, cheapest for a thief to replay).
    """
    frames: List[FrontierFrame] = []
    if first_frame is not None:
        frames.append(first_frame)
    check_interval = getattr(splitter, "check_interval", 0)
    countdown = check_interval
    while frames:
        top = frames[-1]
        if top.cursor >= len(top.explore):
            frames.pop()
            continue
        event = top.explore[top.cursor]
        top.cursor += 1
        child_payload = top.extensions[event]
        if len(child_payload) < min_rows:
            stats.pruned_support += 1
            continue
        if check_interval:
            countdown -= 1
            if countdown <= 0:
                countdown = check_interval
                if splitter.should_split():
                    _split_frontier(frames, min_rows, splitter, stats, unit_kind)
        child_frame = visit_child(top, event, child_payload)
        if child_frame is not None:
            frames.append(child_frame)


def _split_frontier(
    frames: List[FrontierFrame],
    min_rows: int,
    splitter: Any,
    stats: MiningStats,
    unit_kind: str,
) -> None:
    """Carve the shallowest pending frontier into stealable units.

    Infrequent pending children stay behind (their support pruning is a
    counter bump, cheaper than any replay); frequent ones leave as units
    keyed by their full split path, and their projection payloads are
    dropped immediately — the thief re-derives them.
    """
    for frame in frames:
        if len(frame.key) + 1 > splitter.split_depth:
            # Frames only get deeper down the stack; nothing below splits.
            break
        pending = frame.explore[frame.cursor:]
        stealable = [
            event for event in pending if len(frame.extensions[event]) >= min_rows
        ]
        if not stealable:
            continue
        units = [
            WorkUnit(
                unit_kind,
                frame.key[0],
                frame.key + (event,),
                len(frame.extensions[event]),
            )
            for event in stealable
        ]
        frame.explore = frame.explore[: frame.cursor] + [
            event for event in pending if len(frame.extensions[event]) < min_rows
        ]
        for event in stealable:
            del frame.extensions[event]
        splitter.submit(units)
        stats.bump("units_split", len(units))
        return


class _Spawn(NamedTuple):
    """A worker's announcement that it split off new units."""

    units: Tuple[WorkUnit, ...]


class _WorkerFailure(NamedTuple):
    """A worker's report that it died; carries the formatted traceback."""

    message: str


def _worker_main(
    runner: Any,
    tasks: Any,
    results: Any,
    queued: Any,
    busy: Any,
    worker_index: int,
    low_watermark: int,
    split_depth: int,
    check_interval: int,
    offload_min_cost: int,
    eager: bool,
) -> None:
    """Worker process loop: pull units, mine, announce splits, report.

    ``busy[worker_index]`` is 1 exactly while this worker holds a unit it
    has not yet reported — the coordinator's lost-unit detector: a worker
    that dies abnormally (OOM kill, SIGKILL) with its busy flag set took
    a unit down with it, so the run must abort instead of waiting forever.
    A hard kill landing in the few instructions between ``tasks.get()``
    and setting the flag (undetected loss) or between reporting and
    clearing it (spurious abort) is not defended against — the flag
    shrinks the vulnerable window from the whole unit execution to those
    two instruction gaps, and the flag updates are ordered so the wide
    failure mode is the recoverable one (abort, not hang).
    """
    try:
        runner.setup()
    except BaseException:
        results.put(_WorkerFailure(traceback.format_exc()))
        return

    def hungry() -> bool:
        return queued.value < low_watermark

    def submit(units: List[WorkUnit]) -> None:
        # Bump the hint counter *before* announcing, so this worker (and
        # every other) immediately stops seeing the queue as dry instead of
        # splitting again on the next check.
        with queued.get_lock():
            queued.value += len(units)
        results.put(_Spawn(tuple(units)))

    while True:
        unit = tasks.get()
        if unit is None:
            return
        busy[worker_index] = 1
        with queued.get_lock():
            queued.value -= 1
        splitter = StealSplitter(
            submit, hungry, split_depth, check_interval, offload_min_cost, eager
        )
        try:
            outcome = runner.run_unit(unit, splitter)
        except BaseException:
            results.put(_WorkerFailure(traceback.format_exc()))
            return
        results.put(outcome)
        busy[worker_index] = 0


def _run_units_with_processes(
    runner: Any, units: List[WorkUnit], backend: "WorkStealingBackend"
) -> List[UnitOutcome]:
    """Execute units on a pool of stealing workers; collect all outcomes."""
    ctx = multiprocessing.get_context()
    tasks = ctx.Queue()
    results = ctx.Queue()
    queued = ctx.Value("i", len(units))
    busy = ctx.Array("i", backend.workers)
    for unit in units:
        tasks.put(unit)
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(
                runner,
                tasks,
                results,
                queued,
                busy,
                worker_index,
                backend.workers,
                backend.split_depth,
                backend.check_interval,
                backend.offload_min_cost,
                backend.eager_split,
            ),
            daemon=True,
        )
        for worker_index in range(backend.workers)
    ]
    for worker in workers:
        worker.start()
    outstanding = len(units)
    outcomes: List[UnitOutcome] = []
    try:
        while outstanding:
            try:
                message = results.get(timeout=1.0)
            except queue_module.Empty:
                if not any(worker.is_alive() for worker in workers):
                    raise RuntimeError(
                        "work-stealing workers exited with units outstanding"
                    ) from None
                # A worker that died abnormally while holding a unit (busy
                # flag still set, no failure report) lost that unit for
                # good — abort instead of waiting on it forever.  Healthy
                # deaths clear the flag between units.
                lost = [
                    index
                    for index, worker in enumerate(workers)
                    if not worker.is_alive() and busy[index]
                ]
                if lost:
                    raise RuntimeError(
                        f"work-stealing worker(s) {lost} died while holding a "
                        "unit (killed?); aborting the run"
                    ) from None
                continue
            if isinstance(message, _WorkerFailure):
                raise RuntimeError(
                    f"work-stealing worker failed:\n{message.message}"
                )
            if isinstance(message, _Spawn):
                outstanding += len(message.units)
                for unit in message.units:
                    tasks.put(unit)
                continue
            outstanding -= 1
            outcomes.append(message)
        for _ in workers:
            tasks.put(None)
        for worker in workers:
            worker.join(timeout=10.0)
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
    return outcomes


def _run_units_in_process(
    runner: Any, units: List[WorkUnit], backend: "WorkStealingBackend"
) -> List[UnitOutcome]:
    """Run units on a local deque in the current process.

    With ``eager_split`` the splitter says yes to every split and offload,
    so the full split / replay / offload / resolve machinery is exercised
    deterministically without any processes — the mode the property tests
    drive.  Without it nothing ever splits and the run degenerates to the
    serial reference.
    """
    runner.setup()
    pending: deque = deque(units)
    eager = backend.eager_split
    outcomes: List[UnitOutcome] = []
    while pending:
        unit = pending.popleft()
        splitter = StealSplitter(
            pending.extend,
            lambda: False,
            backend.split_depth,
            backend.check_interval,
            backend.offload_min_cost,
            eager,
        )
        outcomes.append(runner.run_unit(unit, splitter))
    return outcomes


class WorkStealingBackend(ExecutionBackend):
    """Adaptive work-stealing backend with dynamic subtree splitting.

    Prefer this over the static-plan ``process`` backend when the database
    is skewed — a few hot events owning most of the search tree — or when
    subtree costs are otherwise unpredictable at plan time.  On uniformly
    distributed work the LPT plan's lower coordination overhead makes the
    ``process`` backend marginally faster.

    ``split_depth`` bounds how deep in the search tree frontier nodes may
    still be split off (thieves replay projections along the split path,
    so deeper splits are more expensive to steal); ``check_interval``
    controls how often busy workers look at the queue; ``eager_split``
    forces every split decision to yes (testing / stress mode).
    """

    name = "stealing"

    def __init__(
        self,
        workers: Optional[int] = None,
        split_depth: int = DEFAULT_SPLIT_DEPTH,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        offload_min_cost: int = DEFAULT_OFFLOAD_MIN_COST,
        eager_split: bool = False,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if split_depth < 1:
            raise ConfigurationError(f"split_depth must be >= 1, got {split_depth!r}")
        if check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {check_interval!r}"
            )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.split_depth = split_depth
        self.check_interval = check_interval
        self.offload_min_cost = offload_min_cost
        self.eager_split = eager_split

    def describe(self) -> str:
        suffix = ", eager" if self.eager_split else ""
        return f"{self.name}[workers={self.workers}, split_depth={self.split_depth}{suffix}]"

    def execute(self, runner: Any) -> Tuple[List[Any], MiningStats]:
        units, pruned_support = runner.plan_units()
        stats = MiningStats()
        stats.pruned_support += pruned_support
        if not units:
            return [], stats
        if self.workers <= 1:
            outcomes = _run_units_in_process(runner, units, self)
        else:
            outcomes = _run_units_with_processes(runner, units, self)
        for outcome in outcomes:
            stats.merge_counters(outcome.stats)
        records = runner.resolve_units(outcomes)
        return records, stats
