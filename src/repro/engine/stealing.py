"""Adaptive work-stealing execution: dynamic subtree splitting under skew.

The static LPT shard plan (:func:`~repro.engine.sharding.plan_shards`)
guesses subtree costs at plan time from root-level weights.  On skewed
databases — a handful of hot first-level prefixes owning most of the search
tree — that guess is structurally wrong: whole worker pools idle behind the
one shard that drew the hot root.  This module replaces the guess with
demand-driven subdivision:

* workers pull :class:`~repro.engine.sharding.WorkUnit` values from a
  shared queue seeded with one unit per frequent root (heaviest first);
* while mining a unit, a worker periodically consults its
  :class:`StealSplitter`; when the queue runs low it *splits* the
  shallowest unexplored frontier nodes of its depth-first search — suffix
  extensions of its current prefix — into new units other workers can
  steal, and may *offload* a node's heavy verification phase (closure
  checking, consequent growth) as a separate unit;
* a stolen unit names its node by ``(root, split-path)`` only; the thief
  re-derives the node's projections by replaying along the path, so units
  stay a few dozen bytes on the wire regardless of subtree size.

Determinism: every record a unit produces carries its own search-tree key
(the pattern, or the premise/consequent pair), and the serial depth-first
emission order is exactly the ascending lexicographic order of those keys,
so the miners' ``resolve_units`` reassembles bit-identical serial output
from any interleaving of splits and completions.

Spawn accounting is routed through the coordinator: workers announce
splits on the result queue and the coordinator re-enqueues the new units,
so a unit can never complete before the coordinator has registered it —
the outstanding-unit counter is exact without any cross-queue ordering
assumptions.  The shared ``queued`` counter (incremented at submit time by
the splitting worker itself) is only a scheduling hint for the hunger
heuristic and never affects correctness.

Crash recovery: the coordinator dispatches exactly one unit at a time to
each worker over a per-worker queue, so when a worker process dies it
knows precisely which unit went down with it.  Because units are
replayable by construction, the lost unit is simply re-executed — the
coordinator *orphans* the dead attempt's descendants (units it had split
off, transitively; their outcomes are discarded on arrival) and replays
the unit fresh, so the surviving attempt tree tiles the search space
exactly once and the merged output stays byte-identical to the serial
reference.  A bounded retry budget turns a unit that keeps killing its
workers into an :class:`~repro.core.errors.ExecutionFault` naming the
unit (poison quarantine); an optional per-unit deadline terminates
stragglers and replays them with forced eager splitting so the subtree
spreads across the pool.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..core.errors import ConfigurationError, ExecutionFault
from ..core.stats import MiningStats
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..testing import faults
from .backend import ExecutionBackend
from .sharding import UnitOutcome, WorkUnit, describe_unit

#: Maximum node depth (path length) at which frontier nodes may still be
#: split off as stealable units.  Thieves replay projections along the
#: split path, so deeper splits cost more to steal; shallow splits move the
#: most work per replayed step.
DEFAULT_SPLIT_DEPTH = 8

#: Search nodes visited between two hunger checks inside ``mine_unit``.
DEFAULT_CHECK_INTERVAL = 64

#: Minimum cost hint (instance / projection rows) below which a node's
#: heavy phase is never offloaded as its own unit — replaying the path
#: would cost more than the phase itself.
DEFAULT_OFFLOAD_MIN_COST = 256


class NullSplitter:
    """The no-splitting policy: serial and shard backends use this."""

    split_depth = 0

    def should_split(self) -> bool:
        return False

    def should_offload(self, cost_hint: int) -> bool:
        return False

    def submit(self, units: Sequence[WorkUnit]) -> None:
        raise RuntimeError("NullSplitter cannot accept split-off work units")


NULL_SPLITTER = NullSplitter()


class StealSplitter:
    """Worker-side splitting policy handed to ``miner.mine_unit``.

    ``should_split`` answers "is the pool hungry?" (the shared queue is
    below its low watermark); ``should_offload`` additionally weighs a
    node's cost hint against the replay cost of a stolen unit.  ``submit``
    hands split-off units to the executor.  ``eager`` forces both answers
    to yes with no cost floor *and* drops the check interval to every
    visit — the deterministic in-process stress mode the parity tests use
    to exercise every split and offload path on every example, however
    small.
    """

    __slots__ = ("split_depth", "check_interval", "_submit", "_hungry", "_offload_min_cost", "_eager")

    def __init__(
        self,
        submit: Callable[[List[WorkUnit]], None],
        hungry: Callable[[], bool],
        split_depth: int,
        check_interval: int,
        offload_min_cost: int,
        eager: bool,
    ) -> None:
        self.split_depth = split_depth
        self.check_interval = 1 if eager else check_interval
        self._submit = submit
        self._hungry = hungry
        self._offload_min_cost = 0 if eager else offload_min_cost
        self._eager = eager

    def should_split(self) -> bool:
        return self._eager or self._hungry()

    def should_offload(self, cost_hint: int) -> bool:
        if self._eager:
            return True
        return cost_hint >= self._offload_min_cost and self._hungry()

    def submit(self, units: Sequence[WorkUnit]) -> None:
        if units:
            self._submit(list(units))


class FrontierFrame:
    """One depth-first frame of a splittable subtree search.

    ``key`` is the node's search-tree path (pattern or premise prefix);
    ``state`` is an opaque miner payload carried alongside (e.g. the
    pattern miners' per-node ``AlphabetIndex``); ``extensions`` maps each
    candidate child event to its projection payload, and ``explore`` /
    ``cursor`` track which children are still pending.  Everything past
    ``cursor`` is the frame's unexplored frontier — exactly what
    :func:`drive_split_subtree` may carve off as stolen units.
    """

    __slots__ = ("key", "state", "extensions", "explore", "cursor")

    def __init__(self, key: Tuple, state: Any, extensions: dict, explore: List) -> None:
        self.key = key
        self.state = state
        self.extensions = extensions
        self.explore = explore
        self.cursor = 0


def drive_split_subtree(
    first_frame: Optional[FrontierFrame],
    visit_child: Callable[[FrontierFrame, Any, Any], Optional[FrontierFrame]],
    min_rows: int,
    splitter: Any,
    stats: MiningStats,
    unit_kind: str,
) -> None:
    """Run a depth-first subtree with periodic frontier splitting.

    ``visit_child`` performs one node visit (counting, emission, child
    expansion) and returns the child's frame, or ``None`` for leaves.
    Children whose payload has fewer than ``min_rows`` rows are support-
    pruned in place, mirroring the serial loops.  Every
    ``splitter.check_interval`` child visits the splitter is consulted;
    when it says the pool is hungry, the pending frontier of the
    *shallowest* eligible frame is submitted as fresh ``unit_kind`` units
    (the biggest stealable subtrees, cheapest for a thief to replay).
    """
    frames: List[FrontierFrame] = []
    if first_frame is not None:
        frames.append(first_frame)
    check_interval = getattr(splitter, "check_interval", 0)
    countdown = check_interval
    while frames:
        top = frames[-1]
        if top.cursor >= len(top.explore):
            frames.pop()
            continue
        event = top.explore[top.cursor]
        top.cursor += 1
        child_payload = top.extensions[event]
        if len(child_payload) < min_rows:
            stats.pruned_support += 1
            continue
        if check_interval:
            countdown -= 1
            if countdown <= 0:
                countdown = check_interval
                if splitter.should_split():
                    _split_frontier(frames, min_rows, splitter, stats, unit_kind)
        child_frame = visit_child(top, event, child_payload)
        if child_frame is not None:
            frames.append(child_frame)


def _split_frontier(
    frames: List[FrontierFrame],
    min_rows: int,
    splitter: Any,
    stats: MiningStats,
    unit_kind: str,
) -> None:
    """Carve the shallowest pending frontier into stealable units.

    Infrequent pending children stay behind (their support pruning is a
    counter bump, cheaper than any replay); frequent ones leave as units
    keyed by their full split path, and their projection payloads are
    dropped immediately — the thief re-derives them.
    """
    for frame in frames:
        if len(frame.key) + 1 > splitter.split_depth:
            # Frames only get deeper down the stack; nothing below splits.
            break
        pending = frame.explore[frame.cursor:]
        stealable = [
            event for event in pending if len(frame.extensions[event]) >= min_rows
        ]
        if not stealable:
            continue
        units = [
            WorkUnit(
                unit_kind,
                frame.key[0],
                frame.key + (event,),
                len(frame.extensions[event]),
            )
            for event in stealable
        ]
        frame.explore = frame.explore[: frame.cursor] + [
            event for event in pending if len(frame.extensions[event]) < min_rows
        ]
        for event in stealable:
            del frame.extensions[event]
        splitter.submit(units)
        stats.bump("units_split", len(units))
        return


class _Spawn(NamedTuple):
    """A worker's announcement that it split off new units."""

    worker_index: int
    units: Tuple[WorkUnit, ...]


class _Report(NamedTuple):
    """A worker's completion report for its current unit."""

    worker_index: int
    outcome: UnitOutcome


class _WorkerFailure(NamedTuple):
    """A worker's report that it hit an exception; carries the traceback."""

    worker_index: int
    message: str


#: How long the coordinator sleeps in ``results.get`` before polling
#: worker liveness and unit deadlines.  Bounds crash-detection latency.
COORDINATOR_POLL_INTERVAL = 0.1

#: Additional attempts a unit gets after killing a worker before it is
#: quarantined as poison (so a unit may take down ``1 + retries`` workers
#: in a row before the mine fails with a diagnostic naming it).
DEFAULT_UNIT_RETRIES = 2


def _worker_main(
    runner: Any,
    tasks: Any,
    results: Any,
    queued: Any,
    worker_index: int,
    low_watermark: int,
    split_depth: int,
    check_interval: int,
    offload_min_cost: int,
    eager: bool,
) -> None:
    """Worker process loop: receive one unit at a time, mine, report.

    Dispatch is coordinator-mediated: this worker only ever holds the one
    unit the coordinator sent down its private queue, so the coordinator
    always knows exactly which unit a dead worker took with it — there is
    no self-serve window in which a loss would be ambiguous.  Assignments
    carry a ``force_eager`` flag so a replayed straggler can be told to
    split aggressively.
    """
    try:
        runner.setup()
    except BaseException:
        results.put(_WorkerFailure(worker_index, traceback.format_exc()))
        return

    def hungry() -> bool:
        return queued.value < low_watermark

    def submit(units: List[WorkUnit]) -> None:
        # Bump the hint counter *before* announcing, so this worker (and
        # every other) immediately stops seeing the queue as dry instead of
        # splitting again on the next check.
        with queued.get_lock():
            queued.value += len(units)
        results.put(_Spawn(worker_index, tuple(units)))

    while True:
        assignment = tasks.get()
        if assignment is None:
            return
        unit, force_eager = assignment
        splitter = StealSplitter(
            submit,
            hungry,
            split_depth,
            check_interval,
            offload_min_cost,
            eager or force_eager,
        )
        try:
            if faults.ACTIVE is not None:
                # Inside the try: an injected ``raise`` must take the same
                # path as a real exception in ``run_unit`` (worker-failure
                # report), while ``kill`` never unwinds anyway.
                faults.trigger("engine.unit", key=f"{unit.kind}:{unit.root}")
            outcome = runner.run_unit(unit, splitter)
        except BaseException:
            results.put(_WorkerFailure(worker_index, traceback.format_exc()))
            return
        results.put(_Report(worker_index, outcome))


class _Task:
    """One attempt at executing a work unit, identified by ``task_id``.

    A replay is a *new* task (fresh id) for the same unit with ``retries``
    incremented; ``children`` lineage lives in the coordinator so a dead
    attempt's split-off descendants can be orphaned transitively.
    """

    __slots__ = ("task_id", "unit", "retries", "eager")

    def __init__(self, task_id: int, unit: WorkUnit, retries: int, eager: bool) -> None:
        self.task_id = task_id
        self.unit = unit
        self.retries = retries
        self.eager = eager


class _Coordinator:
    """Drives a pool of stealing workers with crash recovery.

    Invariant: the set of *surviving* task outcomes tiles the search space
    exactly once.  Every split registers the child under its parent
    attempt; when an attempt dies with its worker, the attempt and its
    descendants are orphaned (pending ones dequeued, in-flight or already
    completed ones discarded on sight) and the unit is replayed as a fresh
    attempt — which re-splits as it sees fit.  Replays are bounded by the
    retry budget; exhausting it raises :class:`ExecutionFault` naming the
    poison unit.
    """

    def __init__(self, runner: Any, units: List[WorkUnit], backend: "WorkStealingBackend",
                 stats: MiningStats) -> None:
        self.runner = runner
        self.backend = backend
        self.stats = stats
        self.ctx = multiprocessing.get_context()
        self.results = self.ctx.Queue()
        self.queued = self.ctx.Value("i", len(units))
        self.task_queues = [self.ctx.Queue() for _ in range(backend.workers)]
        self.workers: Dict[int, Any] = {}
        self._next_task_id = 0
        self.pending: deque = deque(self._new_task(unit, 0, False) for unit in units)
        self.in_flight: Dict[int, _Task] = {}
        self.started_at: Dict[int, float] = {}
        self.children: Dict[int, List[int]] = {}
        self.orphaned: Set[int] = set()
        self.outcomes: Dict[int, UnitOutcome] = {}
        self.live: Set[int] = set()
        self.idle: Set[int] = set()
        #: Armed checkpoint journal, if the backend carries one.  Entries
        #: are appended in coordinator event order; a worker's _Spawn
        #: messages precede its _Report on the same queue, so a journaled
        #: outcome implies its split announcements are journaled too.
        self.checkpoint = backend.checkpoint

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_worker(self, worker_index: int) -> None:
        worker = self.ctx.Process(
            target=_worker_main,
            args=(
                self.runner,
                self.task_queues[worker_index],
                self.results,
                self.queued,
                worker_index,
                self.backend.workers,
                self.backend.split_depth,
                self.backend.check_interval,
                self.backend.offload_min_cost,
                self.backend.eager_split,
            ),
            daemon=True,
        )
        worker.start()
        self.workers[worker_index] = worker
        self.live.add(worker_index)
        self.idle.add(worker_index)

    def _new_task(self, unit: WorkUnit, retries: int, eager: bool) -> _Task:
        task = _Task(self._next_task_id, unit, retries, eager)
        self._next_task_id += 1
        return task

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _assign(self) -> None:
        while self.pending and self.idle:
            worker_index = min(self.idle)
            self.idle.discard(worker_index)
            task = self.pending.popleft()
            with self.queued.get_lock():
                self.queued.value -= 1
            self.in_flight[worker_index] = task
            self.started_at[worker_index] = time.monotonic()
            self.task_queues[worker_index].put((task.unit, task.eager))

    def _handle(self, message: Any) -> None:
        if isinstance(message, _WorkerFailure):
            # A deterministic exception inside a unit would fail every
            # replay identically — abort with the worker's traceback
            # instead of burning the retry budget on it.
            raise ExecutionFault(
                f"work-stealing worker {message.worker_index} failed:\n{message.message}"
            )
        if isinstance(message, _Spawn):
            parent = self.in_flight.get(message.worker_index)
            if parent is None or parent.task_id in self.orphaned:
                # Late announcement from an attempt that was already
                # declared lost (or terminated): its subtree will be (or
                # was) re-covered by the replay, so the split-off units
                # must not run.  Roll back the worker-side hint bump.
                with self.queued.get_lock():
                    self.queued.value -= len(message.units)
                return
            siblings = self.children.setdefault(parent.task_id, [])
            for unit in message.units:
                task = self._new_task(unit, 0, parent.eager)
                siblings.append(task.task_id)
                self.pending.append(task)
            if self.checkpoint is not None:
                self.checkpoint.record_spawn(parent.unit, message.units)
            return
        if isinstance(message, _Report):
            task = self.in_flight.pop(message.worker_index, None)
            self.started_at.pop(message.worker_index, None)
            if message.worker_index in self.live:
                self.idle.add(message.worker_index)
            if task is None or task.task_id in self.orphaned:
                return  # outcome of an orphaned attempt: discard
            self.outcomes[task.task_id] = message.outcome
            if self.checkpoint is not None:
                self.checkpoint.record_unit(task.unit, message.outcome)
            return
        raise ExecutionFault(f"unexpected coordinator message {message!r}")

    def _drain(self) -> None:
        while True:
            try:
                message = self.results.get_nowait()
            except queue_module.Empty:
                return
            self._handle(message)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _orphan_subtree(self, task_id: int) -> None:
        victims = {task_id}
        stack = [task_id]
        while stack:
            for child in self.children.pop(stack.pop(), ()):
                if child not in victims:
                    victims.add(child)
                    stack.append(child)
        kept: deque = deque()
        removed = 0
        for task in self.pending:
            if task.task_id in victims:
                removed += 1
            else:
                kept.append(task)
        self.pending = kept
        if removed:
            with self.queued.get_lock():
                self.queued.value -= removed
        for victim in victims:
            self.outcomes.pop(victim, None)
        self.orphaned |= victims

    def _replay(self, task: _Task, reason: str, force_eager: bool = False) -> None:
        retries = task.retries + 1
        if retries > self.backend.unit_retries:
            raise ExecutionFault(
                f"poison work unit quarantined: {describe_unit(task.unit)} "
                f"took down {retries} worker(s) in a row "
                f"(last failure: {reason}; retry budget {self.backend.unit_retries})"
            )
        self._orphan_subtree(task.task_id)
        if self.checkpoint is not None:
            # The journal must invalidate the lost attempt's subtree the
            # same way the live orphan set does: a resume that replayed
            # both the parent's re-run and its old children would double-
            # cover the search space.
            self.checkpoint.record_orphan(task.unit)
        replay = self._new_task(task.unit, retries, task.eager or force_eager)
        self.pending.appendleft(replay)
        with self.queued.get_lock():
            self.queued.value += 1
        self.stats.bump("units_retried")

    def _check_dead_workers(self) -> None:
        # Drain first: a worker that finished its unit and died cleanly
        # (or whose death raced a flushed report) must not trigger a
        # replay — its outcome is already in the pipe.
        self._drain()
        for worker_index in sorted(self.live):
            if self.workers[worker_index].is_alive():
                continue
            self.live.discard(worker_index)
            self.idle.discard(worker_index)
            task = self.in_flight.pop(worker_index, None)
            self.started_at.pop(worker_index, None)
            if task is None:
                continue  # died between units; nothing was lost
            self.stats.bump("workers_lost")
            if task.task_id in self.orphaned:
                continue  # an orphaned attempt died; the replay already covers it
            self._replay(task, reason=f"worker {worker_index} died while executing it")
        if not self.live and (self.pending or self.in_flight):
            raise ExecutionFault(
                "all work-stealing workers died with units outstanding; "
                "aborting the run"
            )

    def _check_deadlines(self) -> None:
        deadline = self.backend.unit_deadline
        if deadline is None:
            return
        self._drain()
        now = time.monotonic()
        for worker_index, started in list(self.started_at.items()):
            if now - started <= deadline:
                continue
            task = self.in_flight.pop(worker_index, None)
            self.started_at.pop(worker_index, None)
            if task is None:
                continue
            # Terminate the straggler and bring a replacement up at the
            # same slot so the pool keeps its width; the unit replays with
            # forced eager splitting so its subtree spreads across the
            # pool instead of stalling one worker again.
            worker = self.workers[worker_index]
            worker.terminate()
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=5.0)
            self.live.discard(worker_index)
            self.idle.discard(worker_index)
            self.stats.bump("units_deadline_split")
            if task.task_id not in self.orphaned:
                self._replay(
                    task,
                    reason=f"exceeded the {deadline:g}s unit deadline",
                    force_eager=True,
                )
            self._spawn_worker(worker_index)

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #
    def run(self) -> List[UnitOutcome]:
        for worker_index in range(self.backend.workers):
            self._spawn_worker(worker_index)
        try:
            while self.pending or self.in_flight:
                self._assign()
                try:
                    message = self.results.get(timeout=COORDINATOR_POLL_INTERVAL)
                except queue_module.Empty:
                    self._check_dead_workers()
                    self._check_deadlines()
                    continue
                self._handle(message)
            for worker_index in sorted(self.live):
                self.task_queues[worker_index].put(None)
            for worker_index in sorted(self.live):
                self.workers[worker_index].join(timeout=10.0)
        finally:
            for worker in self.workers.values():
                if worker.is_alive():
                    worker.terminate()
        # task_id order is arbitrary but fixed; resolve_units orders
        # records by their own search-tree keys anyway.
        return [self.outcomes[task_id] for task_id in sorted(self.outcomes)]


def _run_units_with_processes(
    runner: Any, units: List[WorkUnit], backend: "WorkStealingBackend", stats: MiningStats
) -> List[UnitOutcome]:
    """Execute units on a pool of stealing workers; collect all outcomes."""
    return _Coordinator(runner, units, backend, stats).run()


def _run_units_in_process(
    runner: Any, units: List[WorkUnit], backend: "WorkStealingBackend"
) -> List[UnitOutcome]:
    """Run units on a local deque in the current process.

    With ``eager_split`` the splitter says yes to every split and offload,
    so the full split / replay / offload / resolve machinery is exercised
    deterministically without any processes — the mode the property tests
    drive.  Without it nothing ever splits and the run degenerates to the
    serial reference.
    """
    runner.setup()
    pending: deque = deque(units)
    eager = backend.eager_split
    checkpoint = backend.checkpoint
    outcomes: List[UnitOutcome] = []
    while pending:
        unit = pending.popleft()

        def submit(spawned, parent=unit):
            spawned = list(spawned)
            pending.extend(spawned)
            if checkpoint is not None:
                checkpoint.record_spawn(parent, spawned)

        splitter = StealSplitter(
            submit,
            lambda: False,
            backend.split_depth,
            backend.check_interval,
            backend.offload_min_cost,
            eager,
        )
        outcome = runner.run_unit(unit, splitter)
        if checkpoint is not None:
            checkpoint.record_unit(unit, outcome)
        outcomes.append(outcome)
    return outcomes


class WorkStealingBackend(ExecutionBackend):
    """Adaptive work-stealing backend with dynamic subtree splitting.

    Prefer this over the static-plan ``process`` backend when the database
    is skewed — a few hot events owning most of the search tree — or when
    subtree costs are otherwise unpredictable at plan time.  On uniformly
    distributed work the LPT plan's lower coordination overhead makes the
    ``process`` backend marginally faster.

    ``split_depth`` bounds how deep in the search tree frontier nodes may
    still be split off (thieves replay projections along the split path,
    so deeper splits are more expensive to steal); ``check_interval``
    controls how often busy workers look at the queue; ``eager_split``
    forces every split decision to yes (testing / stress mode).

    ``unit_retries`` is the crash-recovery budget: how many times a unit
    whose worker died is replayed before the run fails with a poison-unit
    diagnostic.  ``unit_deadline`` (seconds, default off) terminates any
    worker that holds one unit longer than the deadline and replays the
    unit with forced eager splitting — converting stragglers into
    split-and-retry.
    """

    name = "stealing"

    def __init__(
        self,
        workers: Optional[int] = None,
        split_depth: int = DEFAULT_SPLIT_DEPTH,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        offload_min_cost: int = DEFAULT_OFFLOAD_MIN_COST,
        eager_split: bool = False,
        unit_retries: int = DEFAULT_UNIT_RETRIES,
        unit_deadline: Optional[float] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if split_depth < 1:
            raise ConfigurationError(f"split_depth must be >= 1, got {split_depth!r}")
        if check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {check_interval!r}"
            )
        if unit_retries < 0:
            raise ConfigurationError(f"unit_retries must be >= 0, got {unit_retries!r}")
        if unit_deadline is not None and unit_deadline <= 0:
            raise ConfigurationError(
                f"unit_deadline must be positive, got {unit_deadline!r}"
            )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.split_depth = split_depth
        self.check_interval = check_interval
        self.offload_min_cost = offload_min_cost
        self.eager_split = eager_split
        self.unit_retries = unit_retries
        self.unit_deadline = unit_deadline

    def describe(self) -> str:
        suffix = ", eager" if self.eager_split else ""
        return f"{self.name}[workers={self.workers}, split_depth={self.split_depth}{suffix}]"

    def _execute(self, runner: Any) -> Tuple[List[Any], MiningStats]:
        units, pruned_support = runner.plan_units()
        stats = MiningStats()
        stats.pruned_support += pruned_support
        if not units:
            return [], stats
        cached: List[UnitOutcome] = []
        if self.checkpoint is not None:
            # Reuse whatever a previous (crashed) run journaled under the
            # same identity; only the remainder is dispatched.  Unit
            # outcomes are plan-independent, so this is sound even when
            # the resumed plan differs from the crashed one.
            cached, units = self.checkpoint.plan_resume(units)
            if cached:
                stats.bump("units_resumed", len(cached))
        if not units:
            outcomes = []
        elif self.workers <= 1:
            outcomes = _run_units_in_process(runner, units, self)
        else:
            outcomes = _run_units_with_processes(runner, units, self, stats)
        # Only freshly executed outcomes donate spans: journal-resumed ones
        # were recorded by the run that journaled them.
        tracing.absorb_outcome_spans(outcomes)
        outcomes = cached + outcomes
        for outcome in outcomes:
            stats.merge_counters(outcome.stats)
        obs_metrics.merge_outcome_metrics(outcomes)
        records = runner.resolve_units(outcomes)
        return records, stats
