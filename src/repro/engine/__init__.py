"""Parallel sharded mining engine.

The engine splits a miner's depth-first search over its independent
first-level roots (singleton patterns, single-event premises), runs the
shards on a pluggable :class:`ExecutionBackend`, and merges the per-shard
outputs deterministically so that parallel results are bit-identical to
the serial ones.  See :mod:`repro.engine.sharding` for the ordering
argument and :mod:`repro.engine.runner` for the miner protocol.

Typical use::

    from repro import SequenceDatabase, mine_closed_patterns
    from repro.engine import ProcessPoolBackend

    result = mine_closed_patterns(db, min_support=3,
                                  backend=ProcessPoolBackend(workers=4))
"""

from .backend import (
    BACKEND_CHOICES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
    run_sharded,
)
from .runner import LazyIndexContext, ShardRunner, plan_weighted_roots
from .sharding import (
    PlanResult,
    RootResult,
    Shard,
    ShardOutcome,
    UnitOutcome,
    WorkUnit,
    merge_outcomes,
    plan_shards,
)
from .stealing import (
    DEFAULT_SPLIT_DEPTH,
    NULL_SPLITTER,
    NullSplitter,
    StealSplitter,
    WorkStealingBackend,
)

__all__ = [
    "BACKEND_CHOICES",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "WorkStealingBackend",
    "resolve_backend",
    "run_sharded",
    "LazyIndexContext",
    "ShardRunner",
    "plan_weighted_roots",
    "PlanResult",
    "RootResult",
    "Shard",
    "ShardOutcome",
    "UnitOutcome",
    "WorkUnit",
    "merge_outcomes",
    "plan_shards",
    "DEFAULT_SPLIT_DEPTH",
    "NULL_SPLITTER",
    "NullSplitter",
    "StealSplitter",
]
