"""The shard runner: the picklable bridge between miners and backends.

A :class:`ShardRunner` wraps a miner and an encoded database and knows how
to (a) plan the root-level work, (b) build the expensive per-run search
context — the :class:`~repro.core.positions.PositionIndex` and the root
projections — exactly once per process, and (c) mine one shard of roots.

Miners plug in through a duck-typed protocol (no imports from the miner
packages so the engine stays dependency-free):

``build_context(encoded, extras)``
    Build the immutable per-run search context (index, root projections,
    resolved thresholds).  Called once in the coordinating process for
    planning, and once per worker process for mining.
``plan_roots(context)``
    Return a :class:`~repro.engine.sharding.PlanResult` of frequent roots.
``mine_root(context, root, stats)``
    Mine one root's subtree and return its records in depth-first order
    (the static shard path).
``initial_units(context, plan)``
    The root-level :class:`~repro.engine.sharding.WorkUnit` seeds of the
    work-stealing path.
``mine_unit(context, unit, stats, splitter)``
    Execute one work unit, consulting ``splitter`` for dynamic subtree
    splitting and heavy-phase offload.
``resolve_units(outcomes)``
    Deterministically reassemble unit outcomes into the canonical serial
    record order (coordinating process only).

The runner is pickled into each worker exactly once (via the pool
initializer); the context is *never* pickled — ``__getstate__`` drops it so
every worker rebuilds its ``PositionIndex`` cache locally once and reuses
it for all the shards it executes, instead of rebuilding per subtree or
shipping bulky indexes over the wire.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence as TypingSequence, Tuple

from ..core.events import EncodedDatabase, EventId
from ..core.positions import PositionIndex
from ..core.stats import MiningStats
from ..obs import metrics as obs_metrics
from ..obs import tracing
from .sharding import PlanResult, RootResult, Shard, ShardOutcome, UnitOutcome, WorkUnit


def plan_weighted_roots(
    root_weights: Mapping[EventId, int], threshold: int
) -> PlanResult:
    """Shared planning step: keep roots meeting ``threshold``, count the rest.

    Both miner families plan identically — iterate the roots in sorted
    order, prune those whose weight (instance or sequence count) is below
    the support threshold, and weight the survivors for shard packing.
    """
    roots: List[Tuple[EventId, int]] = []
    pruned = 0
    for event in sorted(root_weights):
        weight = root_weights[event]
        if weight < threshold:
            pruned += 1
            continue
        roots.append((event, weight))
    return PlanResult(tuple(roots), pruned)


def _record_payload_bytes(record: Any) -> int:
    """Buffer bytes a record's instance payload contributes to the outcome.

    Duck-typed so the engine stays miner-agnostic: any record exposing an
    ``instances`` attribute with an ``nbytes()`` method (the columnar
    blocks) is counted; everything else ships as plain small tuples and
    counts as zero.
    """
    payload = getattr(record, "instances", None)
    nbytes = getattr(payload, "nbytes", None)
    return nbytes() if callable(nbytes) else 0


class LazyIndexContext:
    """Base class for per-run search contexts: encoded db + lazy index.

    The :class:`PositionIndex` is materialised on first use: the
    coordinating process only plans, so only the processes that actually
    mine pay for index construction — and each pays exactly once, reusing
    it across all the shards it executes.
    """

    __slots__ = ("encoded", "_index")

    def __init__(self, encoded: EncodedDatabase) -> None:
        self.encoded = encoded
        self._index: Optional[PositionIndex] = None

    @property
    def index(self) -> PositionIndex:
        if self._index is None:
            self._index = PositionIndex(self.encoded)
        return self._index

    def absorb_appended(
        self, new_sequences: "TypingSequence[TypingSequence[int]]"
    ) -> None:
        """Absorb sequences appended (in place) to ``self.encoded``.

        The live index is extended with just the new sequences instead of
        being rebuilt; subclasses additionally invalidate whatever derived
        caches they keep.  Callers must have appended the same sequences to
        the ``encoded`` list this context was built over — the incremental
        miner shares that list with its growing database.
        """
        if self._index is not None:
            self._index.extend(new_sequences)


class ShardRunner:
    """Execute shards of a miner's root-parallel search."""

    def __init__(
        self,
        miner: Any,
        encoded: EncodedDatabase,
        extras: Optional[Dict[str, Any]] = None,
        context: Any = None,
    ) -> None:
        self.miner = miner
        self.encoded = encoded
        self.extras: Dict[str, Any] = dict(extras or {})
        # A pre-built context seeds the coordinating process only (it is
        # dropped at the pickle boundary like any other context): the
        # incremental miner uses this to keep one live PositionIndex across
        # store appends instead of rebuilding it every refresh.
        self._context: Any = context

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def plan(self) -> PlanResult:
        """Plan the root-level work (coordinating process only)."""
        return self.miner.plan_roots(self._ensure_context())

    def setup(self) -> None:
        """Build (or reuse) the per-process search context.

        In a worker process (the runner crossed a pickle boundary with the
        coordinator's tracing armed), this also arms the worker-side
        shipping collector and adopts the coordinator's trace context, so
        the worker's unit/shard spans join the coordinator's trace when
        they travel back inside the outcomes.
        """
        # Two ways a worker learns the coordinator had tracing armed:
        # *spawned* workers receive the runner through a pickle, where
        # __getstate__ captured the flag and the trace context; *forked*
        # workers inherit the coordinator's collector itself through the
        # address space — detected by its foreign pid, because reusing it
        # would append to the parent's JSONL handle from two processes.
        # Either way the worker ends up on a fresh shipping buffer with
        # the coordinator's context adopted.
        ship = self.__dict__.pop("_ship_spans", False)
        trace_ctx = self.__dict__.pop("_trace_ctx", None)
        inherited = tracing.ACTIVE
        if (
            inherited is not None
            and not inherited.shipping
            and inherited.pid != os.getpid()
        ):
            ship = True
            if trace_ctx is None:
                # The span stack was copied at fork time: the coordinator
                # forks inside its "engine.execute" span, so this is it.
                trace_ctx = tracing.current_ids()
        if ship and not tracing.shipping():
            tracing.install_shipping()
        if trace_ctx is not None and tracing.shipping():
            tracing.adopt(*trace_ctx)
        self._ensure_context()

    def run_shard(self, shard: Shard) -> ShardOutcome:
        """Mine every root of ``shard`` and package the outcome.

        ``shipped_bytes`` accounts the instance-block payload packaged into
        the outcome — the volume that crosses the worker-to-coordinator
        pickle boundary on the process backend (counted identically on the
        serial backend so the number is comparable across backends).
        """
        context = self._ensure_context()
        started = time.perf_counter()
        stats = MiningStats()
        root_results: List[RootResult] = []
        # Worker-side only: the serial backend already wraps run_shard in
        # an "engine.shard" span coordinator-side.
        shard_span = (
            tracing.span("engine.shard", index=shard.index, roots=len(shard.roots))
            if tracing.shipping()
            else tracing._NOOP
        )
        with shard_span:
            for root in shard.roots:
                records = tuple(self.miner.mine_root(context, root, stats))
                for record in records:
                    stats.shipped_bytes += _record_payload_bytes(record)
                root_results.append(RootResult(root, records))
        delta = (
            obs_metrics.shard_observation(time.perf_counter() - started)
            if obs_metrics.ENABLED
            else None
        )
        return ShardOutcome(
            shard.index, tuple(root_results), stats, delta, tracing.drain_shipped()
        )

    # ------------------------------------------------------------------ #
    # Work-stealing unit protocol
    # ------------------------------------------------------------------ #
    def plan_units(self) -> Tuple[List[WorkUnit], int]:
        """Plan the root-level seed units (coordinating process only).

        Units come back heaviest first so big subtrees enter the queue
        early and get the whole run to subdivide; the order is a pure
        function of the plan, never of execution timing.
        """
        plan = self.plan()
        units = list(self.miner.initial_units(self._ensure_context(), plan))
        units.sort(key=lambda unit: (-unit.cost_hint, unit.root, unit.path))
        return units, plan.pruned_support

    def run_unit(self, unit: WorkUnit, splitter: Any) -> UnitOutcome:
        """Execute one work unit, packaging records and counters.

        ``shipped_bytes`` accounting mirrors :meth:`run_shard`: the
        instance payload packaged into the outcome is counted identically
        on every backend so the number stays comparable.

        Crash-recovery contract: a unit execution must be a pure function
        of ``(self, unit)`` — all state is re-derived by replaying along
        ``unit.path``, and nothing outside the returned outcome may be
        mutated.  The coordinator relies on this to re-execute a dead
        worker's unit on a survivor (discarding the dead attempt's
        split-off descendants) without changing the merged output.
        """
        context = self._ensure_context()
        started = time.perf_counter()
        stats = MiningStats()
        with tracing.span("engine.unit", kind=unit.kind, root=unit.root):
            records = tuple(self.miner.mine_unit(context, unit, stats, splitter))
        for record in records:
            stats.shipped_bytes += _record_payload_bytes(record)
        delta = (
            obs_metrics.unit_observation(unit.kind, time.perf_counter() - started)
            if obs_metrics.ENABLED
            else None
        )
        return UnitOutcome(unit, records, stats, delta, tracing.drain_shipped())

    def resolve_units(self, outcomes: List[UnitOutcome]) -> List[Any]:
        """Reassemble unit outcomes into canonical serial record order."""
        return self.miner.resolve_units(outcomes)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ensure_context(self) -> Any:
        if self._context is None:
            self._context = self.miner.build_context(self.encoded, self.extras)
        return self._context

    def __getstate__(self) -> Dict[str, Any]:
        # The context holds the PositionIndex and projection caches; it is
        # cheap to rebuild locally and expensive to pickle, so workers
        # always reconstruct it (once) in setup().
        state = self.__dict__.copy()
        state["_context"] = None
        # Pickling happens inside the coordinator's "engine.execute" span:
        # capture whether tracing is armed (and under which trace/span) so
        # worker processes can buffer child spans for shipping.
        if tracing.ACTIVE is not None and not tracing.ACTIVE.shipping:
            state["_ship_spans"] = True
            state["_trace_ctx"] = tracing.current_ids()
        return state
