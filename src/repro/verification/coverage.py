"""Specification coverage statistics.

When mined specifications are used for comprehension it is useful to know how
much of the observed behaviour they describe: which events are covered by at
least one pattern or rule, and how much of each trace falls inside pattern
instances.  These are the numbers the `coverage` CLI sub-command and the
examples report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ..core.events import EventLabel
from ..core.instances import find_instances_in_sequence
from ..core.sequence import SequenceDatabase
from ..patterns.result import MinedPattern
from ..rules.rule import RecurrentRule


@dataclass
class CoverageReport:
    """Event-level and position-level coverage of a database by specifications."""

    total_events: int = 0
    covered_positions: int = 0
    observed_event_labels: Set[EventLabel] = field(default_factory=set)
    covered_event_labels: Set[EventLabel] = field(default_factory=set)
    per_trace_coverage: List[float] = field(default_factory=list)

    @property
    def position_coverage(self) -> float:
        """Fraction of all trace positions lying inside some pattern instance."""
        if self.total_events == 0:
            return 0.0
        return self.covered_positions / self.total_events

    @property
    def vocabulary_coverage(self) -> float:
        """Fraction of distinct observed events mentioned by some specification."""
        if not self.observed_event_labels:
            return 0.0
        return len(self.covered_event_labels & self.observed_event_labels) / len(
            self.observed_event_labels
        )

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a dictionary."""
        return {
            "total_events": float(self.total_events),
            "position_coverage": self.position_coverage,
            "vocabulary_coverage": self.vocabulary_coverage,
        }


def specification_events(
    patterns: Iterable[MinedPattern], rules: Iterable[RecurrentRule]
) -> Set[EventLabel]:
    """All events mentioned by any of the given patterns or rules."""
    events: Set[EventLabel] = set()
    for pattern in patterns:
        events.update(pattern.events)
    for rule in rules:
        events.update(rule.premise)
        events.update(rule.consequent)
    return events


def coverage_of(
    database: SequenceDatabase,
    patterns: Iterable[MinedPattern] = (),
    rules: Iterable[RecurrentRule] = (),
) -> CoverageReport:
    """Compute coverage of ``database`` by the given specifications."""
    patterns = list(patterns)
    rules = list(rules)
    report = CoverageReport()
    report.covered_event_labels = specification_events(patterns, rules)

    for index in range(len(database)):
        trace: Tuple[EventLabel, ...] = tuple(database[index])
        report.total_events += len(trace)
        report.observed_event_labels.update(trace)
        covered = [False] * len(trace)
        for pattern in patterns:
            for start, end in find_instances_in_sequence(trace, pattern.events):
                for position in range(start, end + 1):
                    covered[position] = True
        trace_covered = sum(1 for flag in covered if flag)
        report.covered_positions += trace_covered
        report.per_trace_coverage.append(trace_covered / len(trace) if trace else 0.0)
    return report
