"""Violation records produced by runtime monitoring."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.events import EventLabel
from ..rules.rule import RecurrentRule


@dataclass(frozen=True)
class RuleViolation:
    """One unsatisfied temporal point of a monitored rule.

    The rule's premise completed at ``position`` of trace ``trace_index``
    (named ``trace_name`` when available) but the consequent never occurred
    in the remainder of the trace.
    """

    rule: RecurrentRule
    trace_index: int
    position: int
    trace_name: Optional[str] = None

    def describe(self) -> str:
        """A one-line human-readable description of the violation."""
        where = self.trace_name if self.trace_name else f"trace {self.trace_index}"
        return (
            f"{where}@{self.position}: premise {self.rule.premise} completed "
            f"but consequent {self.rule.consequent} never followed"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (what the push server puts on the wire)."""
        return {
            "premise": list(self.rule.premise),
            "consequent": list(self.rule.consequent),
            "trace_index": self.trace_index,
            "position": self.position,
            "trace_name": self.trace_name,
        }


@dataclass
class MonitoringReport:
    """Aggregated outcome of monitoring a set of rules over a trace database."""

    total_points: int = 0
    satisfied_points: int = 0
    violations: List[RuleViolation] = field(default_factory=list)
    per_rule_points: Dict[Tuple[Tuple[EventLabel, ...], Tuple[EventLabel, ...]], int] = field(
        default_factory=dict
    )

    @property
    def violation_count(self) -> int:
        """Number of violating temporal points."""
        return len(self.violations)

    @property
    def satisfaction_rate(self) -> float:
        """Fraction of monitored temporal points that were satisfied (1.0 if none)."""
        if self.total_points == 0:
            return 1.0
        return self.satisfied_points / self.total_points

    def merge(self, other: "MonitoringReport") -> "MonitoringReport":
        """Fold another report into this one (returns ``self`` for chaining).

        Point counts add up, violations append in order, and the per-rule
        point tallies combine key-wise — the aggregation both the offline
        database check and the streaming monitor's cumulative report use.
        """
        self.total_points += other.total_points
        self.satisfied_points += other.satisfied_points
        self.violations.extend(other.violations)
        for key, count in other.per_rule_points.items():
            self.per_rule_points[key] = self.per_rule_points.get(key, 0) + count
        return self

    @classmethod
    def merge_all(cls, reports: Iterable["MonitoringReport"]) -> "MonitoringReport":
        """Fold an ordered iterable of reports into one fresh report.

        Merging is order-sensitive (the violation list concatenates), so
        callers that need a deterministic aggregate — the monitor pool
        merging per-session reports, the daemon merging per-batch reports —
        pass the reports in a canonical order (admission/trace order) and
        get an aggregate byte-identical to a single sequential monitor run.
        The inputs are left untouched.
        """
        combined = cls()
        for report in reports:
            combined.merge(report)
        return combined

    def violations_of(self, rule: RecurrentRule) -> List[RuleViolation]:
        """All recorded violations of one rule."""
        return [violation for violation in self.violations if violation.rule == rule]

    def violated_rules(self) -> List[RecurrentRule]:
        """The distinct rules with at least one violation."""
        seen = []
        for violation in self.violations:
            if violation.rule not in seen:
                seen.append(violation.rule)
        return seen

    def summary(self) -> str:
        """A short multi-line summary suitable for CLI output."""
        lines = [
            f"monitored temporal points : {self.total_points}",
            f"satisfied                 : {self.satisfied_points}",
            f"violations                : {self.violation_count}",
            f"satisfaction rate         : {self.satisfaction_rate:.3f}",
        ]
        return "\n".join(lines)
