"""Runtime monitoring and coverage analysis of mined specifications."""

from .coverage import CoverageReport, coverage_of, specification_events
from .monitor import RuleMonitor, monitor_database
from .violations import MonitoringReport, RuleViolation

__all__ = [
    "CoverageReport",
    "coverage_of",
    "specification_events",
    "RuleMonitor",
    "monitor_database",
    "MonitoringReport",
    "RuleViolation",
]
