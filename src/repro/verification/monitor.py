"""Runtime monitoring of mined specifications over traces.

Section 1 motivates specification mining with two uses: program
comprehension and *program verification / runtime monitoring*.  This module
provides the second use: given mined recurrent rules (or rules written by
hand), it checks traces for temporal points where a rule's premise completed
but its consequent never followed, and reports them as violations.

Checking agrees by construction with both the rule semantics used by the
miners (temporal points + "followed by") and the LTL translation of
Table 2 — the property tests assert all three views coincide.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence as TypingSequence

from ..core.events import EventLabel
from ..core.sequence import SequenceDatabase
from ..rules.rule import RecurrentRule
from ..rules.temporal_points import is_followed_by, temporal_points_in_sequence
from .violations import MonitoringReport, RuleViolation


class RuleMonitor:
    """Checks recurrent rules against traces and collects violations.

    An empty rule set is a valid (if vacuous) specification: every trace
    satisfies it and every report is all zeroes.  A repository that mined
    zero rules must monitor cleanly, not crash.
    """

    def __init__(self, rules: Iterable[RecurrentRule]) -> None:
        self.rules: List[RecurrentRule] = list(rules)

    # ------------------------------------------------------------------ #
    # Single-trace checks
    # ------------------------------------------------------------------ #
    def check_trace(
        self,
        trace: TypingSequence[EventLabel],
        trace_index: int = 0,
        trace_name: str = None,
    ) -> MonitoringReport:
        """Check every rule against one trace."""
        report = MonitoringReport()
        events = tuple(trace)
        for rule in self.rules:
            points = temporal_points_in_sequence(events, rule.premise)
            key = rule.signature()
            report.per_rule_points[key] = report.per_rule_points.get(key, 0) + len(points)
            for position in points:
                report.total_points += 1
                if is_followed_by(events, position, rule.consequent):
                    report.satisfied_points += 1
                else:
                    report.violations.append(
                        RuleViolation(
                            rule=rule,
                            trace_index=trace_index,
                            position=position,
                            trace_name=trace_name,
                        )
                    )
        return report

    def satisfies(self, trace: TypingSequence[EventLabel]) -> bool:
        """Whether the trace satisfies every monitored rule (no violations)."""
        return self.check_trace(trace).violation_count == 0

    # ------------------------------------------------------------------ #
    # Database checks
    # ------------------------------------------------------------------ #
    def check_database(self, database: SequenceDatabase) -> MonitoringReport:
        """Check every rule against every trace of a database."""
        combined = MonitoringReport()
        for index in range(len(database)):
            combined.merge(
                self.check_trace(database[index], trace_index=index, trace_name=database.name(index))
            )
        return combined


def monitor_database(
    database: SequenceDatabase, rules: Iterable[RecurrentRule]
) -> MonitoringReport:
    """Convenience wrapper: monitor ``rules`` over every trace of ``database``."""
    return RuleMonitor(rules).check_database(database)
