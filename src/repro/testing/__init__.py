"""Test-support utilities shipped with the library.

This package holds code that exists to *prove* properties of the system
rather than to implement them.  Today that is one module:

* :mod:`repro.testing.faults` — the deterministic fault-injection
  harness behind ``tests/faults/``: named fault points compiled into the
  engine and the serving plane fire configured actions (kill the worker
  process, raise, fake ``ENOSPC``, stall, drop the connection) at exact,
  bounded points so crash recovery can be exercised reproducibly.

It ships inside ``src/`` (not ``tests/``) because the fault points live
in production modules and must resolve the trigger API there; the
happy-path cost is a single module-attribute check per fault site.
"""

from . import faults

__all__ = ["faults"]
