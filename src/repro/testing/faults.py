"""Deterministic fault injection for crash-recovery tests.

The fault-tolerance layer (worker replay in the engine, shard supervision
in the serving plane, backoff in the watch daemon) is only trustworthy if
its failure paths run under test, and real crashes are not reproducible.
This module gives production code named *fault points*::

    from ..testing import faults
    ...
    if faults.ACTIVE is not None:
        faults.trigger("engine.unit", key=f"{unit.kind}:{unit.root}")

A fault point is free when nothing is installed (one module-attribute
check) and does nothing unless an installed rule matches its site (and
key, if the rule pins one).  Rules specify an *action*:

``kill``
    ``SIGKILL`` the calling process (after ``value`` seconds if given) —
    simulates an OOM-killed or segfaulted worker.
``exit``
    ``os._exit(value or 1)`` — a worker that dies without unwinding.
``raise``
    raise :class:`FaultInjected` — an unexpected exception inside a shard
    or handler.
``drop``
    raise :class:`FaultInjected` flagged as a connection drop — the
    server's frame loop turns it into an abrupt close.
``enospc``
    raise ``OSError(ENOSPC)`` — a full disk during a store append.
``sleep``
    stall for ``value`` seconds — a straggler for deadline tests.

Rules fire a bounded number of times (``count``).  Because engine workers
are separate *processes*, in-memory counters would be copied at fork time
and each worker would fire independently; bounded rules therefore claim
fires through ``O_CREAT | O_EXCL`` token files in a shared directory,
which is atomic across processes.  :func:`install` creates a temporary
token directory automatically, so tests on a fork-based platform need
nothing beyond ``install(...)`` / ``reset()``.

For spawned processes (no inherited module state) the plan can instead be
carried in the environment: ``REPRO_FAULTS_SPEC`` holds a spec string
like ``"engine.unit:kill:key=grow-3:count=2;store.append:enospc"`` and
``REPRO_FAULTS_DIR`` the token directory.  ``REPRO_FAULTS=1`` on its own
carries no plan — it is the opt-in flag the chaos CI job sets to enable
the heavier scenarios in ``tests/faults/``.
"""

from __future__ import annotations

import errno
import os
import shutil
import signal
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

ENV_SPEC = "REPRO_FAULTS_SPEC"
ENV_TOKEN_DIR = "REPRO_FAULTS_DIR"
ENV_ENABLE = "REPRO_FAULTS"

_ACTIONS = ("kill", "exit", "raise", "drop", "enospc", "sleep")


class FaultInjected(RuntimeError):
    """Raised by ``raise``/``drop`` fault rules.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: injected
    faults model unexpected failures, so they must not be absorbed by
    handlers that treat library errors as expected conditions.
    """

    def __init__(self, message: str, *, drop_connection: bool = False) -> None:
        super().__init__(message)
        self.drop_connection = drop_connection


class FaultRule:
    """One ``site → action`` rule with an optional key filter and budget."""

    __slots__ = ("site", "action", "key", "count", "value", "index", "_fired", "_lock")

    def __init__(
        self,
        site: str,
        action: str,
        *,
        key: Optional[str] = None,
        count: Optional[int] = None,
        value: Optional[float] = None,
        index: int = 0,
    ) -> None:
        if action not in _ACTIONS:
            raise ValueError(f"unknown fault action {action!r} (expected one of {_ACTIONS})")
        self.site = site
        self.action = action
        self.key = key
        self.count = count
        self.value = value
        self.index = index
        self._fired = 0
        self._lock = threading.Lock()

    def spec(self) -> str:
        parts = [self.site, self.action]
        if self.key is not None:
            parts.append(f"key={self.key}")
        if self.count is not None:
            parts.append(f"count={self.count}")
        if self.value is not None:
            parts.append(f"value={self.value}")
        return ":".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultRule({self.spec()!r})"


class FaultPlan:
    """A set of rules plus the token directory that bounds their fires."""

    def __init__(self, rules: Sequence[FaultRule], token_dir: Optional[str] = None) -> None:
        self.rules = tuple(rules)
        self.token_dir = token_dir
        self._by_site: Dict[str, Tuple[FaultRule, ...]] = {}
        for rule in self.rules:
            self._by_site[rule.site] = self._by_site.get(rule.site, ()) + (rule,)

    def fire(self, site: str, key: Optional[str] = None) -> None:
        for rule in self._by_site.get(site, ()):
            if rule.key is not None and key is not None and rule.key != str(key):
                continue
            if rule.key is not None and key is None:
                continue
            if not self._claim(rule):
                continue
            _act(rule)

    def _claim(self, rule: FaultRule) -> bool:
        """Atomically consume one fire from the rule's budget."""
        if rule.count is None:
            return True
        if self.token_dir is not None:
            stem = f"{rule.index:02d}-{rule.site}.fired"
            for attempt in range(rule.count):
                token = os.path.join(self.token_dir, f"{stem}.{attempt}")
                try:
                    os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                    return True
                except FileExistsError:
                    continue
                except OSError:
                    return False
            return False
        with rule._lock:
            if rule._fired >= rule.count:
                return False
            rule._fired += 1
            return True


def _act(rule: FaultRule) -> None:
    if rule.action == "kill":
        if rule.value:
            time.sleep(float(rule.value))
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # pragma: no cover - SIGKILL is not instantaneous
    elif rule.action == "exit":
        os._exit(int(rule.value or 1))
    elif rule.action == "raise":
        raise FaultInjected(f"injected fault at {rule.site}")
    elif rule.action == "drop":
        raise FaultInjected(f"injected connection drop at {rule.site}", drop_connection=True)
    elif rule.action == "enospc":
        raise OSError(errno.ENOSPC, f"No space left on device (injected at {rule.site})")
    elif rule.action == "sleep":
        time.sleep(float(rule.value if rule.value is not None else 1.0))


def parse_spec(spec: str) -> List[FaultRule]:
    """Parse ``site:action[:key=K][:count=N][:value=V];...`` into rules."""
    rules: List[FaultRule] = []
    for index, chunk in enumerate(part for part in spec.split(";") if part.strip()):
        fields = [field.strip() for field in chunk.split(":")]
        if len(fields) < 2:
            raise ValueError(f"fault spec {chunk!r} needs at least site:action")
        site, action = fields[0], fields[1]
        key: Optional[str] = None
        count: Optional[int] = None
        value: Optional[float] = None
        for extra in fields[2:]:
            name, _, raw = extra.partition("=")
            if name == "key":
                key = raw
            elif name == "count":
                count = int(raw)
            elif name == "value":
                value = float(raw)
            else:
                raise ValueError(f"unknown fault option {extra!r} in {chunk!r}")
        rules.append(FaultRule(site, action, key=key, count=count, value=value, index=index))
    return rules


# --------------------------------------------------------------------- #
# Module state
# --------------------------------------------------------------------- #
# ``ACTIVE`` is the whole happy-path story: fault sites guard their
# trigger with ``if faults.ACTIVE is not None`` so production runs pay
# one attribute load.  Forked workers inherit the plan (and its token
# directory path) automatically.
ACTIVE: Optional[FaultPlan] = None
_OWNED_TOKEN_DIR: Optional[str] = None


def install(
    site: str,
    action: str,
    *,
    key: Optional[str] = None,
    count: Optional[int] = None,
    value: Optional[float] = None,
    token_dir: Optional[str] = None,
) -> FaultPlan:
    """Install a single rule (adding to any active plan) and return the plan.

    When ``count`` is bounded and no token directory exists yet, a
    temporary one is created (and removed again by :func:`reset`) so the
    budget holds across forked worker processes.
    """
    global ACTIVE, _OWNED_TOKEN_DIR
    existing = ACTIVE.rules if ACTIVE is not None else ()
    rule = FaultRule(site, action, key=key, count=count, value=value, index=len(existing))
    directory = token_dir or (ACTIVE.token_dir if ACTIVE is not None else None)
    if directory is None and count is not None:
        directory = tempfile.mkdtemp(prefix="repro-faults-")
        _OWNED_TOKEN_DIR = directory
    ACTIVE = FaultPlan(existing + (rule,), token_dir=directory)
    return ACTIVE


def install_plan(rules: Sequence[FaultRule], token_dir: Optional[str] = None) -> FaultPlan:
    """Replace the active plan wholesale (used by :func:`load_from_env`)."""
    global ACTIVE, _OWNED_TOKEN_DIR
    bounded = any(rule.count is not None for rule in rules)
    if token_dir is None and bounded:
        token_dir = tempfile.mkdtemp(prefix="repro-faults-")
        _OWNED_TOKEN_DIR = token_dir
    ACTIVE = FaultPlan(rules, token_dir=token_dir)
    return ACTIVE


def reset() -> None:
    """Remove the active plan (and any token directory it owned)."""
    global ACTIVE, _OWNED_TOKEN_DIR
    ACTIVE = None
    if _OWNED_TOKEN_DIR is not None:
        shutil.rmtree(_OWNED_TOKEN_DIR, ignore_errors=True)
        _OWNED_TOKEN_DIR = None


def trigger(site: str, key: Optional[str] = None) -> None:
    """Fire the fault point ``site``; a no-op unless a matching rule is armed."""
    plan = ACTIVE
    if plan is not None:
        plan.fire(site, key)


def load_from_env() -> Optional[FaultPlan]:
    """Arm a plan from ``REPRO_FAULTS_SPEC`` / ``REPRO_FAULTS_DIR``, if set."""
    spec = os.environ.get(ENV_SPEC)
    if not spec:
        return None
    return install_plan(parse_spec(spec), token_dir=os.environ.get(ENV_TOKEN_DIR))


load_from_env()
