"""Event vocabulary: interning of event labels to dense integer identifiers.

The public API of the library works with arbitrary hashable event labels
(normally strings such as ``"TxManager.begin"``).  Internally the miners
work over dense integer identifiers: comparisons are cheaper, sequences can
be stored as compact tuples of ``int`` and per-event position indexes can be
plain lists.  :class:`EventVocabulary` provides the two-way mapping.

The vocabulary is append-only.  Encoding an unknown label either registers
it (the default, used while building a database) or raises
:class:`~repro.core.errors.VocabularyError` (used when decoding a query
pattern against an already-built database).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Sequence as TypingSequence, Tuple

from .errors import VocabularyError

EventLabel = Hashable
EventId = int

#: The encoded (integer-id) view of a sequence database — the single
#: contract shared by the miners, the projection machinery and the engine.
EncodedDatabase = TypingSequence[TypingSequence[EventId]]


class EventVocabulary:
    """A bijective mapping between event labels and dense integer ids.

    Example
    -------
    >>> vocab = EventVocabulary()
    >>> vocab.intern("lock")
    0
    >>> vocab.intern("unlock")
    1
    >>> vocab.intern("lock")
    0
    >>> vocab.label_of(1)
    'unlock'
    """

    __slots__ = ("_label_to_id", "_labels")

    def __init__(self, labels: Iterable[EventLabel] = ()) -> None:
        self._label_to_id: Dict[EventLabel, EventId] = {}
        self._labels: List[EventLabel] = []
        for label in labels:
            self.intern(label)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: EventLabel) -> bool:
        return label in self._label_to_id

    def __iter__(self) -> Iterator[EventLabel]:
        return iter(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EventVocabulary(size={len(self)})"

    def intern(self, label: EventLabel) -> EventId:
        """Return the id for ``label``, registering it if unseen."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._label_to_id[label] = new_id
        self._labels.append(label)
        return new_id

    def truncate(self, size: int) -> None:
        """Drop the labels with ids ``>= size`` (rollback of failed interning).

        The vocabulary is append-only for everyone who can observe an id;
        this is the one sanctioned exception: undoing interning done on
        behalf of work that was rolled back before anything referenced the
        new ids (the trace store uses it when an append fails mid-batch).
        """
        while len(self._labels) > size:
            del self._label_to_id[self._labels.pop()]

    def id_of(self, label: EventLabel) -> EventId:
        """Return the id for ``label`` or raise :class:`VocabularyError`."""
        try:
            return self._label_to_id[label]
        except KeyError:
            raise VocabularyError(f"unknown event label: {label!r}") from None

    def label_of(self, event_id: EventId) -> EventLabel:
        """Return the label registered for ``event_id``."""
        if 0 <= event_id < len(self._labels):
            return self._labels[event_id]
        raise VocabularyError(f"unknown event id: {event_id}")

    def encode(self, labels: TypingSequence[EventLabel], register: bool = False) -> Tuple[EventId, ...]:
        """Encode a series of labels into a tuple of ids.

        Parameters
        ----------
        labels:
            The labels to encode, in order.
        register:
            When ``True`` unknown labels are interned; when ``False`` an
            unknown label raises :class:`VocabularyError`.
        """
        if register:
            return tuple(self.intern(label) for label in labels)
        return tuple(self.id_of(label) for label in labels)

    def decode(self, event_ids: TypingSequence[EventId]) -> Tuple[EventLabel, ...]:
        """Decode a series of ids back into their labels."""
        return tuple(self.label_of(event_id) for event_id in event_ids)

    def labels(self) -> Tuple[EventLabel, ...]:
        """All labels, indexed by their ids."""
        return tuple(self._labels)
