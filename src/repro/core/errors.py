"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications embedding the library can catch a single base class.  The more
specific subclasses distinguish configuration problems (bad thresholds),
malformed input data and serialization issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A mining or generation configuration is invalid.

    Raised, for example, for a negative support threshold, a confidence
    outside ``[0, 1]`` or an empty pattern-length bound.
    """


class DataFormatError(ReproError):
    """Input data (a trace file, a sequence database dump) is malformed."""


class VocabularyError(ReproError):
    """An event is not present in an :class:`~repro.core.events.EventVocabulary`."""


class PatternError(ReproError):
    """A pattern or rule value is structurally invalid (e.g. empty premise)."""


class MonitoringError(ReproError):
    """Runtime monitoring was asked to check an unsupported specification."""
