"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications embedding the library can catch a single base class.  The more
specific subclasses distinguish configuration problems (bad thresholds),
malformed input data and serialization issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A mining or generation configuration is invalid.

    Raised, for example, for a negative support threshold, a confidence
    outside ``[0, 1]`` or an empty pattern-length bound.
    """


class DataFormatError(ReproError):
    """Input data (a trace file, a sequence database dump) is malformed."""


class VocabularyError(ReproError):
    """An event is not present in an :class:`~repro.core.events.EventVocabulary`."""


class PatternError(ReproError):
    """A pattern or rule value is structurally invalid (e.g. empty premise)."""


class MonitoringError(ReproError):
    """Runtime monitoring was asked to check an unsupported specification."""


class ExecutionFault(ReproError):
    """A parallel mining run could not recover from worker failures.

    Raised when crash recovery exhausts its options: a work unit keeps
    killing the workers that pick it up (poison-unit quarantine — the
    message names the unit), or every worker process died.  Transient
    worker deaths below the retry budget are recovered silently and only
    surface as ``units_retried`` / ``workers_lost`` counters in
    :class:`~repro.core.stats.MiningStats`.
    """


class ServingTimeout(MonitoringError):
    """A serving-plane wait expired.

    Raised by :meth:`PushClient.read` (and everything layered on it, such
    as ``pipeline``) when the server does not reply within the socket
    timeout, and by :meth:`SessionTicket.wait` when a shard does not close
    the session within ``timeout`` seconds.
    """


class SessionLost(MonitoringError):
    """A monitoring session was discarded because its shard crashed.

    The supervisor restarts the shard, but in-memory monitor state for its
    sessions is gone; the owner is told once via this error (or the
    ``SESSION_LOST`` wire reply) and may re-admit the session id.
    """
