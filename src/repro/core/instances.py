"""Iterative-pattern instance semantics (Definition 4.1, QRE).

Given a pattern ``P = <p1, ..., pn>``, a substring ``S[start..end]`` of a
sequence ``S`` is an *instance* of ``P`` iff it matches the quantified
regular expression

    ``p1 ; [-p1,...,pn]* ; p2 ; ... ; [-p1,...,pn]* ; pn``

that is: the substring starts with ``p1``, ends with ``pn``, and the events
of the pattern's alphabet occurring inside the substring are exactly
``p1, ..., pn`` in that order (events outside the alphabet may appear freely
in the gaps).  This mirrors the total-ordering and one-to-one correspondence
requirements of MSC/LSC discussed in Section 3.2.

Two useful structural facts follow directly from the definition and are
relied upon throughout the mining code (and are exercised by the property
tests):

* an instance is uniquely determined by its start position — from a given
  start the sequence of alphabet events is fixed, so at most one end
  position can complete an instance;
* symmetrically, an instance is uniquely determined by its end position.

The functions in this module form the *oracle* implementation: a direct,
obviously-correct translation of the definition, used by the verification
layer and by the tests to validate the incremental projected-database
computation performed inside the miners.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence as TypingSequence,
    Tuple,
)

from .errors import PatternError


class PatternInstance(NamedTuple):
    """An instance of an iterative pattern.

    Attributes
    ----------
    sequence_index:
        Index of the sequence in the database the instance occurs in.
    start:
        0-based position of the first pattern event.
    end:
        0-based position of the last pattern event (inclusive).
    """

    sequence_index: int
    start: int
    end: int

    def corresponds_to(self, other: "PatternInstance") -> bool:
        """Definition 4.2 correspondence: ``self`` is nested inside ``other``.

        An instance of ``P`` corresponds to an instance of ``Q`` when both
        occur in the same sequence and the ``P`` instance's span lies within
        the ``Q`` instance's span.
        """
        return (
            self.sequence_index == other.sequence_index
            and self.start >= other.start
            and self.end <= other.end
        )


def find_instances_in_sequence(
    sequence: TypingSequence, pattern: TypingSequence
) -> List[Tuple[int, int]]:
    """All ``(start, end)`` instance spans of ``pattern`` in ``sequence``.

    Direct implementation of the QRE of Definition 4.1.  Runs in
    ``O(len(sequence) * len(pattern))`` in the worst case which is perfectly
    adequate for an oracle; the miners use an incremental formulation.
    """
    if not pattern:
        raise PatternError("cannot search for an empty pattern")
    pattern = tuple(pattern)
    pattern_alphabet = frozenset(pattern)
    first_event = pattern[0]
    spans: List[Tuple[int, int]] = []
    for start, event in enumerate(sequence):
        if event != first_event:
            continue
        span = _try_match_from(sequence, pattern, pattern_alphabet, start)
        if span is not None:
            spans.append(span)
    return spans


def _try_match_from(
    sequence: TypingSequence,
    pattern: Tuple,
    pattern_alphabet: frozenset,
    start: int,
) -> Optional[Tuple[int, int]]:
    """Match the QRE starting exactly at ``start``; return the span or ``None``."""
    expected_index = 1
    if len(pattern) == 1:
        return (start, start)
    for position in range(start + 1, len(sequence)):
        event = sequence[position]
        if event == pattern[expected_index]:
            expected_index += 1
            if expected_index == len(pattern):
                return (start, position)
        elif event in pattern_alphabet:
            # An alphabet event out of order breaks the one-to-one
            # correspondence requirement: no instance starts at ``start``.
            return None
    return None


def find_instances(
    encoded_sequences: TypingSequence[TypingSequence], pattern: TypingSequence
) -> List[PatternInstance]:
    """All instances of ``pattern`` across a database of sequences."""
    instances: List[PatternInstance] = []
    for sequence_index, sequence in enumerate(encoded_sequences):
        for start, end in find_instances_in_sequence(sequence, pattern):
            instances.append(PatternInstance(sequence_index, start, end))
    return instances


def instance_support(
    encoded_sequences: TypingSequence[TypingSequence], pattern: TypingSequence
) -> int:
    """The support of ``pattern``: its total number of instances in the database."""
    return len(find_instances(encoded_sequences, pattern))


def sequence_support(
    encoded_sequences: TypingSequence[TypingSequence], pattern: TypingSequence
) -> int:
    """Number of sequences containing at least one instance of ``pattern``."""
    count = 0
    for sequence in encoded_sequences:
        if find_instances_in_sequence(sequence, pattern):
            count += 1
    return count


def instances_correspond(
    sub_instances: Iterable[PatternInstance], super_instances: Iterable[PatternInstance]
) -> bool:
    """Check the Definition 4.2 correspondence between two instance sets.

    Every instance of the sub-pattern must be nested inside a *unique*
    instance of the super-pattern.  Because instances of a pattern are
    uniquely determined by their start (and end) positions, nesting inside
    distinct super-instances is automatic once each sub-instance finds some
    enclosing super-instance with the same start-or-end discipline; we still
    enforce uniqueness explicitly to stay faithful to the definition.
    """
    super_by_sequence: Dict[int, List[PatternInstance]] = {}
    for instance in super_instances:
        super_by_sequence.setdefault(instance.sequence_index, []).append(instance)
    used: set = set()
    for sub in sub_instances:
        candidates = super_by_sequence.get(sub.sequence_index, [])
        match = None
        for candidate in candidates:
            if sub.corresponds_to(candidate) and candidate not in used:
                match = candidate
                break
        if match is None:
            return False
        used.add(match)
    return True


def gap_events(
    sequence: TypingSequence, pattern: TypingSequence, span: Tuple[int, int]
) -> Iterator[Tuple[int, int]]:
    """Yield ``(gap_index, position)`` for every non-pattern event inside an instance.

    ``gap_index`` is the index of the gap the event falls into: gap ``i``
    lies between pattern events ``i-1`` and ``i`` (so gaps are numbered
    ``1 .. len(pattern)-1``).  Used by the closure checks (infix extensions).
    """
    pattern = tuple(pattern)
    pattern_alphabet = frozenset(pattern)
    start, end = span
    expected_index = 1
    for position in range(start + 1, end + 1):
        event = sequence[position]
        if expected_index < len(pattern) and event == pattern[expected_index]:
            expected_index += 1
        elif event not in pattern_alphabet:
            yield (expected_index, position)
