"""Pattern algebra: subsequence tests, concatenation and helpers.

A *pattern* in this library is simply a tuple of events (labels or encoded
ids — the functions here are agnostic).  This module collects the small
algebraic operations from Section 3.1 of the paper:

* the subsequence relation ``P1 ⊑ P2`` (:func:`is_subsequence`),
* pattern concatenation ``P1 ++ P2`` (:func:`concat`),
* ``first(P)`` / ``last(P)`` accessors,
* enumeration of all (contiguous and non-contiguous) subpatterns, used by
  the redundancy filters and by the test oracles.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence as TypingSequence, Set, Tuple, TypeVar

from .errors import PatternError

Event = TypeVar("Event")
Pattern = Tuple[Event, ...]


def as_pattern(events: TypingSequence[Event]) -> Pattern:
    """Normalise any sequence of events into the canonical tuple form."""
    return tuple(events)


def first(pattern: TypingSequence[Event]) -> Event:
    """``first(P)``: the first event of a non-empty pattern."""
    if not pattern:
        raise PatternError("first() of an empty pattern")
    return pattern[0]


def last(pattern: TypingSequence[Event]) -> Event:
    """``last(P)``: the last event of a non-empty pattern."""
    if not pattern:
        raise PatternError("last() of an empty pattern")
    return pattern[-1]


def concat(*patterns: TypingSequence[Event]) -> Pattern:
    """``P1 ++ P2 ++ ...``: concatenation of patterns."""
    result: Tuple[Event, ...] = ()
    for pattern in patterns:
        result = result + tuple(pattern)
    return result


def is_subsequence(candidate: TypingSequence[Event], container: TypingSequence[Event]) -> bool:
    """Whether ``candidate ⊑ container`` (Section 3.1).

    ``P1`` is a subsequence of ``P2`` when the events of ``P1`` appear in
    ``P2`` in the same order, not necessarily contiguously.  The empty
    pattern is a subsequence of everything.
    """
    if len(candidate) > len(container):
        return False
    position = 0
    for event in container:
        if position == len(candidate):
            return True
        if event == candidate[position]:
            position += 1
    return position == len(candidate)


def is_proper_subsequence(candidate: TypingSequence[Event], container: TypingSequence[Event]) -> bool:
    """``candidate ⊑ container`` and the two patterns differ."""
    return tuple(candidate) != tuple(container) and is_subsequence(candidate, container)


def is_supersequence(candidate: TypingSequence[Event], contained: TypingSequence[Event]) -> bool:
    """Whether ``candidate`` is a super-sequence of ``contained``."""
    return is_subsequence(contained, candidate)


def alphabet(pattern: TypingSequence[Event]) -> Set[Event]:
    """The set of distinct events occurring in ``pattern``."""
    return set(pattern)


def subpatterns(pattern: TypingSequence[Event], include_empty: bool = False) -> Iterator[Pattern]:
    """Yield every subsequence of ``pattern`` (exponential — test oracle only).

    Duplicate subsequences arising from repeated events are yielded once.
    """
    pattern = tuple(pattern)
    seen: Set[Pattern] = set()
    lengths: Iterable[int] = range(0 if include_empty else 1, len(pattern) + 1)
    for length in lengths:
        for indices in combinations(range(len(pattern)), length):
            candidate = tuple(pattern[index] for index in indices)
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def prefixes(pattern: TypingSequence[Event], proper: bool = True) -> Iterator[Pattern]:
    """Yield the non-empty prefixes of ``pattern`` (shortest first)."""
    pattern = tuple(pattern)
    end = len(pattern) if not proper else len(pattern) - 1
    for length in range(1, end + 1):
        yield pattern[:length]


def suffixes(pattern: TypingSequence[Event], proper: bool = True) -> Iterator[Pattern]:
    """Yield the non-empty suffixes of ``pattern`` (shortest first)."""
    pattern = tuple(pattern)
    end = len(pattern) if not proper else len(pattern) - 1
    for length in range(1, end + 1):
        yield pattern[len(pattern) - length:]


def format_pattern(pattern: TypingSequence[Event]) -> str:
    """Render a pattern in the paper's angle-bracket notation."""
    return "<" + ", ".join(str(event) for event in pattern) + ">"
