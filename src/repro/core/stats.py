"""Lightweight mining statistics collection.

Every miner in the library carries a :class:`MiningStats` object that counts
how many search-tree nodes were visited, how many were pruned by each
strategy, how many results were emitted and how long the run took.  The
performance benchmarks (Figures 1–3) read these counters to report the same
quantities as the paper (runtime and number of mined patterns / rules), and
the ablation benchmarks use the pruning counters directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class MiningStats:
    """Counters and wall-clock timing for a single mining run."""

    visited: int = 0
    emitted: int = 0
    pruned_support: int = 0
    pruned_confidence: int = 0
    pruned_closure: int = 0
    pruned_redundancy: int = 0
    #: instance-list rows materialised into columnar blocks while growing
    #: patterns — the allocation volume of the projected-database hot loop
    instances_materialized: int = 0
    #: payload bytes of instance blocks packaged into shard outcomes (the
    #: worker-to-coordinator transfer volume on the process backend; counted
    #: identically on the serial backend for comparability)
    shipped_bytes: int = 0
    extra: Dict[str, int] = field(default_factory=dict)
    _started_at: float = field(default=0.0, repr=False)
    elapsed_seconds: float = 0.0

    def start(self) -> None:
        """Start (or restart) the wall-clock timer."""
        self._started_at = time.perf_counter()

    def stop(self) -> None:
        """Stop the timer and accumulate the elapsed wall-clock time."""
        if self._started_at:
            self.elapsed_seconds += time.perf_counter() - self._started_at
            self._started_at = 0.0

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter stored in :attr:`extra`."""
        self.extra[name] = self.extra.get(name, 0) + amount

    #: fields that are timing state, not mergeable search counters
    _NON_COUNTER_FIELDS = frozenset({"extra", "_started_at", "elapsed_seconds"})

    def merge_counters(self, other: "MiningStats") -> None:
        """Fold another run's search counters into this one.

        Used by the parallel engine to combine per-shard statistics.  The
        counter set is derived from the dataclass fields so future counters
        merge automatically; wall-clock time is excluded because it is
        owned by whoever timed the whole run (summing per-worker clocks
        would double-count overlapping work).
        """
        for spec in fields(self):
            if spec.name in self._NON_COUNTER_FIELDS:
                continue
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))
        for name, amount in other.extra.items():
            self.bump(name, amount)

    def as_dict(self) -> Dict[str, float]:
        """A flat dictionary view used by reports and benchmarks."""
        result: Dict[str, float] = {
            "visited": float(self.visited),
            "emitted": float(self.emitted),
            "pruned_support": float(self.pruned_support),
            "pruned_confidence": float(self.pruned_confidence),
            "pruned_closure": float(self.pruned_closure),
            "pruned_redundancy": float(self.pruned_redundancy),
            "instances_materialized": float(self.instances_materialized),
            "shipped_bytes": float(self.shipped_bytes),
            "elapsed_seconds": self.elapsed_seconds,
        }
        for key, value in self.extra.items():
            result[f"extra_{key}"] = float(value)
        return result


class Timer:
    """Context manager measuring a wall-clock duration in seconds."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start
