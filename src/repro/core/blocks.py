"""Columnar instance lists: flat-array projected databases for the hot loop.

The mining search spends nearly all of its time growing instance lists
(Section 4's projected-database formulation).  Materialising those lists as
``List[PatternInstance]`` — one NamedTuple per instance — makes every inner
loop pay for tuple allocation, attribute access and (between engine worker
processes) per-tuple pickling.

:class:`InstanceBlock` stores the same information column-wise: parallel
``array('i')`` columns of start and end positions, partitioned by sequence
through an offsets array.  The layout buys three things:

* inner loops iterate over machine ints and hoist the per-sequence
  ``encoded[sid]`` / ``index[sid]`` lookups out of the per-instance loop,
* a block pickles as a handful of contiguous buffers instead of millions
  of tuples when shard results cross the worker/coordinator boundary, and
* the per-sequence partitioning gives the projection code its grouping for
  free (the rows of one sequence are a contiguous slice).

Blocks preserve the canonical instance order of the tuple-based code —
ascending sequence index, then ascending start position — so converting a
block back to :class:`~repro.core.instances.PatternInstance` tuples
reproduces the pre-columnar output bit for bit (property-tested against the
oracle in :mod:`repro.core.instances`).

:class:`PositionBlock` is the rule-mining sibling: flat ``(sequence,
position)`` columns used for premise projections and temporal points, where
each row is a single position rather than a span.

:class:`WireInstanceBlock` is the shard *wire form* of an instance block:
because an instance is uniquely determined by its start position, the
``ends`` column is redundant on the worker-to-coordinator boundary — the
coordinator re-derives it by walking the pattern forward from each start.
Converting to wire form shares the remaining columns (zero copy), so
dropping ``ends`` shrinks the shipped payload by the whole column.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Tuple

from .instances import PatternInstance

#: Typecode of every block column: C signed int, 4 bytes on every platform
#: CPython supports.  Positions and sequence indexes comfortably fit.
BLOCK_TYPECODE = "i"


def _int_array() -> array:
    return array(BLOCK_TYPECODE)


class InstanceBlock:
    """An immutable columnar list of pattern instances.

    Rows are grouped by sequence: ``seq_ids[k]`` is the k-th distinct
    sequence index (ascending) and its rows occupy the half-open range
    ``offsets[k] .. offsets[k+1]`` of the ``starts`` / ``ends`` columns.
    Within a sequence, rows are ordered by ascending start position — which
    for instances of one pattern is also ascending end position, since an
    instance is uniquely determined by either endpoint.
    """

    __slots__ = ("seq_ids", "offsets", "starts", "ends")

    def __init__(self, seq_ids: array, offsets: array, starts: array, ends: array) -> None:
        self.seq_ids = seq_ids
        self.offsets = offsets
        self.starts = starts
        self.ends = ends

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_instances(cls, instances: Iterable[PatternInstance]) -> "InstanceBlock":
        """Build a block from row objects (any order; rows are re-sorted)."""
        rows = sorted(instances)
        builder = BlockBuilder()
        for sequence_index, start, end in rows:
            builder.append(sequence_index, start, end)
        return builder.build()

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.starts)

    def __bool__(self) -> bool:
        return len(self.starts) > 0

    def __iter__(self) -> Iterator[PatternInstance]:
        """Yield rows as :class:`PatternInstance` — convenience, not hot path."""
        starts = self.starts
        ends = self.ends
        seq_ids = self.seq_ids
        offsets = self.offsets
        for group in range(len(seq_ids)):
            sid = seq_ids[group]
            for row in range(offsets[group], offsets[group + 1]):
                yield PatternInstance(sid, starts[row], ends[row])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InstanceBlock):
            return NotImplemented
        return (
            self.seq_ids == other.seq_ids
            and self.offsets == other.offsets
            and self.starts == other.starts
            and self.ends == other.ends
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InstanceBlock(rows={len(self)}, sequences={len(self.seq_ids)})"

    def first(self) -> PatternInstance:
        """The first row in canonical order (block must be non-empty)."""
        return PatternInstance(self.seq_ids[0], self.starts[0], self.ends[0])

    def groups(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(sequence_index, row_lo, row_hi)`` per sequence partition."""
        seq_ids = self.seq_ids
        offsets = self.offsets
        for group in range(len(seq_ids)):
            yield seq_ids[group], offsets[group], offsets[group + 1]

    # ------------------------------------------------------------------ #
    # Conversion / accounting
    # ------------------------------------------------------------------ #
    def to_instances(self) -> List[PatternInstance]:
        """Materialise the rows as the tuple-based representation."""
        return list(self)

    def to_tuple(self) -> Tuple[PatternInstance, ...]:
        """Materialise the rows as an immutable tuple (public result form)."""
        return tuple(self)

    def nbytes(self) -> int:
        """Size of the underlying buffers — the shard-transfer payload."""
        return (
            len(self.seq_ids) * self.seq_ids.itemsize
            + len(self.offsets) * self.offsets.itemsize
            + len(self.starts) * self.starts.itemsize
            + len(self.ends) * self.ends.itemsize
        )

    def to_wire(self) -> "WireInstanceBlock":
        """The wire form of this block: ``ends`` stays behind on pickling.

        Shares every column with this block (no copy), including ``ends``
        for free same-process decoding; only a pickle crossing drops the
        ends column, and the coordinator then reconstructs it from the
        pattern — see :meth:`WireInstanceBlock.to_block`.
        """
        return WireInstanceBlock(self.seq_ids, self.offsets, self.starts, self.ends)

    # arrays pickle as compact buffers already; the default reduce of a
    # __slots__ class handles the rest.
    def __reduce__(self):
        return (InstanceBlock, (self.seq_ids, self.offsets, self.starts, self.ends))


class WireInstanceBlock:
    """An instance block whose derivable ``ends`` column stays off the wire.

    This is what pattern records ship across the worker-to-coordinator
    boundary.  In-process the block keeps a reference to the original
    ``ends`` column (free — the columns are shared, not copied), so a
    serial run decodes instances without any recomputation; pickling
    detaches it (see ``__reduce__``), and only then does reconstruction
    happen, on the coordinator.  Reconstruction relies on the QRE instance
    semantics: from a valid instance start, each subsequent pattern
    event's match position is that event's *first* occurrence after the
    previous match (any earlier alphabet event would invalidate the
    instance), so a forward walk over the sequence recovers the end
    position exactly.
    """

    __slots__ = ("seq_ids", "offsets", "starts", "ends")

    def __init__(
        self,
        seq_ids: array,
        offsets: array,
        starts: array,
        ends: Optional[array] = None,
    ) -> None:
        self.seq_ids = seq_ids
        self.offsets = offsets
        self.starts = starts
        self.ends = ends

    def __len__(self) -> int:
        return len(self.starts)

    def __bool__(self) -> bool:
        return len(self.starts) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WireInstanceBlock):
            return NotImplemented
        return (
            self.seq_ids == other.seq_ids
            and self.offsets == other.offsets
            and self.starts == other.starts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WireInstanceBlock(rows={len(self)}, sequences={len(self.seq_ids)})"

    def nbytes(self) -> int:
        """Size of the buffers that cross the wire (``ends`` never does)."""
        return (
            len(self.seq_ids) * self.seq_ids.itemsize
            + len(self.offsets) * self.offsets.itemsize
            + len(self.starts) * self.starts.itemsize
        )

    def to_block(self, encoded_db, pattern) -> InstanceBlock:
        """The full :class:`InstanceBlock`: reattach or rebuild ``ends``."""
        if self.ends is not None:
            return InstanceBlock(self.seq_ids, self.offsets, self.starts, self.ends)
        tail = tuple(pattern)[1:]
        starts = self.starts
        offsets = self.offsets
        seq_ids = self.seq_ids
        ends = _int_array()
        for group in range(len(seq_ids)):
            sequence = encoded_db[seq_ids[group]]
            for row in range(offsets[group], offsets[group + 1]):
                position = starts[row]
                for event in tail:
                    position += 1
                    while sequence[position] != event:
                        position += 1
                ends.append(position)
        return InstanceBlock(seq_ids, offsets, starts, ends)

    def to_tuple(self, encoded_db, pattern) -> Tuple[PatternInstance, ...]:
        """Materialise the rows as :class:`PatternInstance` tuples."""
        return self.to_block(encoded_db, pattern).to_tuple()

    # Pickling detaches the ends column — that is the whole point of the
    # wire form; the receiving side reconstructs on demand.
    def __reduce__(self):
        return (WireInstanceBlock, (self.seq_ids, self.offsets, self.starts))


class BlockBuilder:
    """Append-only builder for :class:`InstanceBlock`.

    Rows must arrive grouped by non-decreasing sequence index — which is
    exactly the order every projection loop produces them in (they iterate
    the parent block sequence by sequence).
    """

    __slots__ = ("seq_ids", "offsets", "starts", "ends", "_last_sid")

    def __init__(self) -> None:
        self.seq_ids = _int_array()
        self.offsets = _int_array()
        self.starts = _int_array()
        self.ends = _int_array()
        self._last_sid = -1

    def append(self, sequence_index: int, start: int, end: int) -> None:
        if sequence_index != self._last_sid:
            self.seq_ids.append(sequence_index)
            self.offsets.append(len(self.starts))
            self._last_sid = sequence_index
        self.starts.append(start)
        self.ends.append(end)

    def __len__(self) -> int:
        return len(self.starts)

    def build(self) -> InstanceBlock:
        self.offsets.append(len(self.starts))
        block = InstanceBlock(self.seq_ids, self.offsets, self.starts, self.ends)
        # Detach every column so post-build appends cannot mutate the block
        # that was just handed out; the builder starts over empty.
        self.seq_ids = _int_array()
        self.offsets = _int_array()
        self.starts = _int_array()
        self.ends = _int_array()
        self._last_sid = -1
        return block


class PositionBlock:
    """A columnar list of ``(sequence_index, position)`` rows.

    Used by the rule miners for premise projections (one row per supporting
    sequence, ascending) and temporal points (rows grouped by sequence).
    """

    __slots__ = ("seq_ids", "positions")

    def __init__(self, seq_ids: array, positions: array) -> None:
        self.seq_ids = seq_ids
        self.positions = positions

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "PositionBlock":
        builder = PositionBlockBuilder()
        for sequence_index, position in pairs:
            builder.append(sequence_index, position)
        return builder.build()

    def __len__(self) -> int:
        return len(self.positions)

    def __bool__(self) -> bool:
        return len(self.positions) > 0

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return zip(self.seq_ids, self.positions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PositionBlock):
            return NotImplemented
        return self.seq_ids == other.seq_ids and self.positions == other.positions

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PositionBlock(rows={len(self)})"

    def nbytes(self) -> int:
        """Size of the underlying buffers."""
        return (
            len(self.seq_ids) * self.seq_ids.itemsize
            + len(self.positions) * self.positions.itemsize
        )

    def __reduce__(self):
        return (PositionBlock, (self.seq_ids, self.positions))


class PositionBlockBuilder:
    """Append-only builder for :class:`PositionBlock`."""

    __slots__ = ("seq_ids", "positions")

    def __init__(self) -> None:
        self.seq_ids = _int_array()
        self.positions = _int_array()

    def append(self, sequence_index: int, position: int) -> None:
        self.seq_ids.append(sequence_index)
        self.positions.append(position)

    def __len__(self) -> int:
        return len(self.positions)

    def build(self) -> PositionBlock:
        return PositionBlock(self.seq_ids, self.positions)
