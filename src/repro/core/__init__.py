"""Core substrate: events, sequences, databases and iterative-pattern semantics.

The :mod:`repro.core` package holds everything shared by the two mining
techniques of the paper (iterative patterns, recurrent rules) and by the
baseline miners: the event vocabulary, sequence database, per-event position
indexes, the QRE instance semantics of Definition 4.1, pattern algebra and
mining statistics.
"""

from .errors import (
    ConfigurationError,
    DataFormatError,
    ExecutionFault,
    MonitoringError,
    PatternError,
    ReproError,
    ServingTimeout,
    SessionLost,
    VocabularyError,
)
from .blocks import BlockBuilder, InstanceBlock, PositionBlock, PositionBlockBuilder
from .events import EventId, EventLabel, EventVocabulary
from .instances import (
    PatternInstance,
    find_instances,
    find_instances_in_sequence,
    instance_support,
    instances_correspond,
    sequence_support,
)
from .pattern import (
    alphabet,
    as_pattern,
    concat,
    first,
    format_pattern,
    is_proper_subsequence,
    is_subsequence,
    is_supersequence,
    last,
    prefixes,
    subpatterns,
    suffixes,
)
from .positions import PositionIndex, SequencePositions
from .sequence import Sequence, SequenceDatabase
from .stats import MiningStats, Timer

__all__ = [
    "ConfigurationError",
    "DataFormatError",
    "ExecutionFault",
    "MonitoringError",
    "PatternError",
    "ReproError",
    "ServingTimeout",
    "SessionLost",
    "VocabularyError",
    "BlockBuilder",
    "InstanceBlock",
    "PositionBlock",
    "PositionBlockBuilder",
    "EventId",
    "EventLabel",
    "EventVocabulary",
    "PatternInstance",
    "find_instances",
    "find_instances_in_sequence",
    "instance_support",
    "instances_correspond",
    "sequence_support",
    "alphabet",
    "as_pattern",
    "concat",
    "first",
    "format_pattern",
    "is_proper_subsequence",
    "is_subsequence",
    "is_supersequence",
    "last",
    "prefixes",
    "subpatterns",
    "suffixes",
    "PositionIndex",
    "SequencePositions",
    "Sequence",
    "SequenceDatabase",
    "MiningStats",
    "Timer",
]
