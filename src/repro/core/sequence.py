"""Sequences and sequence databases.

A :class:`Sequence` is an ordered list of event labels (Section 3.1 of the
paper); a :class:`SequenceDatabase` is the ``SeqDB`` the miners operate on.
The database owns an :class:`~repro.core.events.EventVocabulary` and stores
every sequence twice conceptually: as the original labels (for reporting) and
as encoded integer ids (for mining).  Only the encoded form is materialised;
labels are recovered on demand through the vocabulary.

The paper indexes events starting at 1; this implementation uses standard
Python 0-based indexing everywhere and converts only when rendering results
meant to mirror the paper's notation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence as TypingSequence, Tuple

from .errors import DataFormatError
from .events import EventId, EventLabel, EventVocabulary


def absolute_support(relative_or_absolute: float, num_sequences: int) -> int:
    """Convert a support threshold to an absolute count.

    The paper reports thresholds "relative to the number of sequences in
    the database".  Values in ``(0, 1]`` are interpreted as fractions of
    ``num_sequences``; values above 1 are rounded and used as absolute
    counts.  The result is always at least 1.

    This is a module-level function (shared with
    :meth:`SequenceDatabase.absolute_support`) so the parallel engine's
    workers can resolve thresholds from the encoded database alone.
    """
    if relative_or_absolute <= 0:
        raise DataFormatError(
            f"support threshold must be positive, got {relative_or_absolute!r}"
        )
    if relative_or_absolute <= 1:
        return max(1, int(round(relative_or_absolute * num_sequences)))
    return max(1, int(round(relative_or_absolute)))


class Sequence:
    """A single sequence of events with optional identifying metadata.

    Instances are immutable; the event payload is a tuple of labels.
    """

    __slots__ = ("events", "name", "attributes")

    def __init__(
        self,
        events: TypingSequence[EventLabel],
        name: Optional[str] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.events: Tuple[EventLabel, ...] = tuple(events)
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[EventLabel]:
        return iter(self.events)

    def __getitem__(self, index: int) -> EventLabel:
        return self.events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return self.events == other.events and self.name == other.name

    def __hash__(self) -> int:
        return hash((self.events, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f" name={self.name!r}" if self.name else ""
        return f"Sequence(len={len(self.events)}{label})"


class SequenceDatabase:
    """A database of sequences sharing one event vocabulary (``SeqDB``).

    The database can be built incrementally with :meth:`add` or in one call
    with :meth:`from_sequences`.  It exposes both the label view
    (:meth:`sequence`, :meth:`labels`) and the encoded integer view
    (:attr:`encoded`) used by the mining algorithms.
    """

    def __init__(self, vocabulary: Optional[EventVocabulary] = None) -> None:
        self.vocabulary = vocabulary if vocabulary is not None else EventVocabulary()
        self._encoded: List[Tuple[EventId, ...]] = []
        self._names: List[Optional[str]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sequences(
        cls,
        sequences: Iterable[TypingSequence[EventLabel]],
        vocabulary: Optional[EventVocabulary] = None,
    ) -> "SequenceDatabase":
        """Build a database from an iterable of label sequences."""
        database = cls(vocabulary)
        for sequence in sequences:
            database.add(sequence)
        return database

    def add(self, events: TypingSequence[EventLabel], name: Optional[str] = None) -> int:
        """Append a sequence and return its index in the database."""
        if isinstance(events, Sequence):
            name = name if name is not None else events.name
            events = events.events
        encoded = self.vocabulary.encode(events, register=True)
        self._encoded.append(encoded)
        self._names.append(name)
        return len(self._encoded) - 1

    def add_encoded(
        self, events: TypingSequence[EventId], name: Optional[str] = None
    ) -> int:
        """Append an already-encoded sequence and return its index.

        The ids must come from this database's vocabulary (the streaming
        ingest layer interns once and hands encoded traces around); unknown
        ids are rejected so a decode later cannot fail.
        """
        size = len(self.vocabulary)
        encoded = tuple(events)
        for event in encoded:
            if not 0 <= event < size:
                raise DataFormatError(
                    f"encoded sequence uses unknown event id {event} "
                    f"(vocabulary has {size} labels)"
                )
        self._encoded.append(encoded)
        self._names.append(name)
        return len(self._encoded) - 1

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._encoded)

    def __iter__(self) -> Iterator[Tuple[EventLabel, ...]]:
        for encoded in self._encoded:
            yield self.vocabulary.decode(encoded)

    def __getitem__(self, index: int) -> Tuple[EventLabel, ...]:
        return self.vocabulary.decode(self._encoded[index])

    @property
    def encoded(self) -> List[Tuple[EventId, ...]]:
        """The encoded (integer id) view of every sequence."""
        return self._encoded

    def encoded_sequence(self, index: int) -> Tuple[EventId, ...]:
        """The encoded form of the sequence at ``index``."""
        return self._encoded[index]

    def sequence(self, index: int) -> Sequence:
        """The sequence at ``index`` as a :class:`Sequence` of labels."""
        return Sequence(self.vocabulary.decode(self._encoded[index]), name=self._names[index])

    def name(self, index: int) -> Optional[str]:
        """The optional name attached to the sequence at ``index``."""
        return self._names[index]

    def labels(self) -> Tuple[EventLabel, ...]:
        """All distinct event labels, ordered by their internal ids."""
        return self.vocabulary.labels()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def total_events(self) -> int:
        """Total number of events across all sequences."""
        return sum(len(sequence) for sequence in self._encoded)

    def average_length(self) -> float:
        """Average sequence length (0.0 for an empty database)."""
        if not self._encoded:
            return 0.0
        return self.total_events() / len(self._encoded)

    def alphabet_size(self) -> int:
        """Number of distinct events appearing in the database."""
        return len(self.vocabulary)

    def describe(self) -> Dict[str, float]:
        """A small statistics dictionary used in logging and reports."""
        lengths = [len(sequence) for sequence in self._encoded]
        return {
            "sequences": float(len(self._encoded)),
            "events": float(sum(lengths)),
            "distinct_events": float(self.alphabet_size()),
            "avg_length": (sum(lengths) / len(lengths)) if lengths else 0.0,
            "max_length": float(max(lengths)) if lengths else 0.0,
            "min_length": float(min(lengths)) if lengths else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Threshold helpers
    # ------------------------------------------------------------------ #
    def absolute_support(self, relative_or_absolute: float) -> int:
        """Convert a support threshold to an absolute count.

        See the module-level :func:`absolute_support` for the convention;
        relative values are resolved against the number of sequences.
        """
        return absolute_support(relative_or_absolute, len(self._encoded))
