"""Per-sequence, per-event sorted position indexes.

The incremental miners repeatedly ask two questions about a sequence:

* "where is the first occurrence of event ``e`` strictly after position
  ``p``?" (forward extension), and
* "does event ``e`` occur anywhere inside the open interval ``(lo, hi)``?"
  (gap checks for the QRE instance semantics).

Both are answered in ``O(log L)`` by keeping, for every event id, the sorted
list of its positions in the sequence.  :class:`PositionIndex` builds and
caches those lists for a whole encoded database.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence as TypingSequence, Tuple

from .events import EventId


class SequencePositions:
    """Sorted occurrence positions for every event of a single sequence."""

    __slots__ = ("length", "_positions")

    def __init__(self, encoded: TypingSequence[EventId]) -> None:
        self.length = len(encoded)
        positions: Dict[EventId, List[int]] = {}
        for index, event in enumerate(encoded):
            positions.setdefault(event, []).append(index)
        self._positions = positions

    def positions_of(self, event: EventId) -> List[int]:
        """All positions of ``event`` (possibly empty), sorted ascending."""
        return self._positions.get(event, [])

    def table(self) -> Dict[EventId, List[int]]:
        """The raw ``event -> sorted positions`` mapping (read-only view).

        Exposed for the columnar hot loops, which inline their binary
        searches over the per-event lists; callers must not mutate it.
        """
        return self._positions

    def count(self, event: EventId) -> int:
        """Number of occurrences of ``event`` in the sequence."""
        return len(self._positions.get(event, ()))

    def distinct_events(self) -> Tuple[EventId, ...]:
        """The distinct events occurring in the sequence."""
        return tuple(self._positions)

    def first_at_or_after(self, event: EventId, position: int) -> Optional[int]:
        """First occurrence of ``event`` at a position ``>= position``."""
        occurrences = self._positions.get(event)
        if not occurrences:
            return None
        index = bisect_left(occurrences, position)
        if index == len(occurrences):
            return None
        return occurrences[index]

    def first_after(self, event: EventId, position: int) -> Optional[int]:
        """First occurrence of ``event`` strictly after ``position``."""
        return self.first_at_or_after(event, position + 1)

    def last_before(self, event: EventId, position: int) -> Optional[int]:
        """Last occurrence of ``event`` strictly before ``position``."""
        occurrences = self._positions.get(event)
        if not occurrences:
            return None
        index = bisect_left(occurrences, position)
        if index == 0:
            return None
        return occurrences[index - 1]

    def occurs_between(self, event: EventId, lo: int, hi: int) -> bool:
        """Whether ``event`` occurs at any position in the open interval ``(lo, hi)``."""
        if hi - lo <= 1:
            return False
        occurrences = self._positions.get(event)
        if not occurrences:
            return False
        index = bisect_right(occurrences, lo)
        return index < len(occurrences) and occurrences[index] < hi

    def count_between(self, event: EventId, lo: int, hi: int) -> int:
        """Number of occurrences of ``event`` in the open interval ``(lo, hi)``."""
        occurrences = self._positions.get(event)
        if not occurrences:
            return 0
        return bisect_left(occurrences, hi) - bisect_right(occurrences, lo)


class PositionIndex:
    """Position indexes for every sequence of an encoded database."""

    def __init__(self, encoded_sequences: TypingSequence[TypingSequence[EventId]]) -> None:
        self._per_sequence: List[SequencePositions] = [
            SequencePositions(sequence) for sequence in encoded_sequences
        ]

    def __len__(self) -> int:
        return len(self._per_sequence)

    def __getitem__(self, sequence_index: int) -> SequencePositions:
        return self._per_sequence[sequence_index]

    def extend(
        self, encoded_sequences: TypingSequence[TypingSequence[EventId]]
    ) -> None:
        """Index newly appended sequences without touching existing entries.

        Per-sequence indexes are independent, so an append-only database
        extension costs O(new events) — this is what lets incremental
        mining keep one live index across store appends instead of
        rebuilding it from the whole corpus.
        """
        self._per_sequence.extend(
            SequencePositions(sequence) for sequence in encoded_sequences
        )

    def sequence_support(self, event: EventId) -> int:
        """Number of sequences in which ``event`` occurs at least once."""
        return sum(1 for positions in self._per_sequence if positions.count(event) > 0)

    def instance_support(self, event: EventId) -> int:
        """Total number of occurrences of ``event`` across all sequences."""
        return sum(positions.count(event) for positions in self._per_sequence)

    def distinct_events(self) -> Tuple[EventId, ...]:
        """All distinct events occurring anywhere in the database."""
        seen = set()
        for positions in self._per_sequence:
            seen.update(positions.distinct_events())
        return tuple(sorted(seen))
