"""Incremental (projected-database) computation of iterative-pattern instances.

The miners in :mod:`repro.patterns` never rescan whole sequences when growing
a pattern.  Instead they maintain, for the current pattern ``P``, its full
instance list and derive the instance lists of every single-event extension
from it — the iterative-pattern analogue of PrefixSpan's projected database
(Section 4 of the paper).

Correctness of the incremental step (checked against the oracle in
:mod:`repro.core.instances` by the property tests):

``(sid, s, t')`` is an instance of ``P ++ <e>`` **iff** there is an instance
``(sid, s, t)`` of ``P`` such that

1. ``e`` does not occur in the gaps of ``(sid, s, t)`` (this is only possible
   when ``e`` is outside ``P``'s alphabet — gap events are by definition
   outside the alphabet), and
2. the first event of ``alphabet(P) ∪ {e}`` occurring after ``t`` is ``e``,
   at position ``t'``.

The symmetric statement holds for backward extensions ``<e> ++ P`` scanning
to the left of the instance start.  Both directions rely on the fact that an
instance is uniquely determined by its start (respectively end) position.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence as TypingSequence, Set, Tuple

from .events import EncodedDatabase, EventId
from .instances import PatternInstance
from .positions import PositionIndex, SequencePositions


def singleton_instances(encoded_db: EncodedDatabase) -> Dict[EventId, List[PatternInstance]]:
    """Instances of every single-event pattern ``<e>`` in one database pass."""
    instances: Dict[EventId, List[PatternInstance]] = {}
    for sequence_index, sequence in enumerate(encoded_db):
        for position, event in enumerate(sequence):
            instances.setdefault(event, []).append(
                PatternInstance(sequence_index, position, position)
            )
    return instances


def _first_alphabet_event_after(
    positions: SequencePositions, alphabet: FrozenSet[EventId], position: int
) -> Optional[int]:
    """Position of the first occurrence of any alphabet event strictly after ``position``."""
    best: Optional[int] = None
    for event in alphabet:
        candidate = positions.first_after(event, position)
        if candidate is not None and (best is None or candidate < best):
            best = candidate
    return best


def _last_alphabet_event_before(
    positions: SequencePositions, alphabet: FrozenSet[EventId], position: int
) -> Optional[int]:
    """Position of the last occurrence of any alphabet event strictly before ``position``."""
    best: Optional[int] = None
    for event in alphabet:
        candidate = positions.last_before(event, position)
        if candidate is not None and (best is None or candidate > best):
            best = candidate
    return best


def forward_extensions(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
) -> Dict[EventId, List[PatternInstance]]:
    """Instances of every frequent-or-not single-event forward extension of ``pattern``.

    Returns a mapping ``e -> instances of pattern ++ <e>``.  Only events that
    yield at least one instance appear as keys.
    """
    alphabet = frozenset(pattern)
    extensions: Dict[EventId, List[PatternInstance]] = {}
    for instance in instances:
        sequence = encoded_db[instance.sequence_index]
        positions = index[instance.sequence_index]
        boundary = _first_alphabet_event_after(positions, alphabet, instance.end)
        window_end = boundary if boundary is not None else len(sequence)
        seen_outside: Set[EventId] = set()
        # Events outside the pattern alphabet occurring before the next
        # alphabet event: their first occurrence ends the extended instance.
        for position in range(instance.end + 1, window_end):
            event = sequence[position]
            if event in seen_outside:
                continue
            seen_outside.add(event)
            if positions.occurs_between(event, instance.start, instance.end):
                # ``event`` appears in a gap of the current instance, so the
                # extended pattern's QRE (which excludes ``event`` from every
                # gap) is violated for this instance.
                continue
            extensions.setdefault(event, []).append(
                PatternInstance(instance.sequence_index, instance.start, position)
            )
        if boundary is not None:
            # The next alphabet event itself is a valid extension target: the
            # extended pattern then repeats an event it already contains.
            event = sequence[boundary]
            extensions.setdefault(event, []).append(
                PatternInstance(instance.sequence_index, instance.start, boundary)
            )
    return extensions


def backward_extension_instance(
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instance: PatternInstance,
    event: EventId,
) -> Optional[PatternInstance]:
    """The instance of ``<event> ++ pattern`` extending ``instance`` backwards, if any."""
    alphabet = frozenset(pattern)
    positions = index[instance.sequence_index]
    if event not in alphabet and positions.occurs_between(event, instance.start, instance.end):
        return None
    previous_alphabet = _last_alphabet_event_before(positions, alphabet, instance.start)
    previous_event = positions.last_before(event, instance.start)
    if previous_event is None:
        return None
    if previous_alphabet is not None and previous_alphabet > previous_event:
        return None
    if previous_alphabet is not None and previous_alphabet == previous_event:
        # Same position can only happen when ``event`` is in the alphabet.
        pass
    return PatternInstance(instance.sequence_index, previous_event, instance.end)


def backward_extension_events(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
) -> Set[EventId]:
    """Events ``e`` such that *every* instance of ``pattern`` extends to ``<e> ++ pattern``.

    Used by the closure check: any such event proves the pattern non-closed
    (Definition 4.2), because the instance counts match and each instance of
    the pattern nests inside the corresponding backward-extended instance.
    """
    if not instances:
        return set()
    candidates: Optional[Set[EventId]] = None
    alphabet = frozenset(pattern)
    for instance in instances:
        sequence = encoded_db[instance.sequence_index]
        positions = index[instance.sequence_index]
        previous_alphabet = _last_alphabet_event_before(positions, alphabet, instance.start)
        window_start = previous_alphabet + 1 if previous_alphabet is not None else 0
        local: Set[EventId] = set()
        for position in range(window_start, instance.start):
            event = sequence[position]
            if event in alphabet:
                continue
            if positions.occurs_between(event, instance.start, instance.end):
                continue
            local.add(event)
        if previous_alphabet is not None:
            event = sequence[previous_alphabet]
            # A pattern-alphabet event immediately "reachable" to the left is
            # also a valid backward extension (the pattern repeats it).
            local.add(event)
        candidates = local if candidates is None else (candidates & local)
        if not candidates:
            return set()
    return candidates or set()
