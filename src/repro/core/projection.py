"""Incremental (projected-database) computation of iterative-pattern instances.

The miners in :mod:`repro.patterns` never rescan whole sequences when growing
a pattern.  Instead they maintain, for the current pattern ``P``, its full
instance list and derive the instance lists of every single-event extension
from it — the iterative-pattern analogue of PrefixSpan's projected database
(Section 4 of the paper).

Correctness of the incremental step (checked against the oracle in
:mod:`repro.core.instances` by the property tests):

``(sid, s, t')`` is an instance of ``P ++ <e>`` **iff** there is an instance
``(sid, s, t)`` of ``P`` such that

1. ``e`` does not occur in the gaps of ``(sid, s, t)`` (this is only possible
   when ``e`` is outside ``P``'s alphabet — gap events are by definition
   outside the alphabet), and
2. the first event of ``alphabet(P) ∪ {e}`` occurring after ``t`` is ``e``,
   at position ``t'``.

The symmetric statement holds for backward extensions ``<e> ++ P`` scanning
to the left of the instance start.  Both directions rely on the fact that an
instance is uniquely determined by its start (respectively end) position.

Two implementations live side by side:

* the **reference path** over ``List[PatternInstance]``
  (:func:`singleton_instances`, :func:`forward_extensions`,
  :func:`backward_extension_events`) — a direct, readable translation kept
  as the comparison baseline for the correctness tests and the hot-path
  benchmark;
* the **block path** over :class:`~repro.core.blocks.InstanceBlock`
  (:func:`singleton_blocks`, :func:`forward_extensions_block`,
  :func:`backward_extension_events_block`) — the columnar implementation
  the miners actually run.  It iterates flat int columns, hoists the
  per-sequence lookups out of the per-instance loop, and answers every
  "first/last alphabet event around t" query with one binary search in a
  per-node merged occurrence list (:class:`AlphabetIndex`) instead of one
  ``bisect`` per alphabet event per instance.

Both paths produce instances in the identical canonical order, so the block
path is bit-compatible with the reference (and with the pre-columnar
releases); the property tests assert exactly that.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, List, Optional, Sequence as TypingSequence, Set, Tuple

from .blocks import BLOCK_TYPECODE, BlockBuilder, InstanceBlock
from .events import EncodedDatabase, EventId
from .instances import PatternInstance
from .positions import PositionIndex, SequencePositions


def singleton_instances(encoded_db: EncodedDatabase) -> Dict[EventId, List[PatternInstance]]:
    """Instances of every single-event pattern ``<e>`` in one database pass."""
    instances: Dict[EventId, List[PatternInstance]] = {}
    for sequence_index, sequence in enumerate(encoded_db):
        for position, event in enumerate(sequence):
            instances.setdefault(event, []).append(
                PatternInstance(sequence_index, position, position)
            )
    return instances


def _first_alphabet_event_after(
    positions: SequencePositions, alphabet: FrozenSet[EventId], position: int
) -> Optional[int]:
    """Position of the first occurrence of any alphabet event strictly after ``position``."""
    best: Optional[int] = None
    for event in alphabet:
        candidate = positions.first_after(event, position)
        if candidate is not None and (best is None or candidate < best):
            best = candidate
    return best


def _last_alphabet_event_before(
    positions: SequencePositions, alphabet: FrozenSet[EventId], position: int
) -> Optional[int]:
    """Position of the last occurrence of any alphabet event strictly before ``position``."""
    best: Optional[int] = None
    for event in alphabet:
        candidate = positions.last_before(event, position)
        if candidate is not None and (best is None or candidate > best):
            best = candidate
    return best


def forward_extensions(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
) -> Dict[EventId, List[PatternInstance]]:
    """Instances of every frequent-or-not single-event forward extension of ``pattern``.

    Returns a mapping ``e -> instances of pattern ++ <e>``.  Only events that
    yield at least one instance appear as keys.

    Reference implementation over instance tuples; the miners run
    :func:`forward_extensions_block`, which must (and is property-tested to)
    agree with this one row for row.
    """
    alphabet = frozenset(pattern)
    extensions: Dict[EventId, List[PatternInstance]] = {}
    for instance in instances:
        sequence = encoded_db[instance.sequence_index]
        positions = index[instance.sequence_index]
        boundary = _first_alphabet_event_after(positions, alphabet, instance.end)
        window_end = boundary if boundary is not None else len(sequence)
        seen_outside: Set[EventId] = set()
        # Events outside the pattern alphabet occurring before the next
        # alphabet event: their first occurrence ends the extended instance.
        for position in range(instance.end + 1, window_end):
            event = sequence[position]
            if event in seen_outside:
                continue
            seen_outside.add(event)
            if positions.occurs_between(event, instance.start, instance.end):
                # ``event`` appears in a gap of the current instance, so the
                # extended pattern's QRE (which excludes ``event`` from every
                # gap) is violated for this instance.
                continue
            extensions.setdefault(event, []).append(
                PatternInstance(instance.sequence_index, instance.start, position)
            )
        if boundary is not None:
            # The next alphabet event itself is a valid extension target: the
            # extended pattern then repeats an event it already contains.
            event = sequence[boundary]
            extensions.setdefault(event, []).append(
                PatternInstance(instance.sequence_index, instance.start, boundary)
            )
    return extensions


def backward_extension_instance(
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instance: PatternInstance,
    event: EventId,
) -> Optional[PatternInstance]:
    """The instance of ``<event> ++ pattern`` extending ``instance`` backwards, if any.

    When ``event`` belongs to the pattern's alphabet, its last occurrence
    before the instance start may coincide with the last alphabet occurrence;
    that position is a valid backward extension (the extended pattern repeats
    an event it already contains), so only a *strictly later* alphabet
    occurrence blocks the extension.
    """
    alphabet = frozenset(pattern)
    positions = index[instance.sequence_index]
    if event not in alphabet and positions.occurs_between(event, instance.start, instance.end):
        return None
    previous_alphabet = _last_alphabet_event_before(positions, alphabet, instance.start)
    previous_event = positions.last_before(event, instance.start)
    if previous_event is None:
        return None
    if previous_alphabet is not None and previous_alphabet > previous_event:
        return None
    return PatternInstance(instance.sequence_index, previous_event, instance.end)


def backward_extension_events(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
) -> Set[EventId]:
    """Events ``e`` such that *every* instance of ``pattern`` extends to ``<e> ++ pattern``.

    Used by the closure check: any such event proves the pattern non-closed
    (Definition 4.2), because the instance counts match and each instance of
    the pattern nests inside the corresponding backward-extended instance.

    Reference implementation; the miners run
    :func:`backward_extension_events_block`.
    """
    if not instances:
        return set()
    candidates: Optional[Set[EventId]] = None
    alphabet = frozenset(pattern)
    for instance in instances:
        sequence = encoded_db[instance.sequence_index]
        positions = index[instance.sequence_index]
        previous_alphabet = _last_alphabet_event_before(positions, alphabet, instance.start)
        window_start = previous_alphabet + 1 if previous_alphabet is not None else 0
        local: Set[EventId] = set()
        for position in range(window_start, instance.start):
            event = sequence[position]
            if event in alphabet:
                continue
            if positions.occurs_between(event, instance.start, instance.end):
                continue
            local.add(event)
        if previous_alphabet is not None:
            event = sequence[previous_alphabet]
            # A pattern-alphabet event immediately "reachable" to the left is
            # also a valid backward extension (the pattern repeats it).
            local.add(event)
        candidates = local if candidates is None else (candidates & local)
        if not candidates:
            return set()
    return candidates or set()


# --------------------------------------------------------------------- #
# Columnar (block) path — what the miners actually run.
# --------------------------------------------------------------------- #
class AlphabetIndex:
    """Per-search-node shared boundary cache.

    Every instance at a search node shares one pattern alphabet, so the
    "first alphabet event after t" / "last alphabet event before t" queries
    differ only in ``t``.  This cache merges the per-event sorted occurrence
    lists of the alphabet into one sorted list per sequence — built lazily,
    once per (node, sequence) — and answers each query with a single binary
    search instead of one ``bisect`` per alphabet event per instance.

    It also owns the node's ``frozenset(pattern)`` so the projection,
    backward-extension and closure helpers stop rebuilding it per call.

    Child nodes are derived with :meth:`extend`, which exploits that a
    forward extension changes the alphabet by at most one event: extending
    with an event already in the alphabet *shares* the parent's merged
    lists outright (the overwhelmingly common case when patterns repeat
    their events), and a genuinely new event merges its occurrence list
    into the parent's — an O(n) two-run merge instead of a from-scratch
    rebuild over every alphabet event.
    """

    __slots__ = ("pattern", "alphabet", "_index", "_merged", "_parent", "_new_event")

    def __init__(self, index: PositionIndex, pattern: Tuple[EventId, ...]) -> None:
        self.pattern = pattern
        self.alphabet = frozenset(pattern)
        self._index = index
        self._merged: Dict[int, List[int]] = {}
        self._parent: Optional["AlphabetIndex"] = None
        self._new_event: Optional[EventId] = None

    def extend(self, event: EventId) -> "AlphabetIndex":
        """The cache for the child node ``pattern ++ <event>``."""
        child = AlphabetIndex.__new__(AlphabetIndex)
        child.pattern = self.pattern + (event,)
        child._index = self._index
        if event in self.alphabet:
            # Same alphabet: the merged lists are identical, share the cache
            # (both nodes may keep filling it — the values agree) along with
            # this node's own derivation for misses.
            child.alphabet = self.alphabet
            child._merged = self._merged
            child._parent = self._parent
            child._new_event = self._new_event
        else:
            child.alphabet = self.alphabet | {event}
            child._merged = {}
            child._parent = self
            child._new_event = event
        return child

    def merged(self, sequence_index: int) -> List[int]:
        """Sorted positions of every alphabet event in one sequence."""
        merged = self._merged.get(sequence_index)
        if merged is None:
            positions = self._index[sequence_index]
            parent = self._parent
            if parent is not None:
                base = parent.merged(sequence_index)
                extra = positions.positions_of(self._new_event)
                if not extra:
                    merged = base
                else:
                    # Two sorted runs: timsort merges them in linear time.
                    merged = base + extra
                    merged.sort()
            else:
                events = iter(self.alphabet)
                merged = list(positions.positions_of(next(events)))
                for event in events:
                    merged.extend(positions.positions_of(event))
                merged.sort()
            self._merged[sequence_index] = merged
        return merged

    def first_after(self, sequence_index: int, position: int) -> Optional[int]:
        """First alphabet occurrence strictly after ``position``."""
        merged = self.merged(sequence_index)
        cursor = bisect_right(merged, position)
        if cursor == len(merged):
            return None
        return merged[cursor]

    def last_before(self, sequence_index: int, position: int) -> Optional[int]:
        """Last alphabet occurrence strictly before ``position``."""
        merged = self.merged(sequence_index)
        cursor = bisect_left(merged, position)
        if cursor == 0:
            return None
        return merged[cursor - 1]


def singleton_blocks(encoded_db: EncodedDatabase) -> Dict[EventId, InstanceBlock]:
    """Instance blocks of every single-event pattern ``<e>`` in one pass."""
    builders: Dict[EventId, BlockBuilder] = {}
    for sequence_index, sequence in enumerate(encoded_db):
        for position, event in enumerate(sequence):
            builder = builders.get(event)
            if builder is None:
                builder = builders[event] = BlockBuilder()
            builder.append(sequence_index, position, position)
    return {event: builder.build() for event, builder in builders.items()}


def forward_extensions_block(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    node: AlphabetIndex,
    block: InstanceBlock,
) -> Dict[EventId, InstanceBlock]:
    """Columnar :func:`forward_extensions`: ``e -> block of pattern ++ <e>``.

    Iterates the block sequence group by sequence group, hoisting the
    ``encoded_db[sid]`` / ``index[sid]`` / merged-alphabet lookups out of
    the per-instance loop, and emits extension rows into
    :class:`~repro.core.blocks.BlockBuilder` columns — no per-instance
    object allocation anywhere on the path.
    """
    # Per-event open builder state, laid out flat for the inner loop:
    # [starts.append, ends.append, seq_ids.append, offsets.append,
    #  last_sid, starts, ends, seq_ids, offsets]
    # Appending a row is two bound-method calls (plus a group registration
    # when the sequence changes) with no per-row Python function frames.
    entries: Dict[EventId, list] = {}
    alphabet = node.alphabet
    starts = block.starts
    ends = block.ends
    seq_ids = block.seq_ids
    offsets = block.offsets
    for group in range(len(seq_ids)):
        sid = seq_ids[group]
        sequence = encoded_db[sid]
        table = index[sid].table()
        merged = node.merged(sid)
        merged_len = len(merged)
        sequence_len = len(sequence)
        lo = offsets[group]
        hi = offsets[group + 1]
        for start, end in zip(starts[lo:hi], ends[lo:hi]):
            after = end + 1
            if after < sequence_len and sequence[after] in alphabet:
                # Fast path: the adjacent event already bounds the window —
                # no boundary search, no gap window to scan.
                boundary = after
                window_end = after
            else:
                cursor = bisect_right(merged, end)
                if cursor < merged_len:
                    boundary = merged[cursor]
                    window_end = boundary
                else:
                    boundary = -1
                    window_end = sequence_len
            if window_end > after:
                has_gap = end - start > 1
                seen_outside = set()
                for position in range(end + 1, window_end):
                    event = sequence[position]
                    if event in seen_outside:
                        continue
                    seen_outside.add(event)
                    if has_gap:
                        # Gap check: ``event`` must not occur strictly
                        # inside (start, end) — inlined occurs_between on
                        # the sorted per-event position list.
                        occurrences = table[event]
                        gap_cursor = bisect_right(occurrences, start)
                        if gap_cursor < len(occurrences) and occurrences[gap_cursor] < end:
                            continue
                    entry = entries.get(event)
                    if entry is None:
                        entry = entries[event] = _new_entry()
                    if entry[4] != sid:
                        entry[2](sid)
                        entry[3](len(entry[5]))
                        entry[4] = sid
                    entry[0](start)
                    entry[1](position)
            if boundary >= 0:
                # The next alphabet event itself is a valid extension target:
                # the extended pattern then repeats an event it already has.
                event = sequence[boundary]
                entry = entries.get(event)
                if entry is None:
                    entry = entries[event] = _new_entry()
                if entry[4] != sid:
                    entry[2](sid)
                    entry[3](len(entry[5]))
                    entry[4] = sid
                entry[0](start)
                entry[1](boundary)
    extensions: Dict[EventId, InstanceBlock] = {}
    for event, entry in entries.items():
        entry[8].append(len(entry[5]))
        extensions[event] = InstanceBlock(entry[7], entry[8], entry[5], entry[6])
    return extensions


def _new_entry() -> list:
    """Fresh flat builder state for one extension event (see above layout)."""
    starts = array(BLOCK_TYPECODE)
    ends = array(BLOCK_TYPECODE)
    seq_ids = array(BLOCK_TYPECODE)
    offsets = array(BLOCK_TYPECODE)
    return [starts.append, ends.append, seq_ids.append, offsets.append, -1,
            starts, ends, seq_ids, offsets]


def singleton_block_of(index: PositionIndex, event: EventId) -> InstanceBlock:
    """The instance block of the single-event pattern ``<event>``.

    Unlike :func:`singleton_blocks` this builds one event's block straight
    from the position index instead of scanning the database, so callers
    that need a single root (work-unit replay, the infix oracle) pay only
    for the rows they use.
    """
    seq_ids = array(BLOCK_TYPECODE)
    offsets = array(BLOCK_TYPECODE)
    starts = array(BLOCK_TYPECODE)
    for sequence_index in range(len(index)):
        occurrences = index[sequence_index].positions_of(event)
        if not occurrences:
            continue
        seq_ids.append(sequence_index)
        offsets.append(len(starts))
        starts.extend(occurrences)
    offsets.append(len(starts))
    return InstanceBlock(seq_ids, offsets, starts, array(BLOCK_TYPECODE, starts))


def project_extension_block(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    node: AlphabetIndex,
    block: InstanceBlock,
    event: EventId,
) -> InstanceBlock:
    """Instances of ``node.pattern ++ <event>`` derived from ``block`` alone.

    The single-event restriction of :func:`forward_extensions_block` —
    row-identical to ``forward_extensions_block(...)[event]`` (and to the
    empty block when the event yields no extension) but without touching
    any other extension event: each instance costs a couple of binary
    searches instead of a window scan.  Used by the work-stealing replay
    path, where only one extension event is ever of interest;
    :func:`project_rows_in_sequence` applies the identical per-row rule
    sequence-locally for the infix-closure oracle — keep the two in
    lockstep.
    """
    out_seq_ids = array(BLOCK_TYPECODE)
    out_offsets = array(BLOCK_TYPECODE)
    out_starts = array(BLOCK_TYPECODE)
    out_ends = array(BLOCK_TYPECODE)
    in_alphabet = event in node.alphabet
    starts = block.starts
    ends = block.ends
    seq_ids = block.seq_ids
    offsets = block.offsets
    for group in range(len(seq_ids)):
        sid = seq_ids[group]
        sequence = encoded_db[sid]
        sequence_len = len(sequence)
        merged = node.merged(sid)
        merged_len = len(merged)
        occurrences = index[sid].positions_of(event)
        if not in_alphabet and not occurrences:
            continue
        group_open = False
        lo = offsets[group]
        hi = offsets[group + 1]
        for start, end in zip(starts[lo:hi], ends[lo:hi]):
            if in_alphabet:
                # The extension repeats an alphabet event: the only valid
                # target is the first alphabet occurrence after the end.
                after = end + 1
                if after < sequence_len and sequence[after] in node.alphabet:
                    boundary = after
                else:
                    cursor = bisect_right(merged, end)
                    if cursor == merged_len:
                        continue
                    boundary = merged[cursor]
                if sequence[boundary] != event:
                    continue
                target = boundary
            else:
                cut = bisect_right(occurrences, end)
                if cut == len(occurrences):
                    continue
                target = occurrences[cut]
                # No alphabet event may sit between the end and the target.
                cursor = bisect_right(merged, end)
                if cursor < merged_len and merged[cursor] < target:
                    continue
                # Gap check: the event must not occur inside (start, end).
                if end - start > 1:
                    gap_cursor = bisect_right(occurrences, start)
                    if gap_cursor < len(occurrences) and occurrences[gap_cursor] < end:
                        continue
            if not group_open:
                out_seq_ids.append(sid)
                out_offsets.append(len(out_starts))
                group_open = True
            out_starts.append(start)
            out_ends.append(target)
    out_offsets.append(len(out_starts))
    return InstanceBlock(out_seq_ids, out_offsets, out_starts, out_ends)


def project_rows_in_sequence(
    sequence: TypingSequence[EventId],
    table: Dict[EventId, List[int]],
    nodes: List[AlphabetIndex],
    pattern: Tuple[EventId, ...],
    sequence_index: int,
    first_rows: List[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Exact instance spans of ``pattern`` in one sequence, chained.

    The per-sequence, multi-step sibling of :func:`project_extension_block`
    — each step applies the identical per-row extension rule (in-alphabet
    boundary fast path, merged-list boundary bisect, no-alphabet-between
    check, gap pre-filter); keep the two in lockstep.  ``nodes[k]`` is the
    :class:`AlphabetIndex` of ``pattern[:k + 1]``; ``first_rows`` seeds
    the chain (the spans of some prefix of ``pattern``, usually its first
    event's occurrences).  The closed miner's infix-closure oracle drives
    this sequence by sequence so a failing candidate aborts at its first
    mismatching sequence; a property test pins it against
    :func:`project_extension_block` step for step.
    """
    rows = first_rows
    sequence_len = len(sequence)
    for k in range(len(nodes) - 1):
        if not rows:
            break
        node = nodes[k]
        event = pattern[k + 1]
        merged = node.merged(sequence_index)
        merged_len = len(merged)
        alphabet = node.alphabet
        in_alphabet = event in alphabet
        occurrences = table.get(event, [])
        if not in_alphabet and not occurrences:
            return []
        new_rows: List[Tuple[int, int]] = []
        for start, end in rows:
            if in_alphabet:
                after = end + 1
                if after < sequence_len and sequence[after] in alphabet:
                    boundary = after
                else:
                    cursor = bisect_right(merged, end)
                    if cursor == merged_len:
                        continue
                    boundary = merged[cursor]
                if sequence[boundary] != event:
                    continue
                target = boundary
            else:
                cut = bisect_right(occurrences, end)
                if cut == len(occurrences):
                    continue
                target = occurrences[cut]
                cursor = bisect_right(merged, end)
                if cursor < merged_len and merged[cursor] < target:
                    continue
                if end - start > 1:
                    gap_cursor = bisect_right(occurrences, start)
                    if gap_cursor < len(occurrences) and occurrences[gap_cursor] < end:
                        continue
            new_rows.append((start, target))
        rows = new_rows
    return rows


def backward_extension_events_block(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    node: AlphabetIndex,
    block: InstanceBlock,
) -> Set[EventId]:
    """Columnar :func:`backward_extension_events` over an instance block.

    The window ``(previous alphabet occurrence, start)`` contains no
    alphabet events by construction, so unlike the reference loop no
    per-position alphabet membership test is needed.
    """
    if not block:
        return set()
    candidates: Optional[Set[EventId]] = None
    starts = block.starts
    ends = block.ends
    seq_ids = block.seq_ids
    offsets = block.offsets
    for group in range(len(seq_ids)):
        sid = seq_ids[group]
        sequence = encoded_db[sid]
        table = index[sid].table()
        merged = node.merged(sid)
        lo = offsets[group]
        hi = offsets[group + 1]
        for start, end in zip(starts[lo:hi], ends[lo:hi]):
            cursor = bisect_left(merged, start) - 1
            previous_alphabet = merged[cursor] if cursor >= 0 else -1
            has_gap = end - start > 1
            local: Set[EventId] = set()
            for position in range(previous_alphabet + 1, start):
                event = sequence[position]
                if event in local:
                    continue
                if has_gap:
                    occurrences = table[event]
                    gap_cursor = bisect_right(occurrences, start)
                    if gap_cursor < len(occurrences) and occurrences[gap_cursor] < end:
                        continue
                local.add(event)
            if previous_alphabet >= 0:
                # A pattern-alphabet event immediately "reachable" to the
                # left is also a valid backward extension (the pattern
                # repeats it).
                local.add(sequence[previous_alphabet])
            candidates = local if candidates is None else (candidates & local)
            if not candidates:
                return set()
    return candidates or set()
