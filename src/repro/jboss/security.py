"""Behavioural simulation of the JBoss security component (Figure 5).

The security case study of the paper instruments the JAAS-based
authentication path of JBoss-AS.  This module models the classes appearing
in Figure 5 (with the figure's abbreviated names): configuration lookup
(``XmlLoginCI``, ``AuthenInfo``), the client login module
(``ClientLoginMod``), the security-association plumbing that binds the
authenticated principal to the subject (``SecAssocActs``,
``SetPrincipalInfoAction``, ``SubjectThreadLocalStack``,
``SimplePrincipal``) and the credential accessors used afterwards
(``SecAssoc``).

A successful :meth:`JaasSecurityService.authenticate` records exactly the
premise followed by the consequent of Figure 5; failed logins and
"configuration unavailable" scenarios record the corresponding shorter
sequences, which is what gives the mined rule a confidence below 100% and
keeps its statistics distinct from coarser rules (see the workload module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..traces.trace import TraceCollector


class _RecordingComponent:
    """Base class: records ``ClassName.method`` on entry of every public method."""

    component_name: str = ""

    def __init__(self, collector: TraceCollector) -> None:
        self._collector = collector

    def _record(self, method_name: str) -> None:
        self._collector.record_call(self.component_name or type(self).__name__, method_name)


class XmlLoginConfig(_RecordingComponent):
    """The XML login configuration (``XmlLoginCI`` in the figure)."""

    component_name = "XmlLoginCI"

    def __init__(self, collector: TraceCollector, entries: Optional[List[str]] = None) -> None:
        super().__init__(collector)
        self._entries = list(entries if entries is not None else ["client-login"])

    def getConfEntry(self, name: str = "client-login") -> Optional["AuthenticationInfo"]:
        self._record("getConfEntry")
        if name not in self._entries:
            return None
        return AuthenticationInfo(self._collector, name)


class AuthenticationInfo(_RecordingComponent):
    """Authentication configuration entry (``AuthenInfo`` in the figure)."""

    component_name = "AuthenInfo"

    def __init__(self, collector: TraceCollector, name: str) -> None:
        super().__init__(collector)
        self._name = name

    def getName(self) -> str:
        self._record("getName")
        return self._name


class SimplePrincipal(_RecordingComponent):
    """The authenticated principal."""

    component_name = "SimplePrincipal"

    def __init__(self, collector: TraceCollector, name: str) -> None:
        super().__init__(collector)
        self.name = name

    def toString(self) -> str:
        self._record("toString")
        return self.name


class SubjectThreadLocalStack(_RecordingComponent):
    """Thread-local stack of authenticated subject contexts."""

    component_name = "SubjectThreadLocalStack"

    def __init__(self, collector: TraceCollector) -> None:
        super().__init__(collector)
        self._stack: List[str] = []

    def push(self, subject: str) -> None:
        self._record("push")
        self._stack.append(subject)

    def pop(self) -> Optional[str]:
        self._record("pop")
        return self._stack.pop() if self._stack else None

    def depth(self) -> int:
        return len(self._stack)


class SetPrincipalInfoAction(_RecordingComponent):
    """Privileged action actually installing the principal information."""

    component_name = "SetPrincipalInfoAction"

    def run(self) -> None:
        self._record("run")


class SecurityAssociationActions(_RecordingComponent):
    """``SecAssocActs``: binds principal / subject information to the thread."""

    component_name = "SecAssocActs"

    def __init__(self, collector: TraceCollector, stack: SubjectThreadLocalStack) -> None:
        super().__init__(collector)
        self._stack = stack
        self._action = SetPrincipalInfoAction(collector)

    def setPrincipalInfo(self, principal: SimplePrincipal, credential: str) -> None:
        self._record("setPrincipalInfo")
        self._action.run()

    def pushSubjectCtxt(self, subject: str) -> None:
        self._record("pushSubjectCtxt")
        self._stack.push(subject)


class SecurityAssociation(_RecordingComponent):
    """``SecAssoc``: the accessors other components use after authentication."""

    component_name = "SecAssoc"

    def __init__(self, collector: TraceCollector) -> None:
        super().__init__(collector)
        self._principal: Optional[SimplePrincipal] = None
        self._credential: Optional[str] = None

    def bind(self, principal: SimplePrincipal, credential: str) -> None:
        self._principal = principal
        self._credential = credential

    def getPrincipal(self) -> Optional[SimplePrincipal]:
        self._record("getPrincipal")
        return self._principal

    def getCredential(self) -> Optional[str]:
        self._record("getCredential")
        return self._credential


class ClientLoginModule(_RecordingComponent):
    """``ClientLoginMod``: the JAAS login module used by EJB clients."""

    component_name = "ClientLoginMod"

    def __init__(self, collector: TraceCollector, association: SecurityAssociation) -> None:
        super().__init__(collector)
        self._association = association
        self._pending: Optional[SimplePrincipal] = None
        self._credential: Optional[str] = None

    def initialize(self, username: str, credential: str) -> None:
        self._record("initialize")
        self._pending = SimplePrincipal(self._collector, username)
        self._credential = credential

    def login(self, valid: bool = True) -> bool:
        self._record("login")
        return valid

    def commit(self) -> SimplePrincipal:
        self._record("commit")
        assert self._pending is not None
        self._association.bind(self._pending, self._credential or "")
        return self._pending

    def abort(self) -> None:
        self._record("abort")
        self._pending = None
        self._credential = None


@dataclass
class AuthenticationOutcome:
    """Result of one authentication scenario."""

    authenticated: bool
    configuration_found: bool
    principal_name: Optional[str] = None


class JaasSecurityService:
    """Orchestrates one JAAS authentication scenario over the simulated classes.

    A fully successful call to :meth:`authenticate` (configuration present,
    valid credentials, ``uses=2``) records the Figure 5 premise followed by
    its twelve-event consequent.
    """

    def __init__(self, collector: TraceCollector, entries: Optional[List[str]] = None) -> None:
        self.collector = collector
        self.config = XmlLoginConfig(collector, entries)
        self.stack = SubjectThreadLocalStack(collector)
        self.association = SecurityAssociation(collector)
        self.actions = SecurityAssociationActions(collector, self.stack)
        self.login_module = ClientLoginModule(collector, self.association)

    def authenticate(
        self,
        username: str = "admin",
        credential: str = "secret",
        entry_name: str = "client-login",
        valid_credentials: bool = True,
        uses: int = 2,
    ) -> AuthenticationOutcome:
        """Run one authentication scenario; record the corresponding events."""
        entry = self.config.getConfEntry(entry_name)
        if entry is None:
            return AuthenticationOutcome(authenticated=False, configuration_found=False)
        entry.getName()

        self.login_module.initialize(username, credential)
        if not self.login_module.login(valid=valid_credentials):
            self.login_module.abort()
            return AuthenticationOutcome(authenticated=False, configuration_found=True)
        principal = self.login_module.commit()

        self.actions.setPrincipalInfo(principal, credential)
        self.actions.pushSubjectCtxt(username)
        principal.toString()

        for _ in range(max(0, uses)):
            self.association.getPrincipal()
            self.association.getCredential()

        return AuthenticationOutcome(
            authenticated=True, configuration_found=True, principal_name=principal.name
        )
