"""Simulated JBoss test-suite workloads producing the case-study traces.

The paper obtains its case-study traces by instrumenting the transaction and
security components of JBoss-AS and running the distribution's test suite.
This module plays the role of that test suite: it drives the simulated
components of :mod:`repro.jboss.transaction` and :mod:`repro.jboss.security`
repeatedly, interleaving realistic but unrelated server activity (logging,
caching, JNDI lookups, servlet handling, SQL work) so that the protocol
events of Figures 4 and 5 appear amid noise, repeated both within and across
traces — exactly the setting iterative patterns and recurrent rules target.

All randomness is seeded, so the generated trace databases (and therefore
the case-study mining results) are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError
from ..core.sequence import SequenceDatabase
from ..traces.trace import TraceCollector
from .security import JaasSecurityService
from .transaction import TransactionClient

#: Unrelated server activity interleaved *between* protocol occurrences.
SERVER_NOISE_EVENTS = (
    "Logger.debug",
    "Logger.info",
    "Cache.lookup",
    "Cache.evict",
    "JndiContext.lookup",
    "HttpRequest.parse",
    "HttpResponse.flush",
    "ThreadPool.submit",
    "MBeanServer.invoke",
    "ClassLoaderRepo.loadClass",
)

#: Client work performed *inside* a transaction (between begin and commit).
CLIENT_WORK_EVENTS = (
    "ConnectionImpl.prepareStatement",
    "PreparedStatement.setString",
    "PreparedStatement.executeUpdate",
    "ResultSetImpl.next",
    "EntityBean.load",
    "EntityBean.store",
    "SessionBean.invoke",
    "MessageQueue.send",
)

#: Activity of other security-unrelated interceptors in the security traces.
SECURITY_NOISE_EVENTS = (
    "EJBInvocation.invoke",
    "InvocationContext.proceed",
    "TxInterceptor.process",
    "LogInterceptor.trace",
    "NamingService.resolve",
    "MarshalledValue.get",
    "ProxyFactory.createProxy",
)


@dataclass(frozen=True)
class TransactionWorkloadConfig:
    """Shape of the simulated transaction-component test suite."""

    num_traces: int = 20
    min_transactions_per_trace: int = 1
    max_transactions_per_trace: int = 3
    rollback_probability: float = 0.2
    noise_events_between: int = 3
    max_work_events: int = 3
    seed: int = 77

    def __post_init__(self) -> None:
        if self.num_traces < 1:
            raise ConfigurationError("num_traces must be >= 1")
        if not (1 <= self.min_transactions_per_trace <= self.max_transactions_per_trace):
            raise ConfigurationError("transactions-per-trace bounds are inconsistent")
        if not (0.0 <= self.rollback_probability <= 1.0):
            raise ConfigurationError("rollback_probability must be in [0, 1]")


def generate_transaction_traces(
    config: Optional[TransactionWorkloadConfig] = None,
) -> SequenceDatabase:
    """Run the simulated transaction test suite and return its traces."""
    config = config or TransactionWorkloadConfig()
    rng = random.Random(config.seed)
    collector = TraceCollector()

    for trace_index in range(config.num_traces):
        with collector.trace(f"tx-test-{trace_index}"):
            client = TransactionClient(collector)
            transactions = rng.randint(
                config.min_transactions_per_trace, config.max_transactions_per_trace
            )
            for _ in range(transactions):
                for _ in range(rng.randint(0, config.noise_events_between)):
                    collector.record(rng.choice(SERVER_NOISE_EVENTS))
                work = [
                    rng.choice(CLIENT_WORK_EVENTS)
                    for _ in range(rng.randint(1, config.max_work_events))
                ]
                commit = rng.random() >= config.rollback_probability
                client.run_transaction(commit=commit, work=work)
            for _ in range(rng.randint(0, config.noise_events_between)):
                collector.record(rng.choice(SERVER_NOISE_EVENTS))

    return collector.to_database()


@dataclass(frozen=True)
class SecurityWorkloadConfig:
    """Shape of the simulated security-component test suite."""

    num_traces: int = 24
    min_scenarios_per_trace: int = 1
    max_scenarios_per_trace: int = 2
    login_failure_probability: float = 0.15
    unavailable_trace_fraction: float = 0.125
    trailing_noise_probability: float = 0.5
    noise_events_between: int = 2
    seed: int = 99

    def __post_init__(self) -> None:
        if self.num_traces < 1:
            raise ConfigurationError("num_traces must be >= 1")
        if not (1 <= self.min_scenarios_per_trace <= self.max_scenarios_per_trace):
            raise ConfigurationError("scenarios-per-trace bounds are inconsistent")
        for name in (
            "login_failure_probability",
            "unavailable_trace_fraction",
            "trailing_noise_probability",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1]")


def generate_security_traces(
    config: Optional[SecurityWorkloadConfig] = None,
) -> SequenceDatabase:
    """Run the simulated security test suite and return its traces.

    The workload mixes three scenario kinds:

    * *successful authentications* — record the full Figure 5 behaviour;
    * *failed logins* — record the premise and the initialize/login/abort
      prefix only, lowering the mined rule's confidence below 100%;
    * *configuration-unavailable traces* — record only
      ``XmlLoginCI.getConfEntry``; these traces keep the statistics of the
      Figure 5 rule distinct from the coarser one-event-premise variant.

    Roughly half of the successful scenarios end the trace immediately after
    the last credential access so that no longer-consequent rule can carry
    identical statistics.
    """
    config = config or SecurityWorkloadConfig()
    rng = random.Random(config.seed)
    collector = TraceCollector()
    unavailable_traces = max(1, int(round(config.unavailable_trace_fraction * config.num_traces)))

    for trace_index in range(config.num_traces):
        with collector.trace(f"sec-test-{trace_index}"):
            service = JaasSecurityService(collector)
            if trace_index < unavailable_traces:
                # Authentication service not configured: the conf-entry lookup
                # fails and nothing JAAS-related follows.
                service.authenticate(entry_name="missing-domain")
                collector.record(rng.choice(SECURITY_NOISE_EVENTS))
                continue

            scenarios = rng.randint(
                config.min_scenarios_per_trace, config.max_scenarios_per_trace
            )
            for scenario_index in range(scenarios):
                for _ in range(rng.randint(0, config.noise_events_between)):
                    collector.record(rng.choice(SECURITY_NOISE_EVENTS))
                valid = rng.random() >= config.login_failure_probability
                service.authenticate(valid_credentials=valid, uses=2)
                is_last_scenario = scenario_index == scenarios - 1
                if not is_last_scenario or rng.random() < config.trailing_noise_probability:
                    collector.record(rng.choice(SECURITY_NOISE_EVENTS))

    return collector.to_database()


def generate_case_study_traces(
    transaction_config: Optional[TransactionWorkloadConfig] = None,
    security_config: Optional[SecurityWorkloadConfig] = None,
) -> SequenceDatabase:
    """Both components' test suites combined into one trace database."""
    combined = SequenceDatabase()
    for database in (
        generate_transaction_traces(transaction_config),
        generate_security_traces(security_config),
    ):
        for index in range(len(database)):
            combined.add(list(database[index]), name=database.name(index))
    return combined
