"""Simulated JBoss Application Server components and workloads (Section 7)."""

from .reference import (
    CONNECTION_SET_UP,
    FIGURE4_PATTERN,
    FIGURE5_CONSEQUENT,
    FIGURE5_PREMISE,
    FIGURE5_RULE,
    JTA_COMMIT_PATTERN,
    JTA_ROLLBACK_PATTERN,
    TRANSACTION_COMMIT,
    TRANSACTION_DISPOSE,
    TRANSACTION_ROLLBACK,
    TRANSACTION_SET_UP,
    TX_MANAGER_SET_UP,
)
from .security import AuthenticationOutcome, JaasSecurityService
from .transaction import TransactionClient, TransactionManagerLocator, TxManager
from .workloads import (
    CLIENT_WORK_EVENTS,
    SECURITY_NOISE_EVENTS,
    SERVER_NOISE_EVENTS,
    SecurityWorkloadConfig,
    TransactionWorkloadConfig,
    generate_case_study_traces,
    generate_security_traces,
    generate_transaction_traces,
)

__all__ = [
    "CONNECTION_SET_UP",
    "FIGURE4_PATTERN",
    "FIGURE5_CONSEQUENT",
    "FIGURE5_PREMISE",
    "FIGURE5_RULE",
    "JTA_COMMIT_PATTERN",
    "JTA_ROLLBACK_PATTERN",
    "TRANSACTION_COMMIT",
    "TRANSACTION_DISPOSE",
    "TRANSACTION_ROLLBACK",
    "TRANSACTION_SET_UP",
    "TX_MANAGER_SET_UP",
    "AuthenticationOutcome",
    "JaasSecurityService",
    "TransactionClient",
    "TransactionManagerLocator",
    "TxManager",
    "CLIENT_WORK_EVENTS",
    "SECURITY_NOISE_EVENTS",
    "SERVER_NOISE_EVENTS",
    "SecurityWorkloadConfig",
    "TransactionWorkloadConfig",
    "generate_case_study_traces",
    "generate_security_traces",
    "generate_transaction_traces",
]
