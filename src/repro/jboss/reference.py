"""Reference artefacts from the paper's JBoss case study (Section 7).

``FIGURE4_PATTERN`` is the longest iterative pattern mined from the JBoss
transaction component (Figure 4), read top-to-bottom, left-to-right across
the figure's six blocks.  ``FIGURE5_PREMISE`` / ``FIGURE5_CONSEQUENT`` form
the recurrent rule mined from the JBoss security component (Figure 5) — the
JAAS authentication behaviour.  The method names follow the figure's
abbreviations; trailing ``()`` marks are dropped so the labels match the
``Class.method`` convention used by the trace framework.
"""

from __future__ import annotations

from typing import Tuple

#: Figure 4, block 1 — "Connection Set Up".
CONNECTION_SET_UP: Tuple[str, ...] = (
    "TransactionManagerLocator.getInstance",
    "TransactionManagerLocator.locate",
    "TransactionManagerLocator.tryJNDI",
    "TransactionManagerLocator.usePrivateAPI",
)

#: Figure 4, block 2 — "Tx Manager Set Up".
TX_MANAGER_SET_UP: Tuple[str, ...] = (
    "TxManager.begin",
    "XidFactory.newXid",
    "XidFactory.getNextId",
    "XidImpl.getTrulyGlobalId",
)

#: Figure 4, blocks 3 and 4 — "Transaction Set Up" (and continuation).
TRANSACTION_SET_UP: Tuple[str, ...] = (
    "TransactionImpl.associateCurrentThread",
    "TransactionImpl.getLocalId",
    "XidImpl.getLocalId",
    "LocalId.hashCode",
    "TransactionImpl.equals",
    "TransactionImpl.getLocalIdValue",
    "XidImpl.getLocalIdValue",
    "TransactionImpl.getLocalIdValue",
    "XidImpl.getLocalIdValue",
)

#: Figure 4, blocks 5 and 6 — "Transaction Commit" (and continuation).
TRANSACTION_COMMIT: Tuple[str, ...] = (
    "TxManager.commit",
    "TransactionImpl.commit",
    "TransactionImpl.beforePrepare",
    "TransactionImpl.checkIntegrity",
    "TransactionImpl.checkBeforeStatus",
    "TransactionImpl.endResources",
    "TransactionImpl.completeTransaction",
    "TransactionImpl.cancelTimeout",
    "TransactionImpl.doAfterCompletion",
    "TransactionImpl.instanceDone",
)

#: Figure 4, final block — "Transaction Dispose".
TRANSACTION_DISPOSE: Tuple[str, ...] = (
    "TxManager.releaseTransactionImpl",
    "TransactionImpl.getLocalId",
    "XidImpl.getLocalId",
    "LocalId.hashCode",
    "LocalId.equals",
)

#: The complete Figure 4 pattern (the longest iterative pattern the paper mined).
FIGURE4_PATTERN: Tuple[str, ...] = (
    CONNECTION_SET_UP
    + TX_MANAGER_SET_UP
    + TRANSACTION_SET_UP
    + TRANSACTION_COMMIT
    + TRANSACTION_DISPOSE
)

#: The rollback variant of the commit protocol (JTA: begin may end in rollback).
TRANSACTION_ROLLBACK: Tuple[str, ...] = (
    "TxManager.rollback",
    "TransactionImpl.rollback",
    "TransactionImpl.endResources",
    "TransactionImpl.completeTransaction",
    "TransactionImpl.cancelTimeout",
    "TransactionImpl.doAfterCompletion",
    "TransactionImpl.instanceDone",
)

#: Figure 5 premise — authentication-configuration lookup.
FIGURE5_PREMISE: Tuple[str, ...] = (
    "XmlLoginCI.getConfEntry",
    "AuthenInfo.getName",
)

#: Figure 5 consequent — JAAS login, principal binding and credential use.
FIGURE5_CONSEQUENT: Tuple[str, ...] = (
    "ClientLoginMod.initialize",
    "ClientLoginMod.login",
    "ClientLoginMod.commit",
    "SecAssocActs.setPrincipalInfo",
    "SetPrincipalInfoAction.run",
    "SecAssocActs.pushSubjectCtxt",
    "SubjectThreadLocalStack.push",
    "SimplePrincipal.toString",
    "SecAssoc.getPrincipal",
    "SecAssoc.getCredential",
    "SecAssoc.getPrincipal",
    "SecAssoc.getCredential",
)

#: The complete Figure 5 rule as a (premise, consequent) pair.
FIGURE5_RULE: Tuple[Tuple[str, ...], Tuple[str, ...]] = (FIGURE5_PREMISE, FIGURE5_CONSEQUENT)

#: The two JTA protocol patterns quoted in the paper's introduction.
JTA_COMMIT_PATTERN: Tuple[str, ...] = ("TxManager.begin", "TxManager.commit")
JTA_ROLLBACK_PATTERN: Tuple[str, ...] = ("TxManager.begin", "TxManager.rollback")
