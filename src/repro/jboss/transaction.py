"""Behavioural simulation of the JBoss transaction component (Figure 4).

The paper's transaction case study instruments classes such as
``TxManager``, ``TransactionImpl``, ``XidFactory`` and ``XidImpl`` with
JBoss-AOP and runs the distribution's test suite.  Real JBoss traces are not
available offline, so this module models the same classes as small Python
objects whose method-call order during a begin/work/commit/dispose cycle is
exactly the protocol of Figure 4; noise (client SQL work, logging, other
server activity) is added by the workload layer, never by these classes.

Every public method records a ``Class.method`` event into the shared
:class:`~repro.traces.trace.TraceCollector` on entry — the Python analogue
of an AOP "before" advice — and then performs a tiny amount of real state
manipulation so the simulation has observable behaviour to test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import MonitoringError
from ..traces.trace import TraceCollector


class _RecordingComponent:
    """Base class: records ``ClassName.method`` on entry of every public method."""

    component_name: str = ""

    def __init__(self, collector: TraceCollector) -> None:
        self._collector = collector

    def _record(self, method_name: str) -> None:
        self._collector.record_call(self.component_name or type(self).__name__, method_name)


class LocalId(_RecordingComponent):
    """The transaction-local identifier (hashing / equality participant)."""

    component_name = "LocalId"

    def __init__(self, collector: TraceCollector, value: int) -> None:
        super().__init__(collector)
        self.value = value

    def hashCode(self) -> int:
        self._record("hashCode")
        return hash(self.value) & 0x7FFFFFFF

    def equals(self, other: "LocalId") -> bool:
        self._record("equals")
        return isinstance(other, LocalId) and other.value == self.value


class XidImpl(_RecordingComponent):
    """A transaction identifier (Xid) with global and local parts."""

    component_name = "XidImpl"

    def __init__(self, collector: TraceCollector, global_id: int, local_id: int) -> None:
        super().__init__(collector)
        self._global_id = global_id
        self._local_id = local_id

    def getTrulyGlobalId(self) -> int:
        self._record("getTrulyGlobalId")
        return self._global_id

    def getLocalId(self) -> LocalId:
        self._record("getLocalId")
        return LocalId(self._collector, self._local_id)

    def getLocalIdValue(self) -> int:
        self._record("getLocalIdValue")
        return self._local_id


class XidFactory(_RecordingComponent):
    """Factory creating fresh Xids with monotonically increasing local ids."""

    component_name = "XidFactory"

    def __init__(self, collector: TraceCollector) -> None:
        super().__init__(collector)
        self._next_id = 0

    def getNextId(self) -> int:
        self._record("getNextId")
        self._next_id += 1
        return self._next_id

    def newXid(self) -> XidImpl:
        self._record("newXid")
        local_id = self.getNextId()
        xid = XidImpl(self._collector, global_id=1000 + local_id, local_id=local_id)
        xid.getTrulyGlobalId()
        return xid


class TransactionImpl(_RecordingComponent):
    """One transaction: thread association, integrity checks, completion."""

    component_name = "TransactionImpl"

    STATUS_ACTIVE = "ACTIVE"
    STATUS_COMMITTED = "COMMITTED"
    STATUS_ROLLED_BACK = "ROLLED_BACK"

    def __init__(self, collector: TraceCollector, xid: XidImpl) -> None:
        super().__init__(collector)
        self.xid = xid
        self.status = self.STATUS_ACTIVE
        self.resources: List[str] = []

    # -- identity ------------------------------------------------------- #
    def getLocalId(self) -> LocalId:
        self._record("getLocalId")
        return self.xid.getLocalId()

    def getLocalIdValue(self) -> int:
        self._record("getLocalIdValue")
        return self.xid.getLocalIdValue()

    def equals(self, other: "TransactionImpl") -> bool:
        self._record("equals")
        return self.getLocalIdValue() == other.getLocalIdValue()

    # -- lifecycle ------------------------------------------------------ #
    def associateCurrentThread(self) -> None:
        self._record("associateCurrentThread")

    def enlistResource(self, resource: str) -> None:
        self.resources.append(resource)

    def commit(self) -> None:
        self._record("commit")
        if self.status != self.STATUS_ACTIVE:
            raise MonitoringError(f"cannot commit a transaction in state {self.status}")
        self.beforePrepare()
        self.endResources()
        self.completeTransaction()
        self.status = self.STATUS_COMMITTED

    def beforePrepare(self) -> None:
        self._record("beforePrepare")
        self.checkIntegrity()

    def checkIntegrity(self) -> None:
        self._record("checkIntegrity")
        self.checkBeforeStatus()

    def checkBeforeStatus(self) -> None:
        self._record("checkBeforeStatus")

    def rollback(self) -> None:
        self._record("rollback")
        if self.status != self.STATUS_ACTIVE:
            raise MonitoringError(f"cannot roll back a transaction in state {self.status}")
        self.endResources()
        self.completeTransaction()
        self.status = self.STATUS_ROLLED_BACK

    def endResources(self) -> None:
        self._record("endResources")
        self.resources.clear()

    def completeTransaction(self) -> None:
        self._record("completeTransaction")
        self.cancelTimeout()
        self.doAfterCompletion()
        self.instanceDone()

    def cancelTimeout(self) -> None:
        self._record("cancelTimeout")

    def doAfterCompletion(self) -> None:
        self._record("doAfterCompletion")

    def instanceDone(self) -> None:
        self._record("instanceDone")


class TxManager(_RecordingComponent):
    """The transaction manager: begin / commit / rollback / release."""

    component_name = "TxManager"

    def __init__(self, collector: TraceCollector) -> None:
        super().__init__(collector)
        self._factory = XidFactory(collector)
        self._registry: List[TransactionImpl] = []

    def begin(self) -> TransactionImpl:
        """Start a transaction; records the Tx Manager + Transaction Set Up blocks."""
        self._record("begin")
        xid = self._factory.newXid()
        transaction = TransactionImpl(self._collector, xid)
        transaction.associateCurrentThread()
        # Register the transaction: the registry hashes the local id and
        # compares against the most recent transaction, which is exactly the
        # getLocalId / hashCode / equals sub-protocol of Figure 4.
        local_id = transaction.getLocalId()
        local_id.hashCode()
        previous = self._registry[-1] if self._registry else transaction
        transaction.equals(previous)
        self._registry.append(transaction)
        return transaction

    def commit(self, transaction: TransactionImpl) -> None:
        """Commit: records the Transaction Commit block."""
        self._record("commit")
        transaction.commit()

    def rollback(self, transaction: TransactionImpl) -> None:
        """Roll back: the JTA alternative ending of the protocol."""
        self._record("rollback")
        transaction.rollback()

    def releaseTransactionImpl(self, transaction: TransactionImpl) -> None:
        """Dispose the transaction: records the Transaction Dispose block."""
        self._record("releaseTransactionImpl")
        local_id = transaction.getLocalId()
        local_id.hashCode()
        local_id.equals(local_id)
        if transaction in self._registry:
            self._registry.remove(transaction)


class TransactionManagerLocator(_RecordingComponent):
    """Locates the server's transaction manager (the Connection Set Up block)."""

    component_name = "TransactionManagerLocator"

    def __init__(self, collector: TraceCollector, jndi_available: bool = False) -> None:
        super().__init__(collector)
        self._jndi_available = jndi_available
        self._manager: Optional[TxManager] = None

    def getInstance(self) -> "TransactionManagerLocator":
        self._record("getInstance")
        return self

    def locate(self) -> TxManager:
        self._record("locate")
        found = self.tryJNDI()
        if found is None:
            found = self.usePrivateAPI()
        self._manager = found
        return found

    def tryJNDI(self) -> Optional[TxManager]:
        self._record("tryJNDI")
        if self._jndi_available and self._manager is not None:
            return self._manager
        return None

    def usePrivateAPI(self) -> TxManager:
        self._record("usePrivateAPI")
        if self._manager is None:
            self._manager = TxManager(self._collector)
        return self._manager


@dataclass
class TransactionClient:
    """A client running complete transaction cycles against the simulated server.

    The client is the unit the workload layer drives: one ``run_transaction``
    call produces exactly one occurrence of the Figure 4 protocol (commit) or
    of its rollback variant, with the caller free to interleave unrelated
    work events between ``begin`` and the final outcome.
    """

    collector: TraceCollector
    locator: TransactionManagerLocator = field(init=False)

    def __post_init__(self) -> None:
        self.locator = TransactionManagerLocator(self.collector)

    def run_transaction(self, commit: bool = True, work: Optional[List[str]] = None) -> str:
        """Run one full transaction cycle and return the final status."""
        manager = self.locator.getInstance().locate()
        transaction = manager.begin()
        for work_event in work or []:
            # Client work is recorded verbatim: these events are outside the
            # transaction component's vocabulary, hence outside the mined
            # pattern's alphabet.
            self.collector.record(work_event)
            transaction.enlistResource(work_event)
        if commit:
            manager.commit(transaction)
        else:
            manager.rollback(transaction)
        manager.releaseTransactionImpl(transaction)
        return transaction.status
