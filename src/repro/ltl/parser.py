"""A small parser for the paper's LTL notation.

Accepts strings such as ``"G(lock -> XF(unlock))"`` or
``"G(a -> XG(b -> XF(c /\\ XF(d))))"`` and returns the corresponding
:class:`~repro.ltl.ast.Formula`.  The grammar (implication is
right-associative and binds weaker than conjunction, temporal operators bind
tightest)::

    formula     := implication
    implication := conjunction ('->' implication)?
    conjunction := unary (('/\\' | '&&' | '∧') conjunction)?
    unary       := OPCHAIN unary | primary        # OPCHAIN is a run of G/F/X
    primary     := '(' formula ')' | ATOM
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from ..core.errors import DataFormatError
from .ast import And, Atom, Finally, Formula, Globally, Implies, Next, WeakNext

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<implies>->|→)|"
    r"(?P<and>/\\|&&|∧)|(?P<atom>[A-Za-z_][A-Za-z0-9_.$<>:]*))"
)


class _Token(NamedTuple):
    kind: str
    text: str


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise DataFormatError(f"cannot tokenize LTL text near: {remainder[:20]!r}")
        position = match.end()
        for kind in ("lparen", "rparen", "implies", "and", "atom"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def parse(self) -> Formula:
        formula = self._implication()
        if self._peek() is not None:
            raise DataFormatError(f"unexpected trailing LTL tokens: {self._peek()!r}")
        return formula

    # -- helpers -------------------------------------------------------- #
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise DataFormatError("unexpected end of LTL text")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise DataFormatError(f"expected {kind} but found {token.text!r}")
        return token

    # -- grammar -------------------------------------------------------- #
    def _implication(self) -> Formula:
        left = self._conjunction()
        token = self._peek()
        if token is not None and token.kind == "implies":
            self._advance()
            return Implies(left, self._implication())
        return left

    def _conjunction(self) -> Formula:
        left = self._unary()
        token = self._peek()
        if token is not None and token.kind == "and":
            self._advance()
            return And(left, self._conjunction())
        return left

    def _unary(self) -> Formula:
        token = self._peek()
        if (
            token is not None
            and token.kind == "atom"
            and re.fullmatch(r"[GFX]+", token.text)
            and self._index + 1 < len(self._tokens)
            and self._tokens[self._index + 1].kind in ("lparen", "atom")
        ):
            self._advance()
            operand = self._unary()
            for operator in reversed(token.text):
                if operator == "G":
                    operand = Globally(operand)
                elif operator == "F":
                    operand = Finally(operand)
                elif isinstance(operand, Globally):
                    # ``X`` directly in front of ``G`` is parsed as the weak
                    # next, matching the formulae produced by rule_to_ltl.
                    operand = WeakNext(operand)
                else:
                    operand = Next(operand)
            return operand
        return self._primary()

    def _primary(self) -> Formula:
        token = self._advance()
        if token.kind == "lparen":
            formula = self._implication()
            self._expect("rparen")
            return formula
        if token.kind == "atom":
            return Atom(token.text)
        raise DataFormatError(f"unexpected LTL token: {token.text!r}")


def parse_ltl(text: str) -> Formula:
    """Parse the paper's textual LTL notation into a :class:`Formula`."""
    tokens = _tokenize(text)
    if not tokens:
        raise DataFormatError("empty LTL text")
    return _Parser(tokens).parse()
