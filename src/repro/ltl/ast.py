"""Linear Temporal Logic abstract syntax (Section 3.3).

Only the fragment the paper uses is modelled: atomic events, conjunction,
implication and the temporal operators ``G`` (globally), ``F`` (finally /
eventually) and ``X`` (next).  Formulae are immutable, hashable and render
to the paper's textual notation via ``str()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..core.events import EventLabel


class Formula:
    """Base class for LTL formulae."""

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def implies(self, other: "Formula") -> "Implies":
        """Build ``self -> other``."""
        return Implies(self, other)

    def globally(self) -> "Globally":
        """Wrap the formula in the ``G`` operator."""
        return Globally(self)

    def eventually(self) -> "Finally":
        """Wrap the formula in the ``F`` operator."""
        return Finally(self)

    def next(self) -> "Next":
        """Wrap the formula in the ``X`` operator."""
        return Next(self)


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic proposition: "the current event is ``event``"."""

    event: EventLabel

    def __str__(self) -> str:
        return str(self.event)


@dataclass(frozen=True)
class And(Formula):
    """Conjunction ``left /\\ right``."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} /\\ {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``left -> right``."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Globally(Formula):
    """``G(operand)``: the operand holds at every point from now on."""

    operand: Formula

    def __str__(self) -> str:
        return f"G({self.operand})"


@dataclass(frozen=True)
class Finally(Formula):
    """``F(operand)``: the operand holds now or at some future point."""

    operand: Formula

    def __str__(self) -> str:
        return f"F({self.operand})"


def _render_next(operand: Formula) -> str:
    operand_text = str(operand)
    # The paper writes ``XF(e)`` / ``XG(...)`` without parentheses around the
    # chained temporal operator; mirror that compact rendering.
    if isinstance(operand, (Finally, Globally, Next, WeakNext)):
        return f"X{operand_text}"
    return f"X({operand_text})"


@dataclass(frozen=True)
class Next(Formula):
    """``X(operand)``: a next event exists and the operand holds there (strong next)."""

    operand: Formula

    def __str__(self) -> str:
        return _render_next(self.operand)


@dataclass(frozen=True)
class WeakNext(Formula):
    """Weak next: the operand holds at the next event *if one exists*.

    Over infinite paths (the paper's setting) ``X`` and the weak next
    coincide, and the paper writes both as ``X``.  On finite traces they
    differ exactly at the last event; the rule translation uses the weak
    variant in the ``XG`` positions (nothing after the trace ends can
    re-trigger the premise) and the strong variant in the ``XF`` positions
    (the consequent genuinely has to happen).  Rendering is identical to
    ``X`` to match the paper's notation.
    """

    operand: Formula

    def __str__(self) -> str:
        return _render_next(self.operand)


#: Formulae that wrap exactly one operand.
UnaryFormula = Union[Globally, Finally, Next, WeakNext]


def atoms(formula: Formula) -> Tuple[EventLabel, ...]:
    """All atomic events mentioned by ``formula``, left to right (with repeats)."""
    if isinstance(formula, Atom):
        return (formula.event,)
    if isinstance(formula, (And, Implies)):
        return atoms(formula.left) + atoms(formula.right)
    if isinstance(formula, (Globally, Finally, Next, WeakNext)):
        return atoms(formula.operand)
    raise TypeError(f"not an LTL formula: {formula!r}")


def depth(formula: Formula) -> int:
    """Nesting depth of the formula (atoms have depth 1)."""
    if isinstance(formula, Atom):
        return 1
    if isinstance(formula, (And, Implies)):
        return 1 + max(depth(formula.left), depth(formula.right))
    if isinstance(formula, (Globally, Finally, Next, WeakNext)):
        return 1 + depth(formula.operand)
    raise TypeError(f"not an LTL formula: {formula!r}")
