"""Linear Temporal Logic support (Section 3.3, Tables 1 and 2).

The package provides the LTL AST, a parser for the paper's textual notation,
finite-trace semantics, translation between recurrent rules and LTL, and the
English rendering used to regenerate Table 1.
"""

from .ast import And, Atom, Finally, Formula, Globally, Implies, Next, WeakNext, atoms, depth
from .parser import parse_ltl
from .pretty import describe_rule, explain
from .semantics import holds
from .translate import consequent_to_ltl, is_minable, ltl_to_rule, rule_to_ltl

__all__ = [
    "And",
    "Atom",
    "Finally",
    "Formula",
    "Globally",
    "Implies",
    "Next",
    "WeakNext",
    "atoms",
    "depth",
    "parse_ltl",
    "describe_rule",
    "explain",
    "holds",
    "consequent_to_ltl",
    "is_minable",
    "ltl_to_rule",
    "rule_to_ltl",
]
