"""Finite-trace semantics for the paper's LTL fragment.

The paper interprets LTL over program traces, which are finite.  The usual
finite-trace reading is used:

* an atom holds at position ``i`` iff the event at ``i`` equals it;
* ``X φ`` holds at ``i`` iff position ``i+1`` exists and ``φ`` holds there;
* ``F φ`` holds at ``i`` iff ``φ`` holds at some position ``j >= i``;
* ``G φ`` holds at ``i`` iff ``φ`` holds at every position ``j >= i``
  (vacuously true past the end of the trace);
* boolean connectives are as usual.

``holds(formula, trace)`` evaluates at position 0.  Evaluation memoises on
``(formula, position)`` so that the nested ``G``/``F`` translations of long
rules stay polynomial in the trace length.
"""

from __future__ import annotations

from typing import Dict, Sequence as TypingSequence, Tuple

from ..core.events import EventLabel
from .ast import And, Atom, Finally, Formula, Globally, Implies, Next, WeakNext


def holds(formula: Formula, trace: TypingSequence[EventLabel], position: int = 0) -> bool:
    """Whether ``formula`` holds on ``trace`` at ``position`` (default: the start)."""
    memo: Dict[Tuple[int, int], bool] = {}
    return _evaluate(formula, tuple(trace), position, memo)


def _evaluate(
    formula: Formula,
    trace: Tuple[EventLabel, ...],
    position: int,
    memo: Dict[Tuple[int, int], bool],
) -> bool:
    key = (id(formula), position)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _evaluate_uncached(formula, trace, position, memo)
    memo[key] = result
    return result


def _evaluate_uncached(
    formula: Formula,
    trace: Tuple[EventLabel, ...],
    position: int,
    memo: Dict[Tuple[int, int], bool],
) -> bool:
    if isinstance(formula, Atom):
        return position < len(trace) and trace[position] == formula.event
    if isinstance(formula, And):
        return _evaluate(formula.left, trace, position, memo) and _evaluate(
            formula.right, trace, position, memo
        )
    if isinstance(formula, Implies):
        return (not _evaluate(formula.left, trace, position, memo)) or _evaluate(
            formula.right, trace, position, memo
        )
    if isinstance(formula, Next):
        return position + 1 < len(trace) and _evaluate(
            formula.operand, trace, position + 1, memo
        )
    if isinstance(formula, WeakNext):
        return position + 1 >= len(trace) or _evaluate(
            formula.operand, trace, position + 1, memo
        )
    if isinstance(formula, Finally):
        return any(
            _evaluate(formula.operand, trace, later, memo)
            for later in range(position, len(trace))
        )
    if isinstance(formula, Globally):
        return all(
            _evaluate(formula.operand, trace, later, memo)
            for later in range(position, len(trace))
        )
    raise TypeError(f"not an LTL formula: {formula!r}")
