"""Translation between recurrent rules and LTL formulae (Table 2 / Section 3.3).

The paper's BNF for minable LTL expressions is::

    rules   := G(prepost)
    prepost := event -> post | event -> XG(prepost)
    post    := XF(event) | XF(event /\\ XF(post))

so a rule ``<p1, ..., pn> -> <q1, ..., qm>`` becomes::

    G(p1 -> XG(p2 -> ... XG(pn -> XF(q1 /\\ XF(q2 /\\ ... XF(qm)))) ...))

:func:`rule_to_ltl` builds that formula and :func:`ltl_to_rule` inverts it,
raising :class:`~repro.core.errors.PatternError` for formulae outside the
fragment.
"""

from __future__ import annotations

from typing import Sequence as TypingSequence, Tuple

from ..core.errors import PatternError
from ..core.events import EventLabel
from .ast import And, Atom, Finally, Formula, Globally, Implies, Next, WeakNext


def consequent_to_ltl(consequent: TypingSequence[EventLabel]) -> Formula:
    """The ``post`` production: ``XF(q1 /\\ XF(q2 /\\ ... XF(qm)))``."""
    if not consequent:
        raise PatternError("a rule consequent must contain at least one event")
    formula: Formula = Next(Finally(Atom(consequent[-1])))
    for event in reversed(consequent[:-1]):
        formula = Next(Finally(And(Atom(event), formula)))
    return formula


def rule_to_ltl(
    premise: TypingSequence[EventLabel], consequent: TypingSequence[EventLabel]
) -> Globally:
    """Translate ``premise -> consequent`` into its LTL form (Table 2)."""
    if not premise:
        raise PatternError("a rule premise must contain at least one event")
    body: Formula = Implies(Atom(premise[-1]), consequent_to_ltl(consequent))
    for event in reversed(premise[:-1]):
        # The weak next: over the paper's infinite paths X and the weak next
        # coincide; on finite traces the premise cannot re-trigger past the
        # end of the trace, which is exactly what the weak variant expresses.
        body = Implies(Atom(event), WeakNext(Globally(body)))
    return Globally(body)


def _parse_consequent(formula: Formula) -> Tuple[EventLabel, ...]:
    """Invert the ``post`` production; raises PatternError on other shapes."""
    if not isinstance(formula, Next) or not isinstance(formula.operand, Finally):
        raise PatternError(f"not a rule consequent: {formula}")
    inner = formula.operand.operand
    if isinstance(inner, Atom):
        return (inner.event,)
    if isinstance(inner, And) and isinstance(inner.left, Atom):
        return (inner.left.event,) + _parse_consequent(inner.right)
    raise PatternError(f"not a rule consequent: {formula}")


def _parse_prepost(formula: Formula) -> Tuple[Tuple[EventLabel, ...], Tuple[EventLabel, ...]]:
    """Invert the ``prepost`` production."""
    if not isinstance(formula, Implies) or not isinstance(formula.left, Atom):
        raise PatternError(f"not a rule body: {formula}")
    event = formula.left.event
    right = formula.right
    if isinstance(right, (Next, WeakNext)) and isinstance(right.operand, Globally):
        premise, consequent = _parse_prepost(right.operand.operand)
        return (event,) + premise, consequent
    return (event,), _parse_consequent(right)


def ltl_to_rule(formula: Formula) -> Tuple[Tuple[EventLabel, ...], Tuple[EventLabel, ...]]:
    """Recover ``(premise, consequent)`` from a formula in the minable fragment."""
    if not isinstance(formula, Globally):
        raise PatternError(f"a minable rule must be wrapped in G(...): {formula}")
    return _parse_prepost(formula.operand)


def is_minable(formula: Formula) -> bool:
    """Whether ``formula`` belongs to the paper's minable LTL fragment."""
    try:
        ltl_to_rule(formula)
    except PatternError:
        return False
    return True
