"""English rendering of LTL formulae, mirroring the paper's Table 1.

The four rows of Table 1 are instances of three shapes:

* ``F(e)`` — "Eventually ``e`` is called";
* ``XF(e)`` — "From the next event onwards, eventually ``e`` is called";
* ``G(rule)`` where ``rule`` is in the minable fragment — "Globally whenever
  ``p1`` followed by ... are called, then from the next event onwards,
  eventually ``q1`` followed by ... are called".

Anything else falls back to a structural rendering.
"""

from __future__ import annotations

from typing import Sequence as TypingSequence

from ..core.errors import PatternError
from ..core.events import EventLabel
from .ast import Atom, Finally, Formula, Globally, Next
from .translate import ltl_to_rule


def _join_events(events: TypingSequence[EventLabel]) -> str:
    names = [str(event) for event in events]
    if len(names) == 1:
        return names[0]
    return " followed by ".join(names)


def _verb(events: TypingSequence[EventLabel]) -> str:
    return "is called" if len(events) == 1 else "are called"


def explain(formula: Formula) -> str:
    """An English sentence describing ``formula`` in the style of Table 1."""
    if isinstance(formula, Finally) and isinstance(formula.operand, Atom):
        event = formula.operand.event
        return f"Eventually {event} is called"
    if (
        isinstance(formula, Next)
        and isinstance(formula.operand, Finally)
        and isinstance(formula.operand.operand, Atom)
    ):
        event = formula.operand.operand.event
        return f"From the next event onwards, eventually {event} is called"
    if isinstance(formula, Globally):
        try:
            premise, consequent = ltl_to_rule(formula)
        except PatternError:
            pass
        else:
            return (
                f"Globally whenever {_join_events(premise)} {_verb(premise)}, "
                f"then from the next event onwards, eventually "
                f"{_join_events(consequent)} {_verb(consequent)}"
            )
    return f"The property {formula} holds"


def describe_rule(
    premise: TypingSequence[EventLabel], consequent: TypingSequence[EventLabel]
) -> str:
    """The paper's informal reading of a recurrent rule."""
    return (
        f"Whenever {_join_events(premise)} {'has' if len(premise) == 1 else 'have'} "
        f"just occurred, eventually {_join_events(consequent)} "
        f"{'occurs' if len(consequent) == 1 else 'occur'}"
    )
