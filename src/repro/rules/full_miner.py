"""Mining the *full* set of significant recurrent rules.

This is the baseline of Figures 2 and 3: every rule satisfying the
``min_s-sup`` / ``min_i-sup`` / ``min_conf`` thresholds is emitted, including
all the redundant ones, so the result size (and with it the work spent
materialising rules) explodes as the thresholds drop.
"""

from __future__ import annotations

from typing import Optional

from ..core.sequence import SequenceDatabase
from ..engine import ExecutionBackend
from .config import RuleMiningConfig
from .miner_base import RecurrentRuleMinerBase
from .result import RuleMiningResult


class FullRecurrentRuleMiner(RecurrentRuleMinerBase):
    """Emit every significant recurrent rule.

    Example
    -------
    >>> from repro import SequenceDatabase
    >>> db = SequenceDatabase.from_sequences([
    ...     ["lock", "use", "unlock"],
    ...     ["lock", "unlock", "lock", "unlock"],
    ... ])
    >>> config = RuleMiningConfig(min_s_support=2, min_confidence=1.0)
    >>> rules = FullRecurrentRuleMiner(config).mine(db)
    >>> rules.contains(["lock"], ["unlock"])
    True
    """

    skip_dominated = False
    apply_final_redundancy_filter = False
    non_redundant_only = False


def mine_all_rules(
    database: SequenceDatabase,
    min_s_support: float = 2.0,
    min_i_support: int = 1,
    min_confidence: float = 0.5,
    backend: Optional[ExecutionBackend] = None,
    **kwargs: object,
) -> RuleMiningResult:
    """Convenience wrapper: mine the full set of significant recurrent rules."""
    config = RuleMiningConfig(
        min_s_support=min_s_support,
        min_i_support=min_i_support,
        min_confidence=min_confidence,
        **kwargs,  # type: ignore[arg-type]
    )
    return FullRecurrentRuleMiner(config).mine(database, backend=backend)
