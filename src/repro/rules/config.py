"""Configuration for the recurrent-rule miners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..core.errors import ConfigurationError
from ..core.events import EventLabel


@dataclass(frozen=True)
class RuleMiningConfig:
    """Thresholds and limits shared by the full and non-redundant rule miners.

    Parameters
    ----------
    min_s_support:
        Minimum sequence support of a rule's premise.  Values in ``(0, 1]``
        are relative to the number of sequences (the paper reports
        ``min_s-sup`` as a percentage of the database size); larger values
        are absolute sequence counts.
    min_i_support:
        Minimum instance support (occurrences of ``premise ++ consequent``).
        The paper uses 1 in its performance study; no pruning property exists
        for this threshold, it is a pure output filter (Step 4).
    min_confidence:
        Minimum confidence in ``[0, 1]``.
    max_premise_length / max_consequent_length:
        Optional caps on the search depth.  ``None`` explores rules of
        arbitrary length, as in the paper.
    allowed_premise_events:
        Optional restriction of the premise alphabet.  This implements the
        "domain knowledge" feedback sketched in the paper's future work: the
        JBoss security case study, for example, focuses premises on the
        authentication-configuration events.  Premises may only use events
        from this set; consequents remain unrestricted.
    """

    min_s_support: float = 2.0
    min_i_support: int = 1
    min_confidence: float = 0.5
    max_premise_length: Optional[int] = None
    max_consequent_length: Optional[int] = None
    allowed_premise_events: Optional[FrozenSet[EventLabel]] = None

    def __post_init__(self) -> None:
        if self.min_s_support <= 0:
            raise ConfigurationError(
                f"min_s_support must be positive, got {self.min_s_support!r}"
            )
        if self.min_i_support < 1:
            raise ConfigurationError(
                f"min_i_support must be at least 1, got {self.min_i_support!r}"
            )
        if not (0.0 < self.min_confidence <= 1.0):
            raise ConfigurationError(
                f"min_confidence must be in (0, 1], got {self.min_confidence!r}"
            )
        for name, value in (
            ("max_premise_length", self.max_premise_length),
            ("max_consequent_length", self.max_consequent_length),
        ):
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be at least 1, got {value!r}")
        if self.allowed_premise_events is not None and not self.allowed_premise_events:
            raise ConfigurationError("allowed_premise_events must not be an empty set")
