"""Rule redundancy filtering (Definition 5.2, Step 5).

A rule ``RX`` is redundant when some other rule ``RY`` has the same
s-support, i-support and confidence and the concatenation
``premise ++ consequent`` of ``RX`` is a subsequence of that of ``RY``
(with the tie broken towards the rule with the *shorter premise* when the
concatenations coincide).  Redundancy is transitive along these chains, so
filtering against the set of emitted rules removes exactly the redundant
ones even when intermediate dominating rules were themselves suppressed
early by the miner.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .rule import RecurrentRule


def _statistics_key(rule: RecurrentRule) -> Tuple[int, int, float]:
    return (rule.s_support, rule.i_support, round(rule.confidence, 12))


def find_redundant(rules: Iterable[RecurrentRule]) -> List[RecurrentRule]:
    """Return the rules that are redundant with respect to the given collection."""
    rules = list(rules)
    by_statistics: Dict[Tuple[int, int, float], List[RecurrentRule]] = {}
    for rule in rules:
        by_statistics.setdefault(_statistics_key(rule), []).append(rule)

    redundant: List[RecurrentRule] = []
    for rule in rules:
        candidates = by_statistics.get(_statistics_key(rule), [])
        if any(rule.is_redundant_with_respect_to(other) for other in candidates):
            redundant.append(rule)
    return redundant


def filter_redundant(rules: Iterable[RecurrentRule]) -> Tuple[List[RecurrentRule], List[RecurrentRule]]:
    """Split rules into ``(non_redundant, redundant)`` per Definition 5.2.

    Only rules with identical statistics can make each other redundant, so
    the comparison is restricted to statistics-equivalence classes; within a
    class the subsequence check is quadratic, which is fine because the
    classes of a non-redundant mining run are small.
    """
    rules = list(rules)
    redundant_signatures = {rule.signature() for rule in find_redundant(rules)}
    kept: List[RecurrentRule] = []
    dropped: List[RecurrentRule] = []
    for rule in rules:
        if rule.signature() in redundant_signatures:
            dropped.append(rule)
        else:
            kept.append(rule)
    return kept, dropped
