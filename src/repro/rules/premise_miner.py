"""Premise generation for recurrent-rule mining (Step 1 of Section 5).

Premises are patterns whose *sequence support* (number of sequences
containing them as a subsequence) meets ``min_s_support``.  The search is a
PrefixSpan-style depth-first pattern growth over earliest-position
projections; the s-support apriori property (Theorem 2: extending a premise
can only lower its sequence support) makes the pruning sound.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from ..core.events import EncodedDatabase, EventId
from ..core.stats import MiningStats


class MinedPremise(NamedTuple):
    """A premise candidate: the pattern, its s-support and its projections.

    ``projections`` maps each supporting sequence index to the end position
    of the earliest embedding of the premise in that sequence; the consequent
    grower reuses it to seed the i-support recurrence.
    """

    pattern: Tuple[EventId, ...]
    s_support: int
    projections: Tuple[Tuple[int, int], ...]


def initial_premise_projections(
    encoded_db: EncodedDatabase,
    allowed_events: Optional[FrozenSet[EventId]] = None,
) -> Dict[EventId, List[Tuple[int, int]]]:
    """Earliest-occurrence projections of every single-event premise.

    Maps each (allowed) event to ``(sequence_index, position)`` pairs, one
    per sequence containing it, pointing at its earliest occurrence.  This
    is the root level of the premise search; the parallel engine computes
    it once to plan shards and workers reuse it to seed their subtrees.
    """
    initial: Dict[EventId, List[Tuple[int, int]]] = {}
    for sequence_index, sequence in enumerate(encoded_db):
        seen: Dict[EventId, int] = {}
        for position, event in enumerate(sequence):
            if event not in seen and (allowed_events is None or event in allowed_events):
                seen[event] = position
        for event, position in seen.items():
            initial.setdefault(event, []).append((sequence_index, position))
    return initial


class PremiseMiner:
    """Enumerate all premises with sequence support at least ``min_s_support``."""

    def __init__(
        self,
        min_s_support: int,
        max_length: Optional[int] = None,
        stats: Optional[MiningStats] = None,
        allowed_events: Optional[FrozenSet[EventId]] = None,
    ) -> None:
        self.min_s_support = max(1, min_s_support)
        self.max_length = max_length
        self.stats = stats if stats is not None else MiningStats()
        self.allowed_events = allowed_events

    def _is_allowed(self, event: EventId) -> bool:
        return self.allowed_events is None or event in self.allowed_events

    def mine(self, encoded_db: EncodedDatabase) -> Iterator[MinedPremise]:
        """Yield every s-frequent premise, depth-first, shortest prefix first."""
        initial = initial_premise_projections(encoded_db, self.allowed_events)
        for event in sorted(initial):
            projections = initial[event]
            if len(projections) < self.min_s_support:
                self.stats.pruned_support += 1
                continue
            yield from self.grow_from_root(encoded_db, event, projections)

    def grow_from_root(
        self,
        encoded_db: EncodedDatabase,
        event: EventId,
        projections: List[Tuple[int, int]],
    ) -> Iterator[MinedPremise]:
        """Yield the s-frequent premises of one root's subtree, depth-first.

        ``projections`` must be the earliest-occurrence projections of
        ``<event>`` (see :func:`initial_premise_projections`); the parallel
        engine calls this per shard root.
        """
        yield from self._grow(encoded_db, (event,), projections)

    def _grow(
        self,
        encoded_db: EncodedDatabase,
        pattern: Tuple[EventId, ...],
        projections: List[Tuple[int, int]],
    ) -> Iterator[MinedPremise]:
        self.stats.visited += 1
        yield MinedPremise(pattern, len(projections), tuple(projections))

        if self.max_length is not None and len(pattern) >= self.max_length:
            return

        # Scan the projected suffixes once, recording for every candidate
        # extension event its earliest position after the current embedding.
        extensions: Dict[EventId, List[Tuple[int, int]]] = {}
        for sequence_index, position in projections:
            sequence = encoded_db[sequence_index]
            seen: Dict[EventId, int] = {}
            for next_position in range(position + 1, len(sequence)):
                event = sequence[next_position]
                if event not in seen and self._is_allowed(event):
                    seen[event] = next_position
            for event, next_position in seen.items():
                extensions.setdefault(event, []).append((sequence_index, next_position))

        for event in sorted(extensions):
            extended_projections = extensions[event]
            if len(extended_projections) < self.min_s_support:
                self.stats.pruned_support += 1
                continue
            yield from self._grow(encoded_db, pattern + (event,), extended_projections)
