"""Premise generation for recurrent-rule mining (Step 1 of Section 5).

Premises are patterns whose *sequence support* (number of sequences
containing them as a subsequence) meets ``min_s_support``.  The search is a
PrefixSpan-style depth-first pattern growth over earliest-position
projections; the s-support apriori property (Theorem 2: extending a premise
can only lower its sequence support) makes the pruning sound.

Projections are kept columnar: a
:class:`~repro.core.blocks.PositionBlock` holds one ``(sequence_index,
end_position)`` row per supporting sequence as two flat ``array('i')``
columns, so the growth loop iterates ints and extension lists are built by
appending to int columns instead of allocating a tuple per sequence.
Iterating a block yields ``(sequence_index, position)`` pairs, preserving
the tuple-based interface for consumers.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterator,
    NamedTuple,
    Optional,
    Tuple,
)

from ..core.blocks import PositionBlock, PositionBlockBuilder
from ..core.events import EncodedDatabase, EventId
from ..core.positions import PositionIndex
from ..core.stats import MiningStats


class MinedPremise(NamedTuple):
    """A premise candidate: the pattern, its s-support and its projections.

    ``projections`` maps each supporting sequence index to the end position
    of the earliest embedding of the premise in that sequence (columnar,
    one row per sequence, ascending); the consequent grower reuses it to
    seed the i-support recurrence.
    """

    pattern: Tuple[EventId, ...]
    s_support: int
    projections: PositionBlock


def initial_premise_projections(
    encoded_db: EncodedDatabase,
    allowed_events: Optional[FrozenSet[EventId]] = None,
) -> Dict[EventId, PositionBlock]:
    """Earliest-occurrence projections of every single-event premise.

    Maps each (allowed) event to a :class:`PositionBlock` of
    ``(sequence_index, position)`` rows, one per sequence containing it,
    pointing at its earliest occurrence.  This is the root level of the
    premise search; the parallel engine computes it once to plan shards and
    workers reuse it to seed their subtrees.
    """
    builders: Dict[EventId, PositionBlockBuilder] = {}
    for sequence_index, sequence in enumerate(encoded_db):
        seen: Dict[EventId, int] = {}
        for position, event in enumerate(sequence):
            if event not in seen and (allowed_events is None or event in allowed_events):
                seen[event] = position
        for event, position in seen.items():
            builder = builders.get(event)
            if builder is None:
                builder = builders[event] = PositionBlockBuilder()
            builder.append(sequence_index, position)
    return {event: builder.build() for event, builder in builders.items()}


def premise_extensions(
    encoded_db: EncodedDatabase,
    projections: PositionBlock,
    allowed_events: Optional[FrozenSet[EventId]] = None,
) -> Dict[EventId, PositionBlock]:
    """Earliest-occurrence projections of every single-event premise extension.

    Scans the projected suffixes once, recording for every candidate
    extension event its earliest position after the current embedding.
    Projections keep their rows in ascending sequence order, so the
    extension columns come out ascending as well.  Shared by the recursive
    premise miner and the unit-based rule search.
    """
    extensions: Dict[EventId, PositionBlockBuilder] = {}
    seq_ids = projections.seq_ids
    positions = projections.positions
    for row in range(len(seq_ids)):
        sequence_index = seq_ids[row]
        position = positions[row]
        sequence = encoded_db[sequence_index]
        seen: Dict[EventId, int] = {}
        for next_position in range(position + 1, len(sequence)):
            event = sequence[next_position]
            if event not in seen and (allowed_events is None or event in allowed_events):
                seen[event] = next_position
        for event, next_position in seen.items():
            builder = extensions.get(event)
            if builder is None:
                builder = extensions[event] = PositionBlockBuilder()
            builder.append(sequence_index, next_position)
    return {event: builder.build() for event, builder in extensions.items()}


def project_premise_extension(
    index: PositionIndex, projections: PositionBlock, event: EventId
) -> PositionBlock:
    """The single-event restriction of :func:`premise_extensions`.

    Row-identical to ``premise_extensions(...)[event]`` but answered with
    one binary search per supporting sequence instead of a suffix scan —
    the work-unit replay path uses this to re-derive a split premise
    node's projections along its path.
    """
    builder = PositionBlockBuilder()
    seq_ids = projections.seq_ids
    positions = projections.positions
    for row in range(len(seq_ids)):
        sequence_index = seq_ids[row]
        next_position = index[sequence_index].first_after(event, positions[row])
        if next_position is not None:
            builder.append(sequence_index, next_position)
    return builder.build()


class PremiseMiner:
    """Enumerate all premises with sequence support at least ``min_s_support``."""

    def __init__(
        self,
        min_s_support: int,
        max_length: Optional[int] = None,
        stats: Optional[MiningStats] = None,
        allowed_events: Optional[FrozenSet[EventId]] = None,
    ) -> None:
        self.min_s_support = max(1, min_s_support)
        self.max_length = max_length
        self.stats = stats if stats is not None else MiningStats()
        self.allowed_events = allowed_events

    def _is_allowed(self, event: EventId) -> bool:
        return self.allowed_events is None or event in self.allowed_events

    def mine(self, encoded_db: EncodedDatabase) -> Iterator[MinedPremise]:
        """Yield every s-frequent premise, depth-first, shortest prefix first."""
        initial = initial_premise_projections(encoded_db, self.allowed_events)
        for event in sorted(initial):
            projections = initial[event]
            if len(projections) < self.min_s_support:
                self.stats.pruned_support += 1
                continue
            yield from self.grow_from_root(encoded_db, event, projections)

    def grow_from_root(
        self,
        encoded_db: EncodedDatabase,
        event: EventId,
        projections: PositionBlock,
    ) -> Iterator[MinedPremise]:
        """Yield the s-frequent premises of one root's subtree, depth-first.

        ``projections`` must be the earliest-occurrence projections of
        ``<event>`` (see :func:`initial_premise_projections`); the parallel
        engine calls this per shard root.
        """
        yield from self._grow(encoded_db, (event,), projections)

    def _grow(
        self,
        encoded_db: EncodedDatabase,
        pattern: Tuple[EventId, ...],
        projections: PositionBlock,
    ) -> Iterator[MinedPremise]:
        self.stats.visited += 1
        yield MinedPremise(pattern, len(projections), projections)

        if self.max_length is not None and len(pattern) >= self.max_length:
            return

        extensions = premise_extensions(encoded_db, projections, self.allowed_events)
        for event in sorted(extensions):
            extended_projections = extensions[event]
            if len(extended_projections) < self.min_s_support:
                self.stats.pruned_support += 1
                continue
            yield from self._grow(encoded_db, pattern + (event,), extended_projections)
