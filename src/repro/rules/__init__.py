"""Recurrent rule mining (Section 5 of the paper).

Public entry points:

* :class:`FullRecurrentRuleMiner` / :func:`mine_all_rules` — the baseline
  emitting every significant rule;
* :class:`NonRedundantRecurrentRuleMiner` / :func:`mine_non_redundant_rules`
  — the paper's non-redundant rule miner;
* :func:`rule_statistics` — the oracle used to validate rule statistics;
* :func:`filter_redundant` — the Definition 5.2 redundancy filter.
"""

from .config import RuleMiningConfig
from .consequent_miner import ConsequentGrower, GrownRule
from .full_miner import FullRecurrentRuleMiner, mine_all_rules
from .nonredundant_miner import NonRedundantRecurrentRuleMiner, mine_non_redundant_rules
from .premise_miner import MinedPremise, PremiseMiner
from .redundancy import filter_redundant, find_redundant
from .result import RuleMiningResult
from .rule import RecurrentRule
from .temporal_points import (
    TemporalPoint,
    earliest_embedding_end,
    is_followed_by,
    rule_statistics,
    temporal_points,
    temporal_points_in_sequence,
)

__all__ = [
    "RuleMiningConfig",
    "ConsequentGrower",
    "GrownRule",
    "FullRecurrentRuleMiner",
    "mine_all_rules",
    "NonRedundantRecurrentRuleMiner",
    "mine_non_redundant_rules",
    "MinedPremise",
    "PremiseMiner",
    "filter_redundant",
    "find_redundant",
    "RuleMiningResult",
    "RecurrentRule",
    "TemporalPoint",
    "earliest_embedding_end",
    "is_followed_by",
    "rule_statistics",
    "temporal_points",
    "temporal_points_in_sequence",
]
