"""Consequent growth for recurrent-rule mining (Steps 2–4 of Section 5).

Given a premise and its temporal points, :class:`ConsequentGrower` explores
the space of consequents depth-first.  Two facts drive the search:

* **Confidence anti-monotonicity (Theorem 3).**  The temporal points of the
  premise satisfied by ``post ++ <e>`` are a subset of those satisfied by
  ``post``, so confidence can only drop along an extension; branches below
  ``min_confidence`` are pruned.
* **Incremental i-support.**  The occurrences of ``pre ++ post ++ <e>`` in a
  sequence are exactly the occurrences of ``e`` after the earliest embedding
  end of ``pre ++ post``; maintaining that end per sequence turns i-support
  into a couple of binary searches per extension.

The alive temporal points of each search node are held as three parallel
``array('i')`` columns (sequence, point position, current greedy match
position) rather than a list of triples: expanding a node appends machine
ints to its children's columns, so the hottest rule-mining loop allocates
no per-point tuples while preserving the exact iteration order (and hence
bit-identical output) of the tuple-based implementation.

The grower serves both miners: the non-redundant miner additionally asks it
to suppress rules *dominated* by one of their own single-event consequent
extensions (same i-support and confidence — redundant by Definition 5.2).
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.blocks import BLOCK_TYPECODE, PositionBlock
from ..core.events import EncodedDatabase, EventId
from ..core.positions import PositionIndex
from ..core.stats import MiningStats
from .config import RuleMiningConfig
from .temporal_points import temporal_points_in_sequence


@dataclass(frozen=True)
class GrownRule:
    """One rule produced by the grower (premise implied by context)."""

    consequent: Tuple[EventId, ...]
    s_support: int
    i_support: int
    confidence: float


class _SearchNode:
    """Mutable state for one consequent in the depth-first search.

    ``point_seqs`` / ``point_positions`` / ``match_positions`` are parallel
    columns over the alive temporal points: the point's sequence, the
    temporal point position itself, and the current greedy match position of
    the consequent after that point.
    """

    __slots__ = ("consequent", "point_seqs", "point_positions", "match_positions",
                 "full_pattern_end", "i_support")

    def __init__(
        self,
        consequent: Tuple[EventId, ...],
        point_seqs: array,
        point_positions: array,
        match_positions: array,
        full_pattern_end: Dict[int, int],
        i_support: int,
    ) -> None:
        self.consequent = consequent
        self.point_seqs = point_seqs
        self.point_positions = point_positions
        self.match_positions = match_positions
        self.full_pattern_end = full_pattern_end
        self.i_support = i_support

    def alive_count(self) -> int:
        return len(self.point_seqs)


class ConsequentGrower:
    """Grow consequents for one premise and yield the resulting rules."""

    def __init__(
        self,
        encoded_db: EncodedDatabase,
        index: PositionIndex,
        premise: Tuple[EventId, ...],
        premise_projections: PositionBlock,
        config: RuleMiningConfig,
        stats: Optional[MiningStats] = None,
    ) -> None:
        self.encoded_db = encoded_db
        self.index = index
        self.premise = premise
        self.config = config
        self.stats = stats if stats is not None else MiningStats()

        self.s_support = len(premise_projections)
        point_seqs = array(BLOCK_TYPECODE)
        point_positions = array(BLOCK_TYPECODE)
        for sequence_index, _ in premise_projections:
            sequence = encoded_db[sequence_index]
            for position in temporal_points_in_sequence(sequence, premise):
                point_seqs.append(sequence_index)
                point_positions.append(position)
        self._point_seqs = point_seqs
        self._point_positions = point_positions
        self.total_points = len(point_seqs)
        self._root_full_end: Dict[int, int] = {
            sequence_index: position for sequence_index, position in premise_projections
        }

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def grow(self, skip_dominated: bool = False) -> Iterator[GrownRule]:
        """Yield every rule of this premise meeting the confidence threshold.

        Rules failing ``min_i_support`` are filtered out (Step 4).  With
        ``skip_dominated`` the grower omits rules whose single-event
        consequent extension preserves both i-support and confidence — those
        are redundant by Definition 5.2 and the extension itself is always
        explored.
        """
        if self.total_points == 0:
            return
        root = _SearchNode(
            consequent=(),
            point_seqs=self._point_seqs,
            point_positions=self._point_positions,
            # At the root the greedy match of the empty consequent sits on
            # the temporal point itself.
            match_positions=array(BLOCK_TYPECODE, self._point_positions),
            full_pattern_end=dict(self._root_full_end),
            i_support=0,
        )
        yield from self._grow(root, skip_dominated)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _grow(self, node: _SearchNode, skip_dominated: bool) -> Iterator[GrownRule]:
        self.stats.visited += 1
        max_length = self.config.max_consequent_length
        at_length_cap = max_length is not None and len(node.consequent) >= max_length
        # Children beyond the length cap can never be emitted, so they must
        # not participate in the dominance check either (a rule may only be
        # suppressed in favour of a rule that stays in the explored space).
        children = {} if at_length_cap else self._expand(node)

        if node.consequent:
            alive = node.alive_count()
            confidence = alive / self.total_points
            dominated = skip_dominated and any(
                child.i_support == node.i_support and child.alive_count() == alive
                for child in children.values()
            )
            if dominated:
                self.stats.pruned_redundancy += 1
            elif node.i_support >= self.config.min_i_support:
                self.stats.emitted += 1
                yield GrownRule(
                    consequent=node.consequent,
                    s_support=self.s_support,
                    i_support=node.i_support,
                    confidence=confidence,
                )

        if at_length_cap:
            return

        min_alive = self.config.min_confidence * self.total_points
        for event in sorted(children):
            child = children[event]
            # Theorem 3: confidence only drops along consequent extensions.
            if child.alive_count() + 1e-9 < min_alive:
                self.stats.pruned_confidence += 1
                continue
            yield from self._grow(child, skip_dominated)

    def _expand(self, node: _SearchNode) -> Dict[EventId, _SearchNode]:
        """Build the single-event extensions of ``node`` in one pass."""
        children: Dict[EventId, _SearchNode] = {}

        # Confidence side: advance the greedy match of each alive temporal
        # point past every event occurring in its remaining suffix.  The
        # first occurrence of each event after the match position is a
        # bisect into the index's per-event occurrence lists — no suffix
        # scan, no per-point first-occurrence dict.  A child's per-point
        # columns receive at most one row per alive point, so the event
        # iteration order within a point never shows in the output.
        point_seqs = node.point_seqs
        point_positions = node.point_positions
        match_positions = node.match_positions
        index = self.index
        last_sequence_index = -1
        table: Dict[EventId, List[int]] = {}
        for row in range(len(point_seqs)):
            sequence_index = point_seqs[row]
            if sequence_index != last_sequence_index:
                table = index[sequence_index].table()
                last_sequence_index = sequence_index
            point = point_positions[row]
            match_position = match_positions[row]
            for event, occurrences in table.items():
                cut = bisect_right(occurrences, match_position)
                if cut == len(occurrences):
                    continue
                position = occurrences[cut]
                child = children.get(event)
                if child is None:
                    child = _SearchNode(
                        consequent=node.consequent + (event,),
                        point_seqs=array(BLOCK_TYPECODE),
                        point_positions=array(BLOCK_TYPECODE),
                        match_positions=array(BLOCK_TYPECODE),
                        full_pattern_end={},
                        i_support=0,
                    )
                    children[event] = child
                child.point_seqs.append(sequence_index)
                child.point_positions.append(point)
                child.match_positions.append(position)

        # i-support side: occurrences of premise ++ consequent ++ <e> are the
        # occurrences of ``e`` after the earliest embedding end of the
        # current full pattern, in every sequence where that pattern embeds.
        for event, child in children.items():
            i_support = 0
            full_end: Dict[int, int] = {}
            for sequence_index, end_position in node.full_pattern_end.items():
                positions = self.index[sequence_index].positions_of(event)
                cut = bisect_right(positions, end_position)
                remaining = len(positions) - cut
                if remaining:
                    i_support += remaining
                    full_end[sequence_index] = positions[cut]
            child.i_support = i_support
            child.full_pattern_end = full_end
        return children
