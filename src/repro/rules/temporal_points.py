"""Temporal points and rule statistics (Definition 5.1).

The *temporal points* of a pattern ``P`` in a sequence ``S`` are the
positions ``j`` such that the prefix of ``S`` ending at ``j`` is a
super-sequence of ``P`` and ``S[j] = last(P)``.  This module provides both a
direct oracle (:func:`temporal_points_in_sequence`) and the helpers the rule
miners use to compute s-support, i-support and confidence.

A convenient characterisation used throughout: once the *earliest* (greedy)
embedding of ``P[:-1]`` in ``S`` is known to end at position ``q``, the
temporal points of ``P`` are exactly the occurrences of ``last(P)`` at
positions strictly greater than ``q``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, NamedTuple, Optional, Sequence as TypingSequence, Tuple

from ..core.errors import PatternError
from ..core.events import EventId
from ..core.pattern import is_subsequence
from ..core.positions import PositionIndex, SequencePositions


class TemporalPoint(NamedTuple):
    """A temporal point: a sequence index and the position of the point."""

    sequence_index: int
    position: int


def earliest_embedding_end(
    sequence: TypingSequence[EventId], pattern: TypingSequence[EventId]
) -> Optional[int]:
    """End position of the greedy (earliest) embedding of ``pattern`` in ``sequence``.

    Returns ``None`` when ``pattern`` is not a subsequence of ``sequence``.
    The empty pattern embeds "before the sequence" and returns ``-1``.
    """
    position = -1
    for event in pattern:
        position += 1
        while position < len(sequence) and sequence[position] != event:
            position += 1
        if position == len(sequence):
            return None
    return position


def temporal_points_in_sequence(
    sequence: TypingSequence[EventId], pattern: TypingSequence[EventId]
) -> List[int]:
    """All temporal points of ``pattern`` in ``sequence`` (Definition 5.1)."""
    if not pattern:
        raise PatternError("temporal points of an empty pattern are undefined")
    prefix_end = earliest_embedding_end(sequence, pattern[:-1])
    if prefix_end is None:
        return []
    last_event = pattern[-1]
    return [
        position
        for position in range(prefix_end + 1, len(sequence))
        if sequence[position] == last_event
    ]


def temporal_points(
    encoded_db: TypingSequence[TypingSequence[EventId]], pattern: TypingSequence[EventId]
) -> List[TemporalPoint]:
    """All temporal points of ``pattern`` across the database."""
    points: List[TemporalPoint] = []
    for sequence_index, sequence in enumerate(encoded_db):
        for position in temporal_points_in_sequence(sequence, pattern):
            points.append(TemporalPoint(sequence_index, position))
    return points


def count_occurrences_in_sequence(
    positions: SequencePositions,
    sequence: TypingSequence[EventId],
    pattern: TypingSequence[EventId],
) -> int:
    """Number of occurrences (temporal points) of ``pattern`` in one sequence."""
    if not pattern:
        raise PatternError("occurrences of an empty pattern are undefined")
    prefix_end = earliest_embedding_end(sequence, pattern[:-1])
    if prefix_end is None:
        return 0
    last_positions = positions.positions_of(pattern[-1])
    return len(last_positions) - bisect_right(last_positions, prefix_end)


def instance_support(
    encoded_db: TypingSequence[TypingSequence[EventId]],
    index: PositionIndex,
    pattern: TypingSequence[EventId],
) -> int:
    """The rule i-support building block: total occurrences of ``pattern`` in the database."""
    total = 0
    for sequence_index, sequence in enumerate(encoded_db):
        total += count_occurrences_in_sequence(index[sequence_index], sequence, pattern)
    return total


def sequence_support(
    encoded_db: TypingSequence[TypingSequence[EventId]], pattern: TypingSequence[EventId]
) -> int:
    """Number of sequences containing ``pattern`` as a subsequence (rule s-support)."""
    return sum(1 for sequence in encoded_db if is_subsequence(pattern, sequence))


def is_followed_by(
    sequence: TypingSequence[EventId], point: int, consequent: TypingSequence[EventId]
) -> bool:
    """Whether the suffix strictly after ``point`` contains ``consequent`` as a subsequence."""
    return is_subsequence(consequent, sequence[point + 1 :])


def rule_statistics(
    encoded_db: TypingSequence[TypingSequence[EventId]],
    index: PositionIndex,
    premise: TypingSequence[EventId],
    consequent: TypingSequence[EventId],
) -> Tuple[int, int, float]:
    """Oracle computation of ``(s_support, i_support, confidence)`` for a rule.

    Used by the verification layer and by the tests to validate the
    incremental statistics maintained inside the miners.  Confidence is 0.0
    when the premise never occurs.
    """
    premise = tuple(premise)
    consequent = tuple(consequent)
    s_support = sequence_support(encoded_db, premise)
    i_support = instance_support(encoded_db, index, premise + consequent)
    points = temporal_points(encoded_db, premise)
    if not points:
        return (s_support, i_support, 0.0)
    followed = sum(
        1
        for point in points
        if is_followed_by(encoded_db[point.sequence_index], point.position, consequent)
    )
    return (s_support, i_support, followed / len(points))
