"""Shared driver for the full and non-redundant recurrent-rule miners.

Both miners follow the five-step recipe of Section 5: enumerate s-frequent
premises (Theorem 2 pruning), compute their temporal points, grow consequents
with confidence pruning (Theorem 3), filter by i-support, and finally filter
redundant rules.  The only differences between the two miners are whether the
consequent grower suppresses dominated rules early and whether the final
Definition 5.2 sweep is applied; both choices live in class attributes.

Like the pattern miners, the premise search is *root-parallel*: the subtree
below each single-event premise is independent, so the miners implement the
engine's miner protocol (``build_context`` / ``plan_roots`` / ``mine_root``)
and an :class:`~repro.engine.backend.ExecutionBackend` decides whether roots
run serially or on a worker pool.  The Definition 5.2 sweep is global, so it
always runs in the coordinating process after the deterministic merge.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from ..core.blocks import PositionBlock
from ..core.events import EncodedDatabase, EventId
from ..core.sequence import SequenceDatabase, absolute_support
from ..core.stats import MiningStats
from ..engine import (
    ExecutionBackend,
    LazyIndexContext,
    PlanResult,
    SerialBackend,
    ShardRunner,
    plan_weighted_roots,
    run_sharded,
)
from .config import RuleMiningConfig
from .consequent_miner import ConsequentGrower
from .premise_miner import PremiseMiner, initial_premise_projections
from .redundancy import filter_redundant
from .result import RuleMiningResult
from .rule import RecurrentRule


class RuleRecord(NamedTuple):
    """An emitted rule in encoded (event-id) form, as produced by workers."""

    premise: Tuple[EventId, ...]
    consequent: Tuple[EventId, ...]
    s_support: int
    i_support: int
    confidence: float


class RuleSearchContext(LazyIndexContext):
    """Per-run search state, built once per process by the engine.

    The index and the root premise projections are materialised lazily:
    the coordinating process only plans (a counts-only pass), so only the
    processes that actually mine pay for them — each exactly once,
    reused across all the shards that process executes.
    """

    __slots__ = ("min_s_support", "allowed_events", "_initial")

    def __init__(
        self,
        encoded: EncodedDatabase,
        min_s_support: int,
        allowed_events: Optional[FrozenSet[EventId]],
    ) -> None:
        super().__init__(encoded)
        self.min_s_support = min_s_support
        self.allowed_events = allowed_events
        self._initial: Optional[Dict[EventId, PositionBlock]] = None

    @property
    def initial(self) -> Dict[EventId, PositionBlock]:
        if self._initial is None:
            self._initial = initial_premise_projections(self.encoded, self.allowed_events)
        return self._initial


class RecurrentRuleMinerBase:
    """Template-method base class for the recurrent-rule miners."""

    #: suppress rules dominated by their own consequent extension during growth
    skip_dominated = False
    #: apply the final Definition 5.2 redundancy sweep
    apply_final_redundancy_filter = False
    #: marker copied to the result object
    non_redundant_only = False

    def __init__(
        self, config: RuleMiningConfig, backend: Optional[ExecutionBackend] = None
    ) -> None:
        self.config = config
        self.backend = backend

    def mine(
        self, database: SequenceDatabase, backend: Optional[ExecutionBackend] = None
    ) -> RuleMiningResult:
        """Mine the database and return the (full or non-redundant) rule set.

        ``backend`` (or the instance-level backend passed to the
        constructor) selects where the search runs; the result does not
        depend on the choice.
        """
        stats = MiningStats()
        stats.start()

        min_s_support = database.absolute_support(self.config.min_s_support)
        result = RuleMiningResult(
            stats=stats,
            min_s_support=min_s_support,
            min_i_support=self.config.min_i_support,
            min_confidence=self.config.min_confidence,
            non_redundant_only=self.non_redundant_only,
        )

        vocabulary = database.vocabulary
        extras: Dict[str, Any] = {}
        if self.config.allowed_premise_events is not None:
            extras["allowed_event_ids"] = frozenset(
                vocabulary.id_of(label)
                for label in self.config.allowed_premise_events
                if label in vocabulary
            )

        chosen = backend or self.backend or SerialBackend()
        runner = ShardRunner(self, database.encoded, extras)
        records, search_stats = run_sharded(chosen, runner)
        stats.merge_counters(search_stats)

        for record in records:
            result.rules.append(
                RecurrentRule(
                    premise=vocabulary.decode(record.premise),
                    consequent=vocabulary.decode(record.consequent),
                    s_support=record.s_support,
                    i_support=record.i_support,
                    confidence=record.confidence,
                )
            )

        if self.apply_final_redundancy_filter:
            kept, dropped = filter_redundant(result.rules)
            result.rules = kept
            stats.pruned_redundancy += len(dropped)

        stats.stop()
        return result

    # ------------------------------------------------------------------ #
    # Engine miner protocol
    # ------------------------------------------------------------------ #
    def build_context(
        self, encoded: EncodedDatabase, extras: Dict[str, Any]
    ) -> RuleSearchContext:
        """Build the per-process search context (index + root projections)."""
        allowed_events = extras.get("allowed_event_ids")
        return RuleSearchContext(
            encoded=encoded,
            min_s_support=absolute_support(self.config.min_s_support, len(encoded)),
            allowed_events=allowed_events,
        )

    def plan_roots(self, context: RuleSearchContext) -> PlanResult:
        """Frequent single-event premises, weighted by sequence support.

        A counts-only database pass: the number of sequences containing an
        event equals its root projection count, so the coordinator never
        materialises the projection lists the workers will build for
        themselves.
        """
        allowed = context.allowed_events
        counts: Counter = Counter()
        for sequence in context.encoded:
            distinct = set(sequence)
            if allowed is not None:
                distinct &= allowed
            counts.update(distinct)
        return plan_weighted_roots(counts, context.min_s_support)

    def mine_root(
        self, context: RuleSearchContext, root: EventId, stats: MiningStats
    ) -> List[RuleRecord]:
        """Mine every rule whose premise starts with ``root``."""
        premise_miner = PremiseMiner(
            min_s_support=context.min_s_support,
            max_length=self.config.max_premise_length,
            stats=stats,
            allowed_events=context.allowed_events,
        )
        records: List[RuleRecord] = []
        for premise in premise_miner.grow_from_root(
            context.encoded, root, context.initial[root]
        ):
            grower = ConsequentGrower(
                encoded_db=context.encoded,
                index=context.index,
                premise=premise.pattern,
                premise_projections=premise.projections,
                config=self.config,
                stats=stats,
            )
            for grown in grower.grow(skip_dominated=self.skip_dominated):
                records.append(
                    RuleRecord(
                        premise=premise.pattern,
                        consequent=grown.consequent,
                        s_support=grown.s_support,
                        i_support=grown.i_support,
                        confidence=grown.confidence,
                    )
                )
        return records
