"""Shared driver for the full and non-redundant recurrent-rule miners.

Both miners follow the five-step recipe of Section 5: enumerate s-frequent
premises (Theorem 2 pruning), compute their temporal points, grow consequents
with confidence pruning (Theorem 3), filter by i-support, and finally filter
redundant rules.  The only differences between the two miners are whether the
consequent grower suppresses dominated rules early and whether the final
Definition 5.2 sweep is applied; both choices live in class attributes.

Like the pattern miners, the premise search is *root-parallel* and
*unit-shardable*: the subtree below each single-event premise is
independent, and any frontier premise inside a subtree can be carved off
as a :class:`~repro.engine.sharding.WorkUnit` keyed by its ``(root,
split-path)`` — the thief re-derives the premise projections with one
binary search per supporting sequence per path step.  A premise's
consequent growth — the heavy phase of rule mining — can likewise leave as
its own ``consequent`` unit when the pool runs hungry.  The miners
implement the engine's protocol (``build_context`` / ``plan_roots`` /
``mine_root`` for the static shard path, ``initial_units`` / ``mine_unit``
/ ``resolve_units`` for the work-stealing path); merged output is
bit-identical either way because the serial emission order equals the
ascending lexicographic order of ``(premise, consequent)`` keys.  The
Definition 5.2 sweep is global, so it always runs in the coordinating
process after the deterministic merge.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from ..core.blocks import PositionBlock
from ..core.errors import ConfigurationError
from ..core.events import EncodedDatabase, EventId
from ..core.sequence import SequenceDatabase, absolute_support
from ..core.stats import MiningStats
from ..engine import (
    NULL_SPLITTER,
    ExecutionBackend,
    LazyIndexContext,
    PlanResult,
    SerialBackend,
    ShardRunner,
    UnitOutcome,
    WorkUnit,
    plan_weighted_roots,
    run_sharded,
)
from ..engine.stealing import FrontierFrame, drive_split_subtree
from .config import RuleMiningConfig
from .consequent_miner import ConsequentGrower
from .premise_miner import (
    premise_extensions,
    initial_premise_projections,
    project_premise_extension,
)
from .redundancy import filter_redundant
from .result import RuleMiningResult
from .rule import RecurrentRule

#: Work-unit kinds of the rule search: ``rules`` mines a whole premise
#: subtree (consequent growth included), ``consequent`` runs the deferred
#: consequent growth of a single premise.
RULES_UNIT = "rules"
CONSEQUENT_UNIT = "consequent"


class RuleRecord(NamedTuple):
    """An emitted rule in encoded (event-id) form, as produced by workers."""

    premise: Tuple[EventId, ...]
    consequent: Tuple[EventId, ...]
    s_support: int
    i_support: int
    confidence: float


class RuleSearchContext(LazyIndexContext):
    """Per-run search state, built once per process by the engine.

    The index and the root premise projections are materialised lazily:
    the coordinating process only plans (a counts-only pass), so only the
    processes that actually mine pay for them — each exactly once,
    reused across all the shards that process executes.
    """

    __slots__ = ("min_s_support", "allowed_events", "_initial")

    def __init__(
        self,
        encoded: EncodedDatabase,
        min_s_support: int,
        allowed_events: Optional[FrozenSet[EventId]],
    ) -> None:
        super().__init__(encoded)
        self.min_s_support = min_s_support
        self.allowed_events = allowed_events
        self._initial: Optional[Dict[EventId, PositionBlock]] = None

    @property
    def initial(self) -> Dict[EventId, PositionBlock]:
        if self._initial is None:
            self._initial = initial_premise_projections(self.encoded, self.allowed_events)
        return self._initial

    def absorb_appended(self, new_sequences: Any) -> None:
        """Extend the live index with appended sequences (incremental path).

        The root projection cache is invalidated rather than extended: it
        is rebuilt lazily from the grown database on next use, while the
        position index — the expensive part — grows in place.
        """
        super().absorb_appended(new_sequences)
        self._initial = None


class RecurrentRuleMinerBase:
    """Template-method base class for the recurrent-rule miners."""

    #: suppress rules dominated by their own consequent extension during growth
    skip_dominated = False
    #: apply the final Definition 5.2 redundancy sweep
    apply_final_redundancy_filter = False
    #: marker copied to the result object
    non_redundant_only = False

    def __init__(
        self, config: RuleMiningConfig, backend: Optional[ExecutionBackend] = None
    ) -> None:
        self.config = config
        self.backend = backend

    def mine(
        self, database: SequenceDatabase, backend: Optional[ExecutionBackend] = None
    ) -> RuleMiningResult:
        """Mine the database and return the (full or non-redundant) rule set.

        ``backend`` (or the instance-level backend passed to the
        constructor) selects where the search runs; the result does not
        depend on the choice.
        """
        stats = MiningStats()
        stats.start()

        chosen = backend or self.backend or SerialBackend()
        runner = ShardRunner(self, database.encoded, self.runner_extras(database))
        records, search_stats = run_sharded(chosen, runner)
        stats.merge_counters(search_stats)

        result = self.collect_result(database, records, stats)
        stats.stop()
        return result

    def collect_result(
        self,
        database: SequenceDatabase,
        records: List["RuleRecord"],
        stats: MiningStats,
    ) -> RuleMiningResult:
        """Decode merged records into the public result (coordinator side).

        The global Definition 5.2 redundancy sweep belongs here — it
        compares rules across premises, so it must always run over the
        *complete* merged record set.  Factored out of :meth:`mine` so the
        incremental miner can rebuild a result from cached-plus-fresh
        records through the exact same path a from-scratch mine uses.
        """
        result = RuleMiningResult(
            stats=stats,
            min_s_support=self.resolved_support_threshold(database),
            min_i_support=self.config.min_i_support,
            min_confidence=self.config.min_confidence,
            non_redundant_only=self.non_redundant_only,
        )
        vocabulary = database.vocabulary
        for record in records:
            result.rules.append(
                RecurrentRule(
                    premise=vocabulary.decode(record.premise),
                    consequent=vocabulary.decode(record.consequent),
                    s_support=record.s_support,
                    i_support=record.i_support,
                    confidence=record.confidence,
                )
            )
        if self.apply_final_redundancy_filter:
            kept, dropped = filter_redundant(result.rules)
            result.rules = kept
            stats.pruned_redundancy += len(dropped)
        return result

    # ------------------------------------------------------------------ #
    # Incremental mining protocol
    # ------------------------------------------------------------------ #
    def resolved_support_threshold(self, database: SequenceDatabase) -> int:
        """The absolute sequence-support threshold against the current size."""
        return database.absolute_support(self.config.min_s_support)

    def runner_extras(self, database: SequenceDatabase) -> Dict[str, Any]:
        """Resolve the configured premise label filter to current event ids."""
        extras: Dict[str, Any] = {}
        if self.config.allowed_premise_events is not None:
            vocabulary = database.vocabulary
            extras["allowed_event_ids"] = frozenset(
                vocabulary.id_of(label)
                for label in self.config.allowed_premise_events
                if label in vocabulary
            )
        return extras

    @staticmethod
    def record_root(record: "RuleRecord") -> EventId:
        """The first-level root that produced ``record`` (premise head)."""
        return record.premise[0]

    @staticmethod
    def record_sort_key(record: "RuleRecord") -> Tuple[Tuple[EventId, ...], ...]:
        """The canonical merge key: serial order == (premise, consequent)."""
        return (record.premise, record.consequent)

    # ------------------------------------------------------------------ #
    # Engine miner protocol
    # ------------------------------------------------------------------ #
    def build_context(
        self, encoded: EncodedDatabase, extras: Dict[str, Any]
    ) -> RuleSearchContext:
        """Build the per-process search context (index + root projections)."""
        allowed_events = extras.get("allowed_event_ids")
        return RuleSearchContext(
            encoded=encoded,
            min_s_support=absolute_support(self.config.min_s_support, len(encoded)),
            allowed_events=allowed_events,
        )

    def plan_roots(self, context: RuleSearchContext) -> PlanResult:
        """Frequent single-event premises, weighted by sequence support.

        A counts-only database pass: the number of sequences containing an
        event equals its root projection count, so the coordinator never
        materialises the projection lists the workers will build for
        themselves.
        """
        allowed = context.allowed_events
        counts: Counter = Counter()
        for sequence in context.encoded:
            distinct = set(sequence)
            if allowed is not None:
                distinct &= allowed
            counts.update(distinct)
        return plan_weighted_roots(counts, context.min_s_support)

    def mine_root(
        self, context: RuleSearchContext, root: EventId, stats: MiningStats
    ) -> List[RuleRecord]:
        """Mine every rule whose premise starts with ``root``.

        The static shard path: one rules unit, never split.
        """
        return self.mine_unit(
            context, WorkUnit(RULES_UNIT, root, (root,)), stats, NULL_SPLITTER
        )

    def initial_units(
        self, context: RuleSearchContext, plan: PlanResult
    ) -> List[WorkUnit]:
        """One rules unit per frequent root premise, weighted by s-support."""
        return [
            WorkUnit(RULES_UNIT, root, (root,), weight) for root, weight in plan.roots
        ]

    def mine_unit(
        self,
        context: RuleSearchContext,
        unit: WorkUnit,
        stats: MiningStats,
        splitter: Any,
    ) -> List[RuleRecord]:
        """Execute one work unit: a premise subtree or one deferred grower."""
        records: List[RuleRecord] = []
        if unit.kind == CONSEQUENT_UNIT:
            projections = self._replay_projections(context, unit.path, stats)
            self._grow_consequents(context, unit.path, projections, records, stats)
            return records
        if unit.kind != RULES_UNIT:
            raise ConfigurationError(f"unknown rule work-unit kind {unit.kind!r}")
        projections = self._replay_projections(context, unit.path, stats)

        def visit_child(
            frame: FrontierFrame, event: EventId, child_projections: PositionBlock
        ) -> "Optional[FrontierFrame]":
            return self._visit_premise(
                context, frame.key + (event,), child_projections, records, stats, splitter
            )

        drive_split_subtree(
            self._visit_premise(context, unit.path, projections, records, stats, splitter),
            visit_child,
            context.min_s_support,
            splitter,
            stats,
            RULES_UNIT,
        )
        return records

    def resolve_units(self, outcomes: List[UnitOutcome]) -> List[RuleRecord]:
        """Reassemble unit outcomes into the canonical serial record order.

        Premises are emitted depth-first over children in ascending event
        order and each premise's consequents likewise, so the serial rule
        order is exactly the ascending lexicographic order of the
        ``(premise, consequent)`` pairs — whichever unit produced each.
        """
        records: List[RuleRecord] = []
        for outcome in outcomes:
            records.extend(outcome.records)
        records.sort(key=lambda record: (record.premise, record.consequent))
        return records

    # ------------------------------------------------------------------ #
    # Unit-search internals
    # ------------------------------------------------------------------ #
    def _replay_projections(
        self,
        context: RuleSearchContext,
        path: Tuple[EventId, ...],
        stats: MiningStats,
    ) -> PositionBlock:
        """Re-derive a split premise's projections by replaying its path."""
        projections = context.initial[path[0]]
        for event in path[1:]:
            projections = project_premise_extension(context.index, projections, event)
            stats.bump("steal_replayed_rows", len(projections))
        return projections

    def _visit_premise(
        self,
        context: RuleSearchContext,
        premise: Tuple[EventId, ...],
        projections: PositionBlock,
        records: List[RuleRecord],
        stats: MiningStats,
        splitter: Any,
    ) -> "Optional[FrontierFrame]":
        """Visit one premise node: grow (or defer) its rules, open its frame."""
        stats.visited += 1
        # Consequent growth is the heavy phase behind each premise; when
        # the pool is hungry it leaves as its own unit, with the premise's
        # supporting-sequence count as the cost hint.
        if splitter.should_offload(len(projections)):
            splitter.submit(
                [WorkUnit(CONSEQUENT_UNIT, premise[0], premise, len(projections))]
            )
            stats.bump("consequent_offloads")
        else:
            self._grow_consequents(context, premise, projections, records, stats)

        if (
            self.config.max_premise_length is not None
            and len(premise) >= self.config.max_premise_length
        ):
            return None
        extensions = premise_extensions(
            context.encoded, projections, context.allowed_events
        )
        return FrontierFrame(premise, None, extensions, sorted(extensions))

    def _grow_consequents(
        self,
        context: RuleSearchContext,
        premise: Tuple[EventId, ...],
        projections: PositionBlock,
        records: List[RuleRecord],
        stats: MiningStats,
    ) -> None:
        """Run the consequent grower for one premise, appending its rules."""
        grower = ConsequentGrower(
            encoded_db=context.encoded,
            index=context.index,
            premise=premise,
            premise_projections=projections,
            config=self.config,
            stats=stats,
        )
        for grown in grower.grow(skip_dominated=self.skip_dominated):
            records.append(
                RuleRecord(
                    premise=premise,
                    consequent=grown.consequent,
                    s_support=grown.s_support,
                    i_support=grown.i_support,
                    confidence=grown.confidence,
                )
            )
