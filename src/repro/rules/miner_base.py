"""Shared driver for the full and non-redundant recurrent-rule miners.

Both miners follow the five-step recipe of Section 5: enumerate s-frequent
premises (Theorem 2 pruning), compute their temporal points, grow consequents
with confidence pruning (Theorem 3), filter by i-support, and finally filter
redundant rules.  The only differences between the two miners are whether the
consequent grower suppresses dominated rules early and whether the final
Definition 5.2 sweep is applied; both choices live in class attributes.
"""

from __future__ import annotations

from ..core.positions import PositionIndex
from ..core.sequence import SequenceDatabase
from ..core.stats import MiningStats
from .config import RuleMiningConfig
from .consequent_miner import ConsequentGrower
from .premise_miner import PremiseMiner
from .redundancy import filter_redundant
from .result import RuleMiningResult
from .rule import RecurrentRule


class RecurrentRuleMinerBase:
    """Template-method base class for the recurrent-rule miners."""

    #: suppress rules dominated by their own consequent extension during growth
    skip_dominated = False
    #: apply the final Definition 5.2 redundancy sweep
    apply_final_redundancy_filter = False
    #: marker copied to the result object
    non_redundant_only = False

    def __init__(self, config: RuleMiningConfig) -> None:
        self.config = config

    def mine(self, database: SequenceDatabase) -> RuleMiningResult:
        """Mine the database and return the (full or non-redundant) rule set."""
        stats = MiningStats()
        stats.start()

        min_s_support = database.absolute_support(self.config.min_s_support)
        result = RuleMiningResult(
            stats=stats,
            min_s_support=min_s_support,
            min_i_support=self.config.min_i_support,
            min_confidence=self.config.min_confidence,
            non_redundant_only=self.non_redundant_only,
        )

        encoded = database.encoded
        index = PositionIndex(encoded)
        vocabulary = database.vocabulary

        allowed_events = None
        if self.config.allowed_premise_events is not None:
            allowed_events = frozenset(
                vocabulary.id_of(label)
                for label in self.config.allowed_premise_events
                if label in vocabulary
            )
        premise_miner = PremiseMiner(
            min_s_support=min_s_support,
            max_length=self.config.max_premise_length,
            stats=stats,
            allowed_events=allowed_events,
        )
        for premise in premise_miner.mine(encoded):
            grower = ConsequentGrower(
                encoded_db=encoded,
                index=index,
                premise=premise.pattern,
                premise_projections=premise.projections,
                config=self.config,
                stats=stats,
            )
            premise_labels = vocabulary.decode(premise.pattern)
            for grown in grower.grow(skip_dominated=self.skip_dominated):
                result.rules.append(
                    RecurrentRule(
                        premise=premise_labels,
                        consequent=vocabulary.decode(grown.consequent),
                        s_support=grown.s_support,
                        i_support=grown.i_support,
                        confidence=grown.confidence,
                    )
                )

        if self.apply_final_redundancy_filter:
            kept, dropped = filter_redundant(result.rules)
            result.rules = kept
            stats.pruned_redundancy += len(dropped)

        stats.stop()
        return result
