"""Result container for recurrent-rule mining."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence as TypingSequence

from ..core.events import EventLabel
from ..core.stats import MiningStats
from .rule import RecurrentRule


@dataclass
class RuleMiningResult:
    """The outcome of one run of a recurrent-rule miner."""

    rules: List[RecurrentRule] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)
    min_s_support: int = 0
    min_i_support: int = 1
    min_confidence: float = 0.0
    non_redundant_only: bool = False

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[RecurrentRule]:
        return iter(self.rules)

    def find(
        self,
        premise: TypingSequence[EventLabel],
        consequent: TypingSequence[EventLabel],
    ) -> Optional[RecurrentRule]:
        """The mined rule with exactly this premise and consequent, if any."""
        signature = (tuple(premise), tuple(consequent))
        for rule in self.rules:
            if rule.signature() == signature:
                return rule
        return None

    def contains(
        self,
        premise: TypingSequence[EventLabel],
        consequent: TypingSequence[EventLabel],
    ) -> bool:
        """Whether the exact rule appears in the result."""
        return self.find(premise, consequent) is not None

    def rules_with_premise(self, premise: TypingSequence[EventLabel]) -> List[RecurrentRule]:
        """All mined rules whose premise equals ``premise``."""
        target = tuple(premise)
        return [rule for rule in self.rules if rule.premise == target]

    def sorted_by_confidence(self, descending: bool = True) -> List[RecurrentRule]:
        """Rules sorted by (confidence, i-support, total length)."""
        return sorted(
            self.rules,
            key=lambda rule: (rule.confidence, rule.i_support, len(rule)),
            reverse=descending,
        )

    def longest(self) -> Optional[RecurrentRule]:
        """The rule with the most events (ties broken by confidence)."""
        if not self.rules:
            return None
        return max(self.rules, key=lambda rule: (len(rule), rule.confidence))

    def as_rows(self) -> List[Dict[str, object]]:
        """Tabular representation used by reports and benchmarks."""
        return [rule.as_dict() for rule in self.sorted_by_confidence()]
