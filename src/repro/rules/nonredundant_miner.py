"""Mining the *non-redundant* set of significant recurrent rules (Section 5).

The non-redundant miner differs from the full miner in two places:

* during consequent growth it never emits a rule that one of its own
  single-event consequent extensions dominates (same i-support and
  confidence) — such rules are redundant by Definition 5.2, and the
  dominating extension is always explored, so no information is lost;
* after mining it applies the full Definition 5.2 sweep, which also removes
  rules dominated across different premises (e.g. a rule whose shorter
  premise / longer consequent variant carries the same statistics).
"""

from __future__ import annotations

from typing import Optional

from ..core.sequence import SequenceDatabase
from ..engine import ExecutionBackend
from .config import RuleMiningConfig
from .miner_base import RecurrentRuleMinerBase
from .result import RuleMiningResult


class NonRedundantRecurrentRuleMiner(RecurrentRuleMinerBase):
    """Emit only non-redundant significant recurrent rules.

    Example
    -------
    >>> from repro import SequenceDatabase
    >>> db = SequenceDatabase.from_sequences([
    ...     ["lock", "use", "unlock"],
    ...     ["lock", "unlock", "lock", "unlock"],
    ... ])
    >>> config = RuleMiningConfig(min_s_support=2, min_confidence=1.0)
    >>> rules = NonRedundantRecurrentRuleMiner(config).mine(db)
    >>> all_rules = FullRecurrentRuleMiner(config).mine(db)  # doctest: +SKIP
    """

    skip_dominated = True
    apply_final_redundancy_filter = True
    non_redundant_only = True


def mine_non_redundant_rules(
    database: SequenceDatabase,
    min_s_support: float = 2.0,
    min_i_support: int = 1,
    min_confidence: float = 0.5,
    backend: Optional[ExecutionBackend] = None,
    **kwargs: object,
) -> RuleMiningResult:
    """Convenience wrapper: mine the non-redundant set of significant rules."""
    config = RuleMiningConfig(
        min_s_support=min_s_support,
        min_i_support=min_i_support,
        min_confidence=min_confidence,
        **kwargs,  # type: ignore[arg-type]
    )
    return NonRedundantRecurrentRuleMiner(config).mine(database, backend=backend)
