"""The recurrent-rule value type (Section 5).

A recurrent rule ``pre -> post`` states: *whenever the series of events*
``pre`` *has just occurred at a temporal point, eventually the series of
events* ``post`` *occurs*.  Each rule carries the three statistics the paper
attaches to it:

* **s-support** — the number of sequences in which the premise occurs;
* **i-support** — the number of occurrences (temporal points) of
  ``pre ++ post`` in the whole database;
* **confidence** — the fraction of temporal points of ``pre`` that are
  eventually followed by ``post``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.errors import PatternError
from ..core.events import EventLabel
from ..core.pattern import concat, format_pattern, is_subsequence


@dataclass(frozen=True)
class RecurrentRule:
    """A mined recurrent rule ``premise -> consequent`` with its statistics."""

    premise: Tuple[EventLabel, ...]
    consequent: Tuple[EventLabel, ...]
    s_support: int
    i_support: int
    confidence: float

    def __post_init__(self) -> None:
        if not self.premise:
            raise PatternError("a recurrent rule needs a non-empty premise")
        if not self.consequent:
            raise PatternError("a recurrent rule needs a non-empty consequent")

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> Tuple[EventLabel, ...]:
        """The concatenation ``premise ++ consequent`` used by the redundancy check."""
        return concat(self.premise, self.consequent)

    def __len__(self) -> int:
        return len(self.premise) + len(self.consequent)

    def __str__(self) -> str:
        return (
            f"{format_pattern(self.premise)} -> {format_pattern(self.consequent)} "
            f"(s-sup={self.s_support}, i-sup={self.i_support}, conf={self.confidence:.3f})"
        )

    def signature(self) -> Tuple[Tuple[EventLabel, ...], Tuple[EventLabel, ...]]:
        """The ``(premise, consequent)`` pair identifying the rule."""
        return (self.premise, self.consequent)

    # ------------------------------------------------------------------ #
    # Redundancy (Definition 5.2)
    # ------------------------------------------------------------------ #
    def same_statistics(self, other: "RecurrentRule") -> bool:
        """Whether both rules share s-support, i-support and confidence."""
        return (
            self.s_support == other.s_support
            and self.i_support == other.i_support
            and abs(self.confidence - other.confidence) < 1e-12
        )

    def is_redundant_with_respect_to(self, other: "RecurrentRule") -> bool:
        """Definition 5.2: is ``self`` made redundant by ``other``?

        ``self`` is redundant when ``other`` has the same statistics and the
        concatenation of ``self`` is a subsequence of the concatenation of
        ``other``; when the concatenations are identical the rule with the
        longer premise is the redundant one (the tie-break retains the rule
        with the shorter premise and longer consequent).
        """
        if self.signature() == other.signature():
            return False
        if not self.same_statistics(other):
            return False
        own, others = self.events, other.events
        if own == others:
            return len(self.premise) > len(other.premise)
        return is_subsequence(own, others)

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def to_ltl(self) -> str:
        """The rule rendered as an LTL formula (Table 2)."""
        from ..ltl.translate import rule_to_ltl

        return str(rule_to_ltl(self.premise, self.consequent))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "premise": list(self.premise),
            "consequent": list(self.consequent),
            "s_support": self.s_support,
            "i_support": self.i_support,
            "confidence": self.confidence,
        }
