"""Store integrity auditor — the engine behind ``repro fsck``.

:func:`audit_store` walks everything a :class:`~repro.ingest.store.TraceStore`
directory can hold and classifies what it finds:

* **corruption** — the store's promises are broken and no automatic
  repair is safe: an unreadable manifest, a data file shorter than the
  manifest requires, or a batch payload whose re-hashed chained
  fingerprint no longer matches the manifest.  Exit code 2.
* **issues** — recoverable debris a crash can legitimately leave behind:
  a torn data-file tail past the last committed batch, stranded ``*.tmp``
  files from interrupted atomic writes, an orphaned data file from an
  interrupted compaction, incremental caches or checkpoint directories
  keyed to a fingerprint outside the store's current lineage, and torn
  checkpoint-journal tails.  With ``repair=True`` (the default) they are
  fixed in place.  Exit code 1 — issues were *found*, whether or not they
  were repaired, so operators notice even in ``--no-repair`` mode.
* nothing — exit code 0.

The checks mirror the writers: the chained SHA-256 re-hash retraces
``TraceStore._append_batch_unsaved``, cache validation retraces
``IncrementalMiner._load_persisted_cache``, and checkpoint validation
retraces ``MiningCheckpoint`` identity matching — if a writer's invariant
changes, its audit lives here and must change with it.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..ingest.store import DATA_NAME, MANIFEST_NAME, MANIFEST_VERSION, BatchInfo
from . import checkpoint as checkpoint_format
from .journal import read_frames

PathLike = Union[str, Path]

EXIT_CLEAN = 0
EXIT_REPAIRED = 1
EXIT_CORRUPT = 2

_HASH_CHUNK = 1 << 20


@dataclass
class AuditReport:
    """What :func:`audit_store` found (and did) in one store directory."""

    directory: Path
    issues: List[str] = field(default_factory=list)
    repairs: List[str] = field(default_factory=list)
    corruption: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.corruption:
            return EXIT_CORRUPT
        if self.issues:
            return EXIT_REPAIRED
        return EXIT_CLEAN

    def lines(self) -> List[str]:
        """Human-readable findings, worst first."""
        out = [f"corrupt: {finding}" for finding in self.corruption]
        out += [f"issue: {finding}" for finding in self.issues]
        out += [f"repaired: {action}" for action in self.repairs]
        return out


def audit_store(directory: PathLike, *, repair: bool = True) -> AuditReport:
    """Audit (and optionally repair) a trace-store directory."""
    directory = Path(directory)
    report = AuditReport(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        report.corruption.append(f"no store manifest at {manifest_path}")
        return report
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        report.corruption.append(f"unreadable store manifest: {error}")
        return report
    if not isinstance(payload, dict) or payload.get("version") != MANIFEST_VERSION:
        report.corruption.append("unsupported store manifest version")
        return report
    try:
        batches = [BatchInfo.from_dict(entry) for entry in payload.get("batches", [])]
    except (KeyError, TypeError, ValueError) as error:
        report.corruption.append(f"malformed batch entry in manifest: {error}")
        return report

    data_file = str(payload.get("data_file", DATA_NAME))
    data_path = directory / data_file
    _audit_payload_chain(report, data_path, batches, repair=repair)
    _audit_stray_temporaries(report, directory, repair=repair)
    _audit_orphan_data_files(report, directory, data_file, repair=repair)
    chain = {batch.fingerprint for batch in batches}
    _audit_caches(report, directory, chain, len(batches), batches, repair=repair)
    _audit_checkpoints(report, directory, chain, repair=repair)
    return report


# ---------------------------------------------------------------------- #
# Individual checks
# ---------------------------------------------------------------------- #
def _audit_payload_chain(
    report: AuditReport, data_path: Path, batches: List[BatchInfo], *, repair: bool
) -> None:
    """Re-hash every batch payload and re-derive the fingerprint chain."""
    expected = batches[-1].offset + batches[-1].nbytes if batches else 0
    actual = data_path.stat().st_size if data_path.exists() else 0
    if actual < expected:
        report.corruption.append(
            f"data file {data_path.name} is {actual} bytes, "
            f"manifest requires at least {expected}"
        )
        return
    previous = ""
    if batches:
        with open(data_path, "rb") as handle:
            for batch in batches:
                handle.seek(batch.offset)
                digest = hashlib.sha256()
                remaining = batch.nbytes
                while remaining:
                    chunk = handle.read(min(_HASH_CHUNK, remaining))
                    if not chunk:
                        break
                    digest.update(chunk)
                    remaining -= len(chunk)
                derived = hashlib.sha256(
                    previous.encode("ascii") + digest.digest()
                ).hexdigest()
                if derived != batch.fingerprint:
                    report.corruption.append(
                        f"batch {batch.index} payload does not re-hash to its "
                        f"chained fingerprint (expected {batch.fingerprint[:12]}…, "
                        f"got {derived[:12]}…)"
                    )
                    return
                previous = batch.fingerprint
    if actual > expected:
        report.issues.append(
            f"torn tail: data file {data_path.name} has {actual - expected} "
            f"bytes past the last committed batch"
        )
        if repair:
            with open(data_path, "r+b") as handle:
                handle.truncate(expected)
            report.repairs.append(f"truncated {data_path.name} to {expected} bytes")


def _audit_stray_temporaries(report: AuditReport, directory: Path, *, repair: bool) -> None:
    """Leftover ``*.tmp`` files from interrupted atomic writes."""
    for stray in sorted(directory.glob("*.tmp")):
        report.issues.append(f"stranded temporary file {stray.name}")
        if repair:
            stray.unlink(missing_ok=True)
            report.repairs.append(f"removed {stray.name}")


def _audit_orphan_data_files(
    report: AuditReport, directory: Path, data_file: str, *, repair: bool
) -> None:
    """Data files the manifest does not reference.

    A compaction that crashed around its manifest swap leaves exactly one:
    either the half-written new generation (manifest still names the old
    file) or the superseded old generation (manifest already swapped).
    """
    for candidate in sorted(directory.glob("traces*.bin")):
        if candidate.name == data_file:
            continue
        report.issues.append(f"orphaned data file {candidate.name}")
        if repair:
            candidate.unlink(missing_ok=True)
            report.repairs.append(f"removed {candidate.name}")


def _audit_caches(
    report: AuditReport,
    directory: Path,
    chain: set,
    batch_count: int,
    batches: List[BatchInfo],
    *,
    repair: bool,
) -> None:
    """Incremental record caches must be keyed into the current lineage."""
    cache_dir = directory / "cache"
    if not cache_dir.is_dir():
        return
    for cache_path in sorted(cache_dir.glob("*.pkl")):
        reason: Optional[str] = None
        try:
            payload = pickle.loads(cache_path.read_bytes())
        except Exception as error:
            reason = f"unreadable ({type(error).__name__})"
        else:
            if not isinstance(payload, dict):
                reason = "malformed payload"
            else:
                synced = payload.get("synced_batches")
                fingerprint = payload.get("fingerprint")
                if not isinstance(synced, int) or not 1 <= synced <= batch_count:
                    reason = "synced batch count outside the store"
                elif batches[synced - 1].fingerprint != fingerprint:
                    reason = "fingerprint not in the store's lineage"
        if reason is not None:
            report.issues.append(f"stale incremental cache cache/{cache_path.name}: {reason}")
            if repair:
                cache_path.unlink(missing_ok=True)
                report.repairs.append(f"removed cache/{cache_path.name}")


def _audit_checkpoints(
    report: AuditReport, directory: Path, chain: set, *, repair: bool
) -> None:
    """Checkpoint directories under the store: identity and journal health.

    Only checkpoints that live inside the store directory are in audit
    scope (``--checkpoint`` may point anywhere; a checkpoint elsewhere is
    validated by its own identity check on open).
    """
    for child in sorted(directory.iterdir() if directory.is_dir() else []):
        if not child.is_dir():
            continue
        manifest = child / checkpoint_format.MANIFEST_NAME
        if not manifest.is_file():
            continue
        relative = child.name
        try:
            payload = json.loads(manifest.read_text(encoding="utf-8"))
            database = payload["identity"]["database"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            database = None
        # A "file:"-keyed checkpoint mines a flat input file, not this
        # store; the chain cannot validate it either way, so leave it be.
        stale = database is None or (
            not database.startswith("file:") and database not in chain
        )
        if stale:
            report.issues.append(
                f"checkpoint {relative}/ keyed to a fingerprint outside this store's lineage"
            )
            if repair:
                shutil.rmtree(child, ignore_errors=True)
                report.repairs.append(f"removed checkpoint {relative}/")
            continue
        journal_path = child / checkpoint_format.JOURNAL_NAME
        if journal_path.is_file():
            size = journal_path.stat().st_size
            _, valid = read_frames(journal_path)
            if valid < size:
                report.issues.append(
                    f"torn checkpoint journal tail in {relative}/ "
                    f"({size - valid} bytes past the last intact frame)"
                )
                if repair:
                    with open(journal_path, "r+b") as handle:
                        handle.truncate(valid)
                    report.repairs.append(
                        f"truncated {relative}/{checkpoint_format.JOURNAL_NAME} to {valid} bytes"
                    )
