"""Store compaction with vocabulary GC — behind ``repro compact``.

:func:`compact_store` rewrites a :class:`~repro.ingest.store.TraceStore`
into a fresh *lineage*: batches tombstoned by
:meth:`~repro.ingest.store.TraceStore.mark_deleted` are dropped, the
surviving traces are re-encoded against a rebuilt vocabulary that no
longer carries labels only the dead batches referenced, and the
fingerprint chain restarts from scratch in a new generation-named data
file.  The old lineage's final fingerprint is recorded as
``compacted_from`` in the manifest — the provenance link that tells every
consumer keyed on fingerprints (incremental caches, checkpoints, saved
repositories) that their state belongs to a corpus that no longer exists,
forcing exactly one full re-mine.

Crash safety is the manifest swap: the new data file is written and
fsynced *first*, then the manifest is replaced atomically
(:func:`~repro.durability.journal.atomic_write_text`).  A crash before
the swap leaves the old store fully valid plus an orphaned new-generation
file; a crash after leaves the new store fully valid plus the superseded
old file.  ``repro fsck`` recognises and removes either orphan.  The
persisted incremental caches are deleted last — if that is where the
crash lands, the caches' lineage check discards them on next use anyway.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from dataclasses import dataclass

from ..core.events import EventVocabulary
from ..ingest.store import BatchInfo, _encode_trace
from ..testing import faults


@dataclass(frozen=True)
class CompactionReport:
    """Before/after accounting of one :func:`compact_store` run."""

    batches_before: int
    batches_after: int
    traces_before: int
    traces_after: int
    bytes_before: int
    bytes_after: int
    labels_before: int
    labels_after: int
    generation: int
    compacted_from: str

    def describe(self) -> str:
        return (
            f"batches {self.batches_before} -> {self.batches_after}, "
            f"traces {self.traces_before} -> {self.traces_after}, "
            f"bytes {self.bytes_before} -> {self.bytes_after}, "
            f"labels {self.labels_before} -> {self.labels_after} "
            f"(generation {self.generation})"
        )


def compact_store(store) -> CompactionReport:
    """Rewrite ``store`` without its tombstoned batches; GC dead labels.

    Mutates ``store`` in place (vocabulary, batch list, data file name,
    generation) and on disk.  Runs even with nothing tombstoned — that is
    a pure vocabulary GC plus lineage re-root, occasionally useful to
    invalidate every downstream cache on purpose.
    """
    before = store.describe()
    old_fingerprint = store.fingerprint
    old_data_path = store.data_path
    survivors = [batch for batch in store.batches if not batch.deleted]
    generation = store.generation + 1
    new_data_path = store.directory / f"traces-gen{generation}.bin"

    # Pass 1: rebuild the vocabulary from surviving traces in first-
    # appearance order (the same order ingesting only the survivors would
    # have produced), building the old-id -> new-id remap.
    vocabulary = EventVocabulary()
    remap: dict = {}
    for batch in survivors:
        for trace in store.iter_traces(batch.index, batch.index + 1):
            for event in trace.events:
                if event not in remap:
                    remap[event] = vocabulary.intern(store.vocabulary.label_of(event))

    # Pass 2: stream the surviving traces, re-encoded, into the new
    # generation's data file, re-deriving a fresh fingerprint chain.
    new_batches = []
    offset = 0
    previous = ""
    with open(new_data_path, "wb") as handle:
        for batch in survivors:
            digest = hashlib.sha256()
            nbytes = 0
            traces_count = 0
            events_count = 0
            alphabet: set = set()
            for trace in store.iter_traces(batch.index, batch.index + 1):
                encoded = tuple(remap[event] for event in trace.events)
                chunk = _encode_trace(encoded, trace.name)
                handle.write(chunk)
                digest.update(chunk)
                nbytes += len(chunk)
                traces_count += 1
                events_count += len(encoded)
                alphabet.update(encoded)
            fingerprint = hashlib.sha256(
                previous.encode("ascii") + digest.digest()
            ).hexdigest()
            new_batches.append(
                BatchInfo(
                    index=len(new_batches),
                    offset=offset,
                    nbytes=nbytes,
                    traces=traces_count,
                    events=events_count,
                    alphabet=tuple(sorted(alphabet)),
                    fingerprint=fingerprint,
                    source=batch.source,
                )
            )
            previous = fingerprint
            offset += nbytes
        handle.flush()
        os.fsync(handle.fileno())

    if faults.ACTIVE is not None:
        # Chaos hook: die between writing the new generation and swapping
        # the manifest — the old store must stay fully valid and fsck must
        # recognise the new file as an orphan.
        faults.trigger("compact.swap")

    # The swap: one atomic manifest replace moves the store to the new
    # lineage.  Roll the in-memory state back if the replace fails, so a
    # caller that catches (say) ENOSPC still holds a consistent store.
    rollback = (store.vocabulary, store.batches, store.data_file, store.generation, store.compacted_from)
    store.vocabulary = vocabulary
    store.batches = new_batches
    store.data_file = new_data_path.name
    store.generation = generation
    store.compacted_from = old_fingerprint
    try:
        store._save_manifest()
    except BaseException:
        (store.vocabulary, store.batches, store.data_file, store.generation, store.compacted_from) = rollback
        new_data_path.unlink(missing_ok=True)
        raise

    # Post-swap cleanup: the superseded data file and the record caches
    # (all keyed to the old lineage) are now garbage.  Best-effort — a
    # crash in here leaves debris fsck removes, never an invalid store.
    if old_data_path != store.data_path:
        old_data_path.unlink(missing_ok=True)
    shutil.rmtree(store.directory / "cache", ignore_errors=True)

    return CompactionReport(
        batches_before=before["batches"],
        batches_after=len(new_batches),
        traces_before=before["traces"],
        traces_after=sum(batch.traces for batch in new_batches),
        bytes_before=before["bytes"],
        bytes_after=offset,
        labels_before=before["distinct_events"],
        labels_after=len(vocabulary),
        generation=generation,
        compacted_from=old_fingerprint,
    )
