"""Durable-write primitives and a CRC-framed append-only journal.

Two things live here because they share one discipline — *what is on disk
after a crash must be either the old state or the new state, never a
mixture*:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` — the
  write-to-temporary / fsync / rename / fsync-the-directory sequence that
  every durable JSON or pickle artifact in the system (store manifests,
  watch state, specification repositories, incremental caches) now goes
  through.  The rename makes the swap atomic against crashes; the two
  fsyncs make it survive power loss, which a bare ``os.replace`` does not.
* :class:`JournalWriter` / :func:`read_frames` — an append-only journal of
  opaque payloads, each framed as ``<length, crc32>`` + payload.  A reader
  stops at the first frame whose length overruns the file or whose CRC
  does not match: a crash mid-append *tears the tail*, it never corrupts
  the prefix, and the writer truncates the torn tail away on reopen.

The checkpoint layer (:mod:`repro.durability.checkpoint`) builds its
mining journal on these frames; the framing itself is payload-agnostic.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import List, Tuple, Union

from ..obs import metrics as obs_metrics
from ..testing import faults

PathLike = Union[str, Path]

#: Frame header: payload byte length, CRC-32 of the payload.
FRAME_HEADER = struct.Struct("<II")


def fsync_file(handle) -> None:
    """Flush ``handle`` and force its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(path: PathLike) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Best-effort: platforms that cannot open a directory for reading (or
    filesystems that refuse to fsync one) degrade to the plain-rename
    durability we had before, never to an error.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Replace ``path`` with ``data`` atomically and durably.

    The temporary lives next to the target (``<name>.tmp`` in the same
    directory, hence the same filesystem) so the final ``os.replace`` is
    atomic; it is fsynced before the rename and the directory after, so a
    crash at any point leaves either the complete old file or the complete
    new one.
    """
    target = Path(path)
    temporary = target.with_name(target.name + ".tmp")
    with open(temporary, "wb") as handle:
        handle.write(data)
        fsync_file(handle)
    os.replace(temporary, target)
    fsync_dir(target.parent)


def atomic_write_text(path: PathLike, text: str) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def read_frames(path: PathLike) -> Tuple[List[bytes], int]:
    """Read every intact frame of a journal file.

    Returns ``(payloads, valid_length)`` where ``valid_length`` is the
    byte offset just past the last intact frame.  Reading stops — without
    raising — at the first torn frame: a header that overruns the file, a
    payload shorter than its header promises, or a CRC mismatch.  A
    missing file is an empty journal.
    """
    payloads: List[bytes] = []
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        return payloads, 0
    offset = 0
    valid = 0
    total = len(raw)
    while offset + FRAME_HEADER.size <= total:
        length, crc = FRAME_HEADER.unpack_from(raw, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if end > total:
            break
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            break
        payloads.append(payload)
        offset = end
        valid = end
    return payloads, valid


class JournalWriter:
    """Append CRC-framed payloads to a journal file.

    Opening the writer truncates any torn tail left by a previous crash
    (everything past the last intact frame), so appends always extend a
    clean prefix.  Every append is flushed to the OS immediately — an
    appended frame survives the *process* dying right after
    :meth:`append` returns — and fsynced every ``fsync_interval`` appends
    and on :meth:`close`, bounding what power loss can take to a tail the
    CRC framing already recovers from.
    """

    def __init__(self, path: PathLike, *, fsync_interval: int = 8) -> None:
        self.path = Path(path)
        existing, valid = read_frames(self.path)
        self._handle = open(self.path, "r+b" if self.path.exists() else "w+b")
        self._handle.seek(valid)
        self._handle.truncate()
        #: Number of frames committed so far (intact frames found on open
        #: plus frames appended since) — also the fault key of the next
        #: append, so tests can target "the Nth journal write".
        self.entries = len(existing)
        self._fsync_interval = max(1, fsync_interval)
        self._since_fsync = 0

    def append(self, payload: bytes) -> None:
        """Append one frame; visible to :func:`read_frames` on return."""
        header = FRAME_HEADER.pack(len(payload), zlib.crc32(payload))
        self._handle.write(header)
        self._handle.flush()
        if faults.ACTIVE is not None:
            # Chaos hook: a crash between the frame header and its payload
            # leaves exactly the torn tail readers must stop at and the
            # next open must truncate.  Keyed by the entry index.
            faults.trigger("checkpoint.append", key=str(self.entries))
        self._handle.write(payload)
        self._handle.flush()
        self._since_fsync += 1
        if self._since_fsync >= self._fsync_interval:
            os.fsync(self._handle.fileno())
            self._since_fsync = 0
            obs_metrics.DURABILITY_JOURNAL_FSYNCS_TOTAL.inc()
        self.entries += 1
        obs_metrics.DURABILITY_JOURNAL_APPENDS_TOTAL.inc()
        if faults.ACTIVE is not None:
            # Chaos hook after the flush: the frame is fully in the OS, so
            # a kill here must leave a journal that replays including it.
            faults.trigger("checkpoint.commit", key=str(self.entries - 1))

    def close(self) -> None:
        if self._handle.closed:
            return
        try:
            fsync_file(self._handle)
            obs_metrics.DURABILITY_JOURNAL_FSYNCS_TOTAL.inc()
        finally:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
