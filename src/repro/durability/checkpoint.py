"""Checkpoint journal: crash-safe resume for long mining runs.

A :class:`MiningCheckpoint` is a directory holding two files:

* ``checkpoint.json`` — the run *identity*: database fingerprint, miner
  class and config token (the same scheme the incremental cache uses).
  Opening a checkpoint under a different identity discards the journal —
  journaled outcomes are only reusable against the exact corpus and
  configuration that produced them.
* ``checkpoint.bin`` — a CRC-framed journal (:mod:`repro.durability.journal`)
  of pickled entries, appended as the engine completes work:

  ==========  =======================================  ==================
  entry       payload                                  meaning
  ==========  =======================================  ==================
  ``unit``    ``(key, UnitOutcome)``                   unit completed
  ``spawn``   ``(parent key, (WorkUnit, ...))``        unit split children
  ``orphan``  ``(key,)``                               subtree invalidated
  ``shard``   ``(root tuple, ShardOutcome)``           static shard done
  ==========  =======================================  ==================

The journal is sound because work outcomes are *plan-independent*: a
``(kind, split-path)`` unit (and a static shard, which is a root set) is
a pure function of the database and the mining configuration, so any
outcome journaled under a matching identity can be reused even if the
resumed run plans differently (e.g. the incremental cache turned a full
mine into a delta mine).  Resume therefore needs no knowledge of *why*
the previous run died — it replays the journal, marks finished units
done, walks the spawn lineage below them, and mines only the remainder;
the deterministic merge makes the final output byte-identical to an
uninterrupted run.

A crash mid-append tears the journal tail; the framing truncates it on
reopen, costing at most the entries that had not reached the OS — never
the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..obs import metrics as obs_metrics
from .journal import JournalWriter, atomic_write_text, read_frames

PathLike = Union[str, Path]

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "checkpoint.json"
JOURNAL_NAME = "checkpoint.bin"


def unit_key(unit) -> tuple:
    """The replay identity of a work unit: ``(kind, split-path)``.

    The split path starts at the root, so two units of the same kind
    collide only if they denote the same subtree — exactly when their
    outcomes are interchangeable.
    """
    return (unit.kind, tuple(unit.path))


def miner_config_token(miner) -> str:
    """Render a miner's full configuration as a stable identity string.

    Set-valued fields are rendered sorted so the token is independent of
    hash-seed iteration order; this is the token the incremental cache
    and the checkpoint manifest share.
    """
    config = getattr(miner, "config", None)
    if config is None or not dataclasses.is_dataclass(config):
        return f"{type(miner).__qualname__}:{config!r}"
    parts = []
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, (set, frozenset)):
            rendered = "{" + ", ".join(sorted(repr(item) for item in value)) + "}"
        else:
            rendered = repr(value)
        parts.append(f"{field.name}={rendered}")
    return f"{type(miner).__qualname__}({', '.join(parts)})"


def file_fingerprint(path: PathLike) -> str:
    """Content fingerprint of a flat input file (non-store mining sources)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return f"file:{digest.hexdigest()}"


class MiningCheckpoint:
    """An append-only journal of completed mining work under one identity.

    ``identity`` is a flat string→string mapping — conventionally
    ``{"database": ..., "miner": ..., "config": ...}`` — compared
    structurally against the persisted manifest.  On mismatch (or first
    use) the directory is re-keyed and any previous journal discarded.
    """

    def __init__(
        self,
        directory: PathLike,
        identity: Dict[str, str],
        *,
        fsync_interval: int = 8,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.identity = {str(key): str(value) for key, value in identity.items()}
        self._done_units: Dict[tuple, Any] = {}
        self._children: Dict[tuple, List[Any]] = {}
        self._done_shards: Dict[tuple, Any] = {}
        journal_path = self.directory / JOURNAL_NAME
        manifest = {"version": CHECKPOINT_VERSION, "identity": self.identity}
        if self._load_manifest() != manifest:
            journal_path.unlink(missing_ok=True)
            atomic_write_text(
                self.directory / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n"
            )
        else:
            self._replay(journal_path)
        self._journal = JournalWriter(journal_path, fsync_interval=fsync_interval)

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def _load_manifest(self) -> Optional[dict]:
        path = self.directory / MANIFEST_NAME
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def _replay(self, journal_path: Path) -> None:
        payloads, _ = read_frames(journal_path)
        for payload in payloads:
            try:
                entry = pickle.loads(payload)
            except Exception:
                # An intact frame whose pickle no longer loads (say, a
                # version skew in the outcome types) only means its work
                # is re-mined; resume must never be worse than restart.
                continue
            kind = entry[0]
            if kind == "unit":
                self._done_units[entry[1]] = entry[2]
            elif kind == "spawn":
                self._children.setdefault(entry[1], []).extend(entry[2])
            elif kind == "orphan":
                self._discard_subtree(entry[1])
            elif kind == "shard":
                self._done_shards[entry[1]] = entry[2]

    def _discard_subtree(self, key: tuple) -> None:
        stack = [key]
        while stack:
            victim = stack.pop()
            self._done_units.pop(victim, None)
            for child in self._children.pop(victim, ()):
                stack.append(unit_key(child))

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _append(self, entry: tuple) -> None:
        self._journal.append(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))

    def record_unit(self, unit, outcome) -> None:
        """Journal one completed work unit's outcome."""
        key = unit_key(unit)
        self._done_units[key] = outcome
        self._append(("unit", key, outcome))

    def record_spawn(self, parent, units: Iterable[Any]) -> None:
        """Journal the children a unit split off.

        Must be journaled no later than the parent's own outcome (the
        coordinator's message order guarantees this for free): resume
        walks children only below *completed* units, so a completed unit
        with unjournaled children would under-cover the search space.
        """
        units = tuple(units)
        if not units:
            return
        key = unit_key(parent)
        self._children.setdefault(key, []).extend(units)
        self._append(("spawn", key, units))

    def record_orphan(self, unit) -> None:
        """Journal that a unit's attempt tree was invalidated (replay)."""
        key = unit_key(unit)
        self._discard_subtree(key)
        self._append(("orphan", key))

    def record_shard(self, shard, outcome) -> None:
        """Journal one completed static shard's outcome."""
        key = tuple(shard.roots)
        self._done_shards[key] = outcome
        self._append(("shard", key, outcome))

    # ------------------------------------------------------------------ #
    # Resume
    # ------------------------------------------------------------------ #
    def plan_resume(self, units: Iterable[Any]) -> Tuple[List[Any], List[Any]]:
        """Split planned units into journaled outcomes and a remainder.

        Walks the spawn lineage below every *completed* unit.  The
        journaled descendants of a unit that did not complete are
        deliberately not visited: re-running that unit re-covers its
        entire subtree, exactly the live coordinator's orphaning rule, so
        reusing its old children would double-count.
        """
        cached: List[Any] = []
        remaining: List[Any] = []
        stack = list(units)
        stack.reverse()
        while stack:
            unit = stack.pop()
            key = unit_key(unit)
            outcome = self._done_units.get(key)
            if outcome is not None:
                cached.append(outcome)
                children = self._children.get(key, ())
                stack.extend(reversed(children))
            else:
                remaining.append(unit)
        if cached:
            obs_metrics.DURABILITY_RESUMED_TOTAL.inc(len(cached), kind="unit")
        return cached, remaining

    def completed_shards(self) -> Dict[tuple, Any]:
        """Journaled static-shard outcomes, keyed by root tuple."""
        return dict(self._done_shards)

    @property
    def entries(self) -> int:
        """Frames in the journal (replayed + appended this run)."""
        return self._journal.entries

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "MiningCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
