"""Durability: crash-safe journals, store auditing and compaction.

The package that makes long runs and long-lived stores survivable:

* :mod:`repro.durability.journal` — atomic/durable file writes and the
  CRC-framed append-only journal primitive;
* :mod:`repro.durability.checkpoint` — the mining checkpoint journal
  behind ``repro mine --resume``;
* :mod:`repro.durability.fsck` — the store integrity auditor behind
  ``repro fsck``;
* :mod:`repro.durability.compact` — store compaction and vocabulary GC
  behind ``repro compact`` / :meth:`TraceStore.compact`.

``fsck`` and ``compact`` import the ingest layer, which itself uses the
journal helpers; they are therefore *not* imported here — consumers
import the submodules directly and the package stays cycle-free.
"""

from .checkpoint import MiningCheckpoint, file_fingerprint, miner_config_token
from .journal import JournalWriter, atomic_write_bytes, atomic_write_text, read_frames

__all__ = [
    "JournalWriter",
    "MiningCheckpoint",
    "atomic_write_bytes",
    "atomic_write_text",
    "file_fingerprint",
    "miner_config_token",
    "read_frames",
]
