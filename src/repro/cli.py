"""Command-line interface: ``repro-mine``.

Sub-commands cover the full workflow of the paper:

* ``generate``     — create a synthetic QUEST-style dataset (Section 6);
* ``jboss``        — produce the simulated JBoss case-study traces (Section 7);
* ``ingest``       — stream trace files into an append-only trace store;
* ``mine-patterns``— mine frequent / closed iterative patterns (Section 4);
* ``mine-rules``   — mine full / non-redundant recurrent rules (Section 5);
* ``fsck``         — audit a trace store's integrity (chained fingerprints,
  torn tails, stale caches and checkpoints; exit 0/1/2 for
  clean/repaired/corrupt);
* ``compact``      — rewrite a store dropping deleted batches and
  garbage-collecting unreferenced vocabulary labels into a new
  fingerprint lineage;
* ``monitor``      — check a specification repository against traces
  (``--stream`` compiles the rules and checks one event at a time);
* ``watch``        — the serving daemon: tail a directory into a store,
  re-mine incrementally, hot-swap the compiled rules, monitor new traces
  (``--push-port`` additionally hosts the event-push socket front end);
* ``serve``        — the network serving plane alone: load a specification
  repository and serve live pushed sessions over TCP through a sharded
  monitor pool (see ``docs/serving.md`` for the wire protocol);
* ``metrics``      — scrape a running ``serve``/``watch --push-port`` box's
  metrics registry over the wire ``METRICS`` verb and print the
  Prometheus text exposition (see ``docs/observability.md``);
* ``top``          — a refreshing terminal dashboard over a running
  serving box: sliding-window event/session rates, shard queue depths and
  the hottest / most-violated rules (wire ``STATS`` + ``ANALYTICS``).

``serve`` and ``watch`` also accept ``--http-port``: an HTTP sidecar
(``repro.obs.httpexpo``) exposing ``/metrics``, ``/healthz`` and
``/statusz`` for Prometheus scrapers and load-balancer probes.

The mining and serving commands accept ``--trace-out FILE``: spans
recording where each run's wall-clock went (per shard, per daemon cycle,
per refresh) are appended to the file as JSON lines;
``tools/trace_summary.py`` prints the per-phase breakdown.

Every command reads and writes the trace formats of :mod:`repro.traces.io`
(text / jsonl / csv, each with a transparent ``.gz`` variant) and prints
small plain-text reports; mined specifications can be saved as a JSON
repository (see :class:`repro.specs.SpecificationRepository`).  The mining
commands accept either a flat trace file (``--input``) or a trace store
(``--store``, optionally appending new files first with ``--append``);
store-backed mining keeps a persisted record cache in the store directory,
so repeated ``--append`` invocations re-mine only the touched roots.  Long
mining runs can journal completed work with ``--checkpoint DIR`` (alias
``--resume``): a run killed mid-mine resumes from the journal and emits
output byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import hashlib
import signal
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional

from .analysis.reporting import format_table
from .core.errors import ConfigurationError, DataFormatError
from .datagen.profiles import PAPER_PROFILE, generate_profile
from .durability.checkpoint import MiningCheckpoint, file_fingerprint, miner_config_token
from .durability.fsck import audit_store
from .engine import BACKEND_CHOICES, ExecutionBackend, resolve_backend
from .jboss.workloads import (
    generate_case_study_traces,
    generate_security_traces,
    generate_transaction_traces,
)
from .patterns.closed_miner import ClosedIterativePatternMiner
from .patterns.config import IterativeMiningConfig
from .patterns.full_miner import FullIterativePatternMiner
from .rules.config import RuleMiningConfig
from .rules.full_miner import FullRecurrentRuleMiner
from .rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from .ingest.formats import (
    DEFAULT_BATCH_SIZE,
    format_for_path,
    stream_batches,
    stream_traces,
)
from .ingest.incremental import IncrementalMiner
from .ingest.store import TraceStore
from .obs import tracing
from .obs.httpexpo import MetricsHTTPServer
from .serving.daemon import WatchDaemon
from .serving.pool import MonitorPool
from .serving.server import EventPushServer, ProtocolError, PushClient
from .serving.stream_monitor import StreamingMonitor
from .specs.repository import SpecificationRepository
from .traces.io import read_traces, write_traces
from .verification.monitor import RuleMonitor

#: Shared help string for every ``--format`` option.
_FORMAT_HELP = "text | jsonl | csv (suffix .gz for the gzip-wrapped variants)"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Mine iterative patterns and recurrent rules from program traces.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--profile", default=PAPER_PROFILE, help="D/C/N/S profile name")
    generate.add_argument("--scale", type=float, default=0.1, help="scale factor for D and N")
    generate.add_argument("--seed", type=int, default=None, help="random seed override")
    generate.add_argument("--output", required=True, help="output trace file")
    generate.add_argument("--format", default=None, help=_FORMAT_HELP)

    jboss = subparsers.add_parser("jboss", help="generate the simulated JBoss case-study traces")
    jboss.add_argument(
        "--component",
        choices=["transaction", "security", "both"],
        default="both",
        help="which simulated component to exercise",
    )
    jboss.add_argument("--output", required=True, help="output trace file")
    jboss.add_argument("--format", default=None, help=_FORMAT_HELP)

    ingest = subparsers.add_parser(
        "ingest", help="stream trace files into an append-only trace store"
    )
    ingest.add_argument("--store", required=True, help="trace store directory")
    ingest.add_argument(
        "--input",
        nargs="+",
        default=[],
        help="trace files to append (without any, prints the store's stats)",
    )
    ingest.add_argument("--format", default=None, help=_FORMAT_HELP)
    ingest.add_argument(
        "--batch-size",
        type=_positive_int,
        default=DEFAULT_BATCH_SIZE,
        help=f"traces per appended batch (default {DEFAULT_BATCH_SIZE}, keeping "
        "memory bounded on huge files; pass a larger value for fewer batches)",
    )

    patterns = subparsers.add_parser("mine-patterns", help="mine iterative patterns")
    _add_source_arguments(patterns)
    patterns.add_argument("--min-support", type=float, default=2.0)
    patterns.add_argument("--max-length", type=int, default=None)
    patterns.add_argument("--full", action="store_true", help="mine all frequent patterns")
    patterns.add_argument("--top", type=int, default=20, help="how many patterns to print")
    patterns.add_argument("--save", default=None, help="save results to a JSON repository")
    _add_engine_arguments(patterns)
    _add_checkpoint_argument(patterns)
    _add_trace_argument(patterns)

    rules = subparsers.add_parser("mine-rules", help="mine recurrent rules")
    _add_source_arguments(rules)
    rules.add_argument("--min-s-support", type=float, default=2.0)
    rules.add_argument("--min-i-support", type=int, default=1)
    rules.add_argument("--min-confidence", type=float, default=0.5)
    rules.add_argument("--max-premise-length", type=int, default=None)
    rules.add_argument("--max-consequent-length", type=int, default=None)
    rules.add_argument("--full", action="store_true", help="mine the full (redundant) rule set")
    rules.add_argument("--top", type=int, default=20, help="how many rules to print")
    rules.add_argument("--save", default=None, help="save results to a JSON repository")
    _add_engine_arguments(rules)
    _add_checkpoint_argument(rules)
    _add_trace_argument(rules)

    fsck = subparsers.add_parser(
        "fsck",
        help="audit a trace store: re-hash the fingerprint chain, repair "
        "torn tails, drop stale caches and checkpoints",
    )
    fsck.add_argument("store", help="trace store directory to audit")
    fsck.add_argument(
        "--no-repair",
        action="store_true",
        help="report only; never truncate tails or remove stale state",
    )

    compact = subparsers.add_parser(
        "compact",
        help="rewrite a store dropping deleted batches and unreferenced "
        "vocabulary labels into a new fingerprint lineage",
    )
    compact.add_argument("store", help="trace store directory to compact")
    compact.add_argument(
        "--delete-batch",
        type=int,
        action="append",
        default=[],
        metavar="INDEX",
        help="tombstone this batch index before compacting (repeatable)",
    )

    monitor = subparsers.add_parser("monitor", help="check rules against traces")
    monitor.add_argument("--input", required=True, help="input trace file")
    monitor.add_argument("--format", default=None, help=_FORMAT_HELP)
    monitor.add_argument("--specs", required=True, help="JSON specification repository")
    monitor.add_argument("--max-violations", type=int, default=10, help="violations to print")
    monitor.add_argument(
        "--stream",
        action="store_true",
        help="compile the rules into a shared automaton and check the file "
        "one trace at a time (bounded memory, same violations; traces are "
        "numbered in file order, and CSV rows of one trace must be "
        "contiguous as with every streaming reader)",
    )

    watch = subparsers.add_parser(
        "watch",
        help="serving daemon: tail a directory of trace files, re-mine "
        "incrementally, hot-swap the compiled rules, monitor new traces",
    )
    watch.add_argument("--dir", required=True, help="directory to tail for trace files")
    watch.add_argument("--store", required=True, help="backing trace-store directory")
    watch.add_argument("--format", default=None, help=_FORMAT_HELP)
    watch.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls (default 2)"
    )
    watch.add_argument(
        "--max-cycles",
        type=_positive_int,
        default=None,
        help="stop after this many poll cycles; every cycle counts, "
        "including idle ones that find no new files (default: run until "
        "Ctrl-C)",
    )
    watch.add_argument("--min-s-support", type=float, default=2.0)
    watch.add_argument("--min-i-support", type=int, default=1)
    watch.add_argument("--min-confidence", type=float, default=0.5)
    watch.add_argument("--max-premise-length", type=int, default=None)
    watch.add_argument("--max-consequent-length", type=int, default=None)
    watch.add_argument(
        "--save",
        default=None,
        help="rewrite this JSON specification repository on every hot swap",
    )
    watch.add_argument(
        "--max-violations", type=int, default=10, help="violations to print per cycle"
    )
    watch.add_argument(
        "--push-port",
        type=int,
        default=None,
        help="additionally serve pushed sessions over TCP on this port "
        "(0 = ephemeral; the bound address is printed on stderr)",
    )
    _add_http_arguments(watch)
    _add_engine_arguments(watch)
    _add_trace_argument(watch)

    serve = subparsers.add_parser(
        "serve",
        help="event-push serving plane: accept live sessions over TCP and "
        "monitor them against a mined specification repository through a "
        "sharded monitor pool",
    )
    serve.add_argument("--rules", required=True, help="JSON specification repository to serve")
    serve.add_argument("--host", default="127.0.0.1", help="bind host (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=7311,
        help="bind port (default 7311; 0 = ephemeral, printed on stderr)",
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=4,
        help="monitor-pool worker shards; sessions spread across them by "
        "consistent hashing (default 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=1024,
        help="bound on each shard's pending-work queue; a full queue "
        "answers BUSY instead of growing (default 1024)",
    )
    serve.add_argument(
        "--max-violations", type=int, default=10, help="violations to print at shutdown"
    )
    _add_http_arguments(serve)
    _add_trace_argument(serve)

    metrics = subparsers.add_parser(
        "metrics",
        help="scrape a running serve/watch box's metrics registry and "
        "print the Prometheus text exposition",
    )
    metrics.add_argument("--host", default="127.0.0.1", help="server host (default 127.0.0.1)")
    metrics.add_argument(
        "--port", type=_positive_int, default=7311, help="server port (default 7311)"
    )
    metrics.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout in seconds (default 10)"
    )

    top = subparsers.add_parser(
        "top",
        help="refreshing terminal dashboard over a running serve/watch box: "
        "event/session rates, queue depths and the hottest rules",
    )
    top.add_argument("--host", default="127.0.0.1", help="server host (default 127.0.0.1)")
    top.add_argument(
        "--port", type=_positive_int, default=7311, help="server port (default 7311)"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes; rates are computed over this "
        "window (default 2)",
    )
    top.add_argument(
        "--iterations",
        type=_positive_int,
        default=None,
        help="render this many frames, then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        dest="top_n",
        help="rules to show in the hottest/most-violated table (default 10)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (logs, pipes)",
    )
    top.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout in seconds (default 10)"
    )

    return parser


def _add_http_arguments(subparser: argparse.ArgumentParser) -> None:
    """The HTTP exposition sidecar options shared by serve and watch."""
    subparser.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="host the HTTP exposition sidecar (/metrics, /healthz, "
        "/statusz) on this port (0 = ephemeral; the bound address is "
        "printed on stderr)",
    )
    subparser.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="bind host for the HTTP sidecar (default 127.0.0.1)",
    )


def _positive_int(value: str) -> int:
    try:
        workers = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from error
    if workers < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value!r}")
    return workers


def _add_source_arguments(subparser: argparse.ArgumentParser) -> None:
    """Trace-source options shared by the mining commands."""
    subparser.add_argument("--input", default=None, help="input trace file")
    subparser.add_argument("--format", default=None, help=_FORMAT_HELP)
    subparser.add_argument(
        "--store",
        default=None,
        help="mine a trace-store snapshot instead of a flat file",
    )
    subparser.add_argument(
        "--append",
        action="append",
        default=[],
        metavar="FILE",
        help="append this trace file to the existing --store before mining "
        "(repeatable; create the store with `repro ingest` first)",
    )


def _validate_trace_inputs(paths: List[str], format: Optional[str]) -> Optional[str]:
    """Path-level validation shared by ingest and --append: an error
    message, or None when every path looks like a readable trace file."""
    for path in paths:
        try:
            format_for_path(path, format)
        except DataFormatError as error:
            return str(error)
        if not Path(path).is_file():
            return f"no trace file at {path}"
    return None


def _annotated_stream(path: str, format: Optional[str]):
    """Stream one file's traces, prefixing parse errors with the path."""
    try:
        yield from stream_traces(path, format=format)
    except DataFormatError as error:
        raise DataFormatError(f"{path}: {error}") from error


def _resolve_mining_source(args: argparse.Namespace):
    """Resolve --input/--store/--append into ``(database, store)``.

    Exactly one of the pair is set; ``None`` signals a reported CLI error.
    A flat ``--input`` file is read into an in-memory database; a
    ``--store`` is returned as-is so the mining commands can run the
    persisted incremental path over it.
    """
    if (args.input is None) == (args.store is None):
        print("error: pass exactly one of --input or --store", file=sys.stderr)
        return None
    if args.append and args.store is None:
        print("error: --append requires --store", file=sys.stderr)
        return None
    if args.input is not None:
        return read_traces(args.input, format=args.format), None
    try:
        # Only the ingest command may create a store: a typo'd --store
        # path must be a loud error (even with --append), never a quietly
        # mined empty — or nearly empty — fresh store.
        store = TraceStore.open(args.store)
    except DataFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    failure = _validate_trace_inputs(args.append, args.format)
    if failure is not None:
        print(f"error: {failure}", file=sys.stderr)
        return None
    # All-or-nothing across every --append file: a parse error anywhere
    # commits nothing, so fixing the bad file and re-running the same
    # command cannot duplicate the good files' traces.
    try:
        batches = store.append_batches(
            _annotated_stream(path, args.format) for path in args.append
        )
    except DataFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    # Progress goes to stderr: the mining commands' stdout is the mined
    # report and must stay machine-readable (diff-able across sources).
    for batch in batches:
        print(
            f"appended batch {batch.index}: {batch.traces} traces ({batch.events} events)",
            file=sys.stderr,
        )
    if not len(store):
        print(f"error: store {args.store} holds no traces; ingest some first", file=sys.stderr)
        return None
    description = store.describe()
    print(
        f"store {args.store}: {description['traces']} traces in "
        f"{description['batches']} batches, fingerprint {str(description['fingerprint'])[:12]}",
        file=sys.stderr,
    )
    return None, store


def _mine_source(source, miner, backend):
    """Run a miner over the resolved source, incrementally when store-backed.

    Store-backed mining goes through :class:`IncrementalMiner` with the
    record cache persisted in the store directory, so a sequence of
    ``--store --append`` invocations re-mines only the roots each append
    touched — across processes.  Output is bit-identical to mining the
    snapshot from scratch either way.
    """
    database, store = source
    if store is None:
        return miner.mine(database, backend=backend)
    incremental = IncrementalMiner(miner, store, persist=True)
    result, report = incremental.refresh(backend=backend)
    print(
        f"incremental: re-mined {report.roots_remined}/{report.roots_total} "
        f"roots ({report.reason})",
        file=sys.stderr,
    )
    return result


def _add_engine_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for the parallel engine (unset: serial with "
        "'auto', all CPU cores with '--backend process')",
    )
    subparser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="execution backend; 'auto' goes parallel when --workers > 1, "
        "'stealing' adds dynamic subtree splitting for skewed databases",
    )
    subparser.add_argument(
        "--split-depth",
        type=_positive_int,
        default=None,
        help="stealing backend only: maximum search depth at which frontier "
        "nodes may still be split into stealable units (default 8)",
    )


def _resolve_backend_or_none(args: argparse.Namespace) -> Optional[ExecutionBackend]:
    """Resolve --backend/--workers/--split-depth, printing a CLI error on contradiction."""
    try:
        return resolve_backend(args.backend, args.workers, args.split_depth)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def _add_trace_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="append timing spans (one JSON object per line) to this file; "
        "summarise with tools/trace_summary.py",
    )


def _add_checkpoint_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--checkpoint",
        "--resume",
        dest="checkpoint",
        default=None,
        metavar="DIR",
        help="journal completed work units to this directory; rerunning the "
        "same command after a crash resumes from the journal (a changed "
        "input, miner, or config starts the journal over)",
    )


def _attach_checkpoint(args: argparse.Namespace, source, miner, backend) -> bool:
    """Wire --checkpoint onto the backend; False signals a reported error.

    The journal's identity is {database fingerprint, miner class, config
    token} — exactly the incremental cache's keying — so a journal can
    never replay outcomes into a run it does not belong to: any mismatch
    silently starts a fresh journal instead of resuming.
    """
    if getattr(args, "checkpoint", None) is None:
        return True
    database, store = source
    try:
        identity = {
            "database": store.fingerprint if store is not None else file_fingerprint(args.input),
            "miner": type(miner).__qualname__,
            "config": miner_config_token(miner),
        }
        backend.checkpoint = MiningCheckpoint(args.checkpoint, identity)
    except OSError as error:
        print(f"error: checkpoint {args.checkpoint}: {error}", file=sys.stderr)
        return False
    return True


def _finish_checkpoint(args: argparse.Namespace, backend, result) -> None:
    """Close the journal and report how much of the run it saved."""
    if getattr(backend, "checkpoint", None) is None:
        return
    resumed = result.stats.extra.get("units_resumed", 0) + result.stats.extra.get(
        "shards_resumed", 0
    )
    print(
        f"checkpoint: resumed {resumed} completed units from {args.checkpoint}",
        file=sys.stderr,
    )
    backend.checkpoint.close()
    backend.checkpoint = None


def _command_generate(args: argparse.Namespace) -> int:
    database = generate_profile(args.profile, scale=args.scale, seed=args.seed)
    write_traces(database, args.output, format=args.format)
    stats = database.describe()
    print(f"wrote {int(stats['sequences'])} sequences ({int(stats['events'])} events) to {args.output}")
    return 0


def _command_jboss(args: argparse.Namespace) -> int:
    if args.component == "transaction":
        database = generate_transaction_traces()
    elif args.component == "security":
        database = generate_security_traces()
    else:
        database = generate_case_study_traces()
    write_traces(database, args.output, format=args.format)
    print(f"wrote {len(database)} JBoss {args.component} traces to {args.output}")
    return 0


def _ingest_source_id(path: str) -> dict:
    """Content identity of one ingest input: resolved path + byte hash.

    Recorded on every batch the file produces, and checked before
    re-ingesting: a crash-interrupted multi-file ingest can simply be
    re-run with the same arguments — already-committed files are skipped,
    never duplicated.  The hash keeps the check honest when a file is
    rewritten in place with new content.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return {"path": str(Path(path).resolve()), "sha256": digest.hexdigest()}


def _command_ingest(args: argparse.Namespace) -> int:
    # Validate every input before creating or touching the store: a typo'd
    # path must not leave behind a fresh empty store that later --store
    # mining would refuse as empty (or, worse, quietly mine).
    failure = _validate_trace_inputs(args.input, args.format)
    if failure is not None:
        print(f"error: {failure}", file=sys.stderr)
        return 2
    fresh = not (Path(args.store) / "manifest.json").exists()
    try:
        # Stats-only invocations never create: a typo'd store path must
        # not leave a plausible-looking empty store behind.
        store = TraceStore(args.store) if args.input else TraceStore.open(args.store)
    except (DataFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for path in args.input:
        source = _ingest_source_id(path)
        if store.has_source(source):
            print(f"skipping {path}: already ingested (same content)", file=sys.stderr)
            continue
        traces = _annotated_stream(path, args.format)
        try:
            # One manifest commit per file: a parse error mid-file commits
            # none of the file's chunks, so fixing it and re-running never
            # duplicates traces (earlier *files* stay committed — re-run
            # the same command and they are skipped by source identity).
            batches = store.append_batches(stream_batches(traces, args.batch_size), source=source)
        except DataFormatError as error:
            print(f"error: {error}", file=sys.stderr)
            if fresh:
                # Nothing was ever committed: remove the store we created
                # so a later --store mine fails loudly instead of finding
                # a plausible-looking empty corpus.
                store.discard_if_empty()
            return 2
        for batch in batches:
            print(
                f"appended batch {batch.index} from {path}: "
                f"{batch.traces} traces ({batch.events} events)"
            )
    description = store.describe()
    print(
        f"store {args.store}: {description['traces']} traces "
        f"({description['events']} events, {description['distinct_events']} distinct) "
        f"in {description['batches']} batches, {description['bytes']} bytes, "
        f"fingerprint {str(description['fingerprint'])[:12] or '-'}"
    )
    return 0


def _command_fsck(args: argparse.Namespace) -> int:
    report = audit_store(args.store, repair=not args.no_repair)
    for line in report.lines():
        print(line)
    code = report.exit_code
    verdict = {0: "clean", 1: "issues found", 2: "CORRUPT"}[code]
    print(f"fsck {args.store}: {verdict} (exit {code})")
    return code


def _command_compact(args: argparse.Namespace) -> int:
    try:
        store = TraceStore.open(args.store)
        if args.delete_batch:
            marked = store.mark_deleted(args.delete_batch)
            print(f"tombstoned {marked} batches", file=sys.stderr)
        report = store.compact()
    except (DataFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"compacted {args.store}: {report.describe()}")
    print(
        f"new lineage {store.fingerprint[:12]} (compacted from "
        f"{report.compacted_from[:12]}; downstream caches will fully re-mine)"
    )
    return 0


def _command_mine_patterns(args: argparse.Namespace) -> int:
    source = _resolve_mining_source(args)
    if source is None:
        return 2
    config = IterativeMiningConfig(
        min_support=args.min_support,
        max_pattern_length=args.max_length,
        collect_instances=False,
        adjacent_absorption_pruning=not args.full,
    )
    backend = _resolve_backend_or_none(args)
    if backend is None:
        return 2
    miner = FullIterativePatternMiner(config) if args.full else ClosedIterativePatternMiner(config)
    if not _attach_checkpoint(args, source, miner, backend):
        return 2
    result = _mine_source(source, miner, backend)
    _finish_checkpoint(args, backend, result)
    kind = "frequent" if args.full else "closed"
    print(
        f"mined {len(result)} {kind} iterative patterns "
        f"(min_sup={result.min_support}, backend={backend.describe()}, "
        f"{result.stats.elapsed_seconds:.2f}s)"
    )
    print(format_table(result.as_rows()[: args.top], columns=["support", "length", "events"]))
    if args.save:
        repository = SpecificationRepository(name=f"{kind}-patterns")
        repository.add_pattern_result(result)
        repository.save(args.save)
        print(f"saved {len(result)} patterns to {args.save}")
    return 0


def _command_mine_rules(args: argparse.Namespace) -> int:
    source = _resolve_mining_source(args)
    if source is None:
        return 2
    config = RuleMiningConfig(
        min_s_support=args.min_s_support,
        min_i_support=args.min_i_support,
        min_confidence=args.min_confidence,
        max_premise_length=args.max_premise_length,
        max_consequent_length=args.max_consequent_length,
    )
    backend = _resolve_backend_or_none(args)
    if backend is None:
        return 2
    miner = FullRecurrentRuleMiner(config) if args.full else NonRedundantRecurrentRuleMiner(config)
    if not _attach_checkpoint(args, source, miner, backend):
        return 2
    result = _mine_source(source, miner, backend)
    _finish_checkpoint(args, backend, result)
    kind = "significant" if args.full else "non-redundant"
    print(
        f"mined {len(result)} {kind} recurrent rules "
        f"(min_s_sup={result.min_s_support}, min_conf={result.min_confidence}, "
        f"backend={backend.describe()}, {result.stats.elapsed_seconds:.2f}s)"
    )
    print(
        format_table(
            result.as_rows()[: args.top],
            columns=["confidence", "s_support", "i_support", "premise", "consequent"],
        )
    )
    if args.save:
        repository = SpecificationRepository(name=f"{kind}-rules")
        repository.add_rule_result(result)
        repository.save(args.save)
        print(f"saved {len(result)} rules to {args.save}")
    return 0


def _command_monitor(args: argparse.Namespace) -> int:
    repository = SpecificationRepository.load(args.specs)
    if not repository.rules:
        # A repository that mined zero rules is a valid (vacuous)
        # specification: report a clean zero-violation run, don't crash.
        print("note: the specification repository contains no rules", file=sys.stderr)
    try:
        if args.stream:
            # Serving path: compile once, stream the file one trace at a
            # time (memory bounded by the longest trace, not the file).
            monitor = StreamingMonitor(repository.rules)
            for record in stream_traces(args.input, format=args.format):
                monitor.check_trace(record.events, name=record.name)
            report = monitor.report()
        else:
            database = read_traces(args.input, format=args.format)
            report = RuleMonitor(repository.rules).check_database(database)
    except (DataFormatError, OSError) as error:
        print(f"error: {args.input}: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    for violation in report.violations[: args.max_violations]:
        print(f"  VIOLATION {violation.describe()}")
    return 0 if report.violation_count == 0 else 1


def _command_watch(args: argparse.Namespace) -> int:
    if not Path(args.dir).is_dir():
        print(f"error: no directory to watch at {args.dir}", file=sys.stderr)
        return 2
    backend = _resolve_backend_or_none(args)
    if backend is None:
        return 2
    try:
        config = RuleMiningConfig(
            min_s_support=args.min_s_support,
            min_i_support=args.min_i_support,
            min_confidence=args.min_confidence,
            max_premise_length=args.max_premise_length,
            max_consequent_length=args.max_consequent_length,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def report_cycle(cycle) -> None:
        for path, info in cycle.ingested:
            print(f"[cycle {cycle.index}] ingested {path}: {info.traces} traces")
        for path, message in cycle.failed:
            print(f"[cycle {cycle.index}] skipped {path}: {message}", file=sys.stderr)
        if cycle.refresh is not None:
            refresh = cycle.refresh
            how = "full re-mine" if refresh.full_remine else (
                f"re-mined {refresh.roots_remined}/{refresh.roots_total} roots"
            )
            print(
                f"[cycle {cycle.index}] {how}: serving {cycle.rules_served} rules"
                f"{' (hot-swapped)' if cycle.swapped else ''}"
            )
        if cycle.monitoring is not None:
            print(
                f"[cycle {cycle.index}] monitored {cycle.traces_added} new traces: "
                f"{cycle.monitoring.satisfied_points}/{cycle.monitoring.total_points} "
                f"points satisfied, {cycle.violation_count} violations"
            )
            for violation in cycle.monitoring.violations[: args.max_violations]:
                print(f"  VIOLATION {violation.describe()}")

    daemon = WatchDaemon(
        args.dir,
        args.store,
        NonRedundantRecurrentRuleMiner(config),
        backend=backend,
        format=args.format,
        repository_path=args.save,
        persist_cache=True,
        on_cycle=report_cycle,
        push_port=args.push_port,
        http_port=args.http_port,
        http_host=args.http_host,
    )
    if daemon.push_address is not None:
        host, port = daemon.push_address
        print(f"push serving on {host}:{port}", file=sys.stderr, flush=True)
    if daemon.http_address is not None:
        host, port = daemon.http_address
        print(f"http exposition on http://{host}:{port}", file=sys.stderr, flush=True)
    try:
        cycles = daemon.run_forever(poll_interval=args.interval, max_cycles=args.max_cycles)
    finally:
        if daemon.pool is not None:
            pushed = daemon.pool.report()
            if pushed.total_points:
                print(f"pushed sessions: {pushed.summary()}", file=sys.stderr)
        daemon.close()
    report = daemon.monitoring
    print(
        f"watched {cycles} cycles: {len(daemon.store)} traces in store, "
        f"{daemon.swaps} hot swaps, {report.violation_count} violations"
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.port < 0:
        print("error: --port must be >= 0", file=sys.stderr)
        return 2
    try:
        repository = SpecificationRepository.load(args.rules)
    except (DataFormatError, OSError) as error:
        print(f"error: {args.rules}: {error}", file=sys.stderr)
        return 2
    if not repository.rules:
        print("note: the specification repository contains no rules", file=sys.stderr)
    pool = MonitorPool(repository.rules, shards=args.shards, queue_depth=args.queue_depth)
    server = EventPushServer(pool, host=args.host, port=args.port)
    host, port = server.address
    # The bound address goes to stderr first (and flushed): with --port 0
    # it is the only way a supervising process learns the ephemeral port.
    print(
        f"serving {len(repository.rules)} rules on {host}:{port} "
        f"(shards={args.shards}, queue-depth={args.queue_depth})",
        file=sys.stderr,
        flush=True,
    )
    http_server = None
    if args.http_port is not None:
        http_server = MetricsHTTPServer(host=args.http_host, port=args.http_port, pool=pool)
        http_host, http_port = http_server.start()
        print(
            f"http exposition on http://{http_host}:{http_port}",
            file=sys.stderr,
            flush=True,
        )
    # Drain on SIGTERM/SIGINT: stop accepting, close open sessions so
    # their reports land in the aggregate output below.  shutdown() must
    # run off the main thread — calling it from a signal handler while
    # serve_forever() is on the stack would deadlock.
    previous = {}

    def _drain_signal(signum: int, frame: object) -> None:  # pragma: no cover - signal path
        print(f"received {signal.Signals(signum).name}, draining...", file=sys.stderr, flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _drain_signal)
        except ValueError:  # pragma: no cover - non-main thread (embedding)
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        if http_server is not None:
            http_server.close()
        server.close()
        drained = pool.drain_sessions()
        if drained:
            print(f"drained {drained} open sessions", file=sys.stderr)
        stats = pool.stats()
        report = pool.report()
        pool.close()
        print(
            f"served {stats['sessions_closed']} sessions "
            f"({stats['events_processed']} events, {stats['busy_rejections']} busy "
            f"rejections, generation {stats['generation']})"
        )
        print(report.summary())
        for violation in report.violations[: args.max_violations]:
            print(f"  VIOLATION {violation.describe()}")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    try:
        with PushClient(args.host, args.port, timeout=args.timeout) as client:
            text = client.metrics()
    except (OSError, ProtocolError) as error:
        print(f"error: {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    # The raw text exposition, ready to pipe into a file or a Prometheus
    # textfile collector.
    print(text, end="")
    return 0


#: ANSI: clear the screen and home the cursor (repro top's refresh).
_CLEAR_SCREEN = "\x1b[2J\x1b[H"


def _render_top(
    stats: dict,
    previous: Optional[dict],
    analytics: dict,
    elapsed: float,
    top_n: int,
) -> str:
    """One ``repro top`` frame as plain text (pure: samples in, text out).

    ``stats``/``previous`` are two successive wire ``STATS`` replies taken
    ``elapsed`` seconds apart; the sliding-window rates are the counter
    deltas over that window (the first frame, with no ``previous``, shows
    totals only).  ``analytics`` is an ``ANALYTICS`` reply whose rules are
    already server-ranked most-violated first.
    """
    lines = [
        f"repro top — generation {stats.get('generation')}, "
        f"{stats.get('rules')} rules, uptime {stats.get('uptime_seconds', 0):.0f}s"
    ]
    window = max(elapsed, 1e-9)

    def rate(key: str) -> str:
        if previous is None:
            return "-"
        delta = stats.get(key, 0) - previous.get(key, 0)
        return f"{delta / window:.1f}/s"

    lines.append(
        f"sessions: {stats.get('sessions_active', 0)} active, "
        f"{stats.get('sessions_closed', 0)} closed ({rate('sessions_closed')}), "
        f"{stats.get('sessions_lost', 0)} lost"
    )
    lines.append(
        f"events:   {stats.get('events_processed', 0)} processed "
        f"({rate('events_processed')}), "
        f"{stats.get('busy_rejections', 0)} busy ({rate('busy_rejections')})"
    )
    per_shard = stats.get("per_shard") or []
    if per_shard:
        depths = " ".join(
            f"{entry.get('shard')}:{entry.get('queued', 0)}" for entry in per_shard
        )
        restarts = sum(entry.get("restarts", 0) for entry in per_shard)
        lines.append(
            f"shards:   {len(per_shard)} (queue depth {depths}"
            f"; cap {stats.get('queue_depth')}; {restarts} restarts)"
        )
    rules = analytics.get("rules") or {}
    lines.append("")
    if rules:
        lines.append(f"hottest rules (top {top_n} by violations, then opened points):")
        rows = [
            {
                "rule": key,
                "opened": entry.get("opened", 0),
                "satisfied": entry.get("satisfied", 0),
                "violated": entry.get("violated", 0),
                "trie_advances": entry.get("trie_advances", 0),
            }
            for key, entry in list(rules.items())[:top_n]
        ]
        lines.append(format_table(rows))
    else:
        lines.append("no per-rule activity yet")
    return "\n".join(lines) + "\n"


def _command_top(args: argparse.Namespace) -> int:
    frames = 0
    previous: Optional[dict] = None
    sampled_at = 0.0
    try:
        with PushClient(args.host, args.port, timeout=args.timeout) as client:
            while args.iterations is None or frames < args.iterations:
                if frames:
                    time.sleep(args.interval)
                now = time.monotonic()
                stats = client.stats()
                analytics = client.analytics(top=args.top_n)
                frame = _render_top(
                    stats, previous, analytics, now - sampled_at, args.top_n
                )
                if not args.no_clear:
                    print(_CLEAR_SCREEN, end="")
                print(frame, end="", flush=True)
                previous, sampled_at = stats, now
                frames += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    except (OSError, ProtocolError) as error:
        print(f"error: {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "jboss": _command_jboss,
    "ingest": _command_ingest,
    "mine-patterns": _command_mine_patterns,
    "mine-rules": _command_mine_rules,
    "fsck": _command_fsck,
    "compact": _command_compact,
    "monitor": _command_monitor,
    "watch": _command_watch,
    "serve": _command_serve,
    "metrics": _command_metrics,
    "top": _command_top,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-mine`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace_out", None):
        # One collector for the whole command; every span below (engine
        # shards, daemon cycles, server dispatch) lands in the file.
        tracing.install(args.trace_out)
    try:
        return _COMMANDS[args.command](args)
    finally:
        tracing.reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
