"""Command-line interface: ``repro-mine``.

Sub-commands cover the full workflow of the paper:

* ``generate``     — create a synthetic QUEST-style dataset (Section 6);
* ``jboss``        — produce the simulated JBoss case-study traces (Section 7);
* ``ingest``       — stream trace files into an append-only trace store;
* ``mine-patterns``— mine frequent / closed iterative patterns (Section 4);
* ``mine-rules``   — mine full / non-redundant recurrent rules (Section 5);
* ``monitor``      — check a specification repository against traces.

Every command reads and writes the trace formats of :mod:`repro.traces.io`
(text / jsonl / csv, each with a transparent ``.gz`` variant) and prints
small plain-text reports; mined specifications can be saved as a JSON
repository (see :class:`repro.specs.SpecificationRepository`).  The mining
commands accept either a flat trace file (``--input``) or a trace store
(``--store``, optionally appending new files first with ``--append``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.reporting import format_table
from .core.errors import ConfigurationError, DataFormatError
from .datagen.profiles import PAPER_PROFILE, generate_profile
from .engine import BACKEND_CHOICES, ExecutionBackend, resolve_backend
from .jboss.workloads import (
    generate_case_study_traces,
    generate_security_traces,
    generate_transaction_traces,
)
from .patterns.closed_miner import ClosedIterativePatternMiner
from .patterns.config import IterativeMiningConfig
from .patterns.full_miner import FullIterativePatternMiner
from .rules.config import RuleMiningConfig
from .rules.full_miner import FullRecurrentRuleMiner
from .rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from .ingest.formats import (
    DEFAULT_BATCH_SIZE,
    format_for_path,
    stream_batches,
    stream_traces,
)
from .ingest.store import TraceStore
from .specs.repository import SpecificationRepository
from .traces.io import read_traces, write_traces
from .verification.monitor import RuleMonitor

#: Shared help string for every ``--format`` option.
_FORMAT_HELP = "text | jsonl | csv (suffix .gz for the gzip-wrapped variants)"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Mine iterative patterns and recurrent rules from program traces.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--profile", default=PAPER_PROFILE, help="D/C/N/S profile name")
    generate.add_argument("--scale", type=float, default=0.1, help="scale factor for D and N")
    generate.add_argument("--seed", type=int, default=None, help="random seed override")
    generate.add_argument("--output", required=True, help="output trace file")
    generate.add_argument("--format", default=None, help=_FORMAT_HELP)

    jboss = subparsers.add_parser("jboss", help="generate the simulated JBoss case-study traces")
    jboss.add_argument(
        "--component",
        choices=["transaction", "security", "both"],
        default="both",
        help="which simulated component to exercise",
    )
    jboss.add_argument("--output", required=True, help="output trace file")
    jboss.add_argument("--format", default=None, help=_FORMAT_HELP)

    ingest = subparsers.add_parser(
        "ingest", help="stream trace files into an append-only trace store"
    )
    ingest.add_argument("--store", required=True, help="trace store directory")
    ingest.add_argument(
        "--input",
        nargs="+",
        default=[],
        help="trace files to append (without any, prints the store's stats)",
    )
    ingest.add_argument("--format", default=None, help=_FORMAT_HELP)
    ingest.add_argument(
        "--batch-size",
        type=_positive_int,
        default=DEFAULT_BATCH_SIZE,
        help=f"traces per appended batch (default {DEFAULT_BATCH_SIZE}, keeping "
        "memory bounded on huge files; pass a larger value for fewer batches)",
    )

    patterns = subparsers.add_parser("mine-patterns", help="mine iterative patterns")
    _add_source_arguments(patterns)
    patterns.add_argument("--min-support", type=float, default=2.0)
    patterns.add_argument("--max-length", type=int, default=None)
    patterns.add_argument("--full", action="store_true", help="mine all frequent patterns")
    patterns.add_argument("--top", type=int, default=20, help="how many patterns to print")
    patterns.add_argument("--save", default=None, help="save results to a JSON repository")
    _add_engine_arguments(patterns)

    rules = subparsers.add_parser("mine-rules", help="mine recurrent rules")
    _add_source_arguments(rules)
    rules.add_argument("--min-s-support", type=float, default=2.0)
    rules.add_argument("--min-i-support", type=int, default=1)
    rules.add_argument("--min-confidence", type=float, default=0.5)
    rules.add_argument("--max-premise-length", type=int, default=None)
    rules.add_argument("--max-consequent-length", type=int, default=None)
    rules.add_argument("--full", action="store_true", help="mine the full (redundant) rule set")
    rules.add_argument("--top", type=int, default=20, help="how many rules to print")
    rules.add_argument("--save", default=None, help="save results to a JSON repository")
    _add_engine_arguments(rules)

    monitor = subparsers.add_parser("monitor", help="check rules against traces")
    monitor.add_argument("--input", required=True, help="input trace file")
    monitor.add_argument("--format", default=None, help=_FORMAT_HELP)
    monitor.add_argument("--specs", required=True, help="JSON specification repository")
    monitor.add_argument("--max-violations", type=int, default=10, help="violations to print")

    return parser


def _positive_int(value: str) -> int:
    try:
        workers = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from error
    if workers < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value!r}")
    return workers


def _add_source_arguments(subparser: argparse.ArgumentParser) -> None:
    """Trace-source options shared by the mining commands."""
    subparser.add_argument("--input", default=None, help="input trace file")
    subparser.add_argument("--format", default=None, help=_FORMAT_HELP)
    subparser.add_argument(
        "--store",
        default=None,
        help="mine a trace-store snapshot instead of a flat file",
    )
    subparser.add_argument(
        "--append",
        action="append",
        default=[],
        metavar="FILE",
        help="append this trace file to the existing --store before mining "
        "(repeatable; create the store with `repro ingest` first)",
    )


def _validate_trace_inputs(paths: List[str], format: Optional[str]) -> Optional[str]:
    """Path-level validation shared by ingest and --append: an error
    message, or None when every path looks like a readable trace file."""
    for path in paths:
        try:
            format_for_path(path, format)
        except DataFormatError as error:
            return str(error)
        if not Path(path).is_file():
            return f"no trace file at {path}"
    return None


def _annotated_stream(path: str, format: Optional[str]):
    """Stream one file's traces, prefixing parse errors with the path."""
    try:
        yield from stream_traces(path, format=format)
    except DataFormatError as error:
        raise DataFormatError(f"{path}: {error}") from error


def _load_mining_database(args: argparse.Namespace):
    """Resolve --input/--store/--append into a database, or None on misuse."""
    if (args.input is None) == (args.store is None):
        print("error: pass exactly one of --input or --store", file=sys.stderr)
        return None
    if args.append and args.store is None:
        print("error: --append requires --store", file=sys.stderr)
        return None
    if args.input is not None:
        return read_traces(args.input, format=args.format)
    try:
        # Only the ingest command may create a store: a typo'd --store
        # path must be a loud error (even with --append), never a quietly
        # mined empty — or nearly empty — fresh store.
        store = TraceStore.open(args.store)
    except DataFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    failure = _validate_trace_inputs(args.append, args.format)
    if failure is not None:
        print(f"error: {failure}", file=sys.stderr)
        return None
    # All-or-nothing across every --append file: a parse error anywhere
    # commits nothing, so fixing the bad file and re-running the same
    # command cannot duplicate the good files' traces.
    try:
        batches = store.append_batches(
            _annotated_stream(path, args.format) for path in args.append
        )
    except DataFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    # Progress goes to stderr: the mining commands' stdout is the mined
    # report and must stay machine-readable (diff-able across sources).
    for batch in batches:
        print(
            f"appended batch {batch.index}: {batch.traces} traces ({batch.events} events)",
            file=sys.stderr,
        )
    if not len(store):
        print(f"error: store {args.store} holds no traces; ingest some first", file=sys.stderr)
        return None
    description = store.describe()
    print(
        f"store {args.store}: {description['traces']} traces in "
        f"{description['batches']} batches, fingerprint {str(description['fingerprint'])[:12]}",
        file=sys.stderr,
    )
    return store.snapshot()


def _add_engine_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for the parallel engine (unset: serial with "
        "'auto', all CPU cores with '--backend process')",
    )
    subparser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="execution backend; 'auto' goes parallel when --workers > 1, "
        "'stealing' adds dynamic subtree splitting for skewed databases",
    )
    subparser.add_argument(
        "--split-depth",
        type=_positive_int,
        default=None,
        help="stealing backend only: maximum search depth at which frontier "
        "nodes may still be split into stealable units (default 8)",
    )


def _resolve_backend_or_none(args: argparse.Namespace) -> Optional[ExecutionBackend]:
    """Resolve --backend/--workers/--split-depth, printing a CLI error on contradiction."""
    try:
        return resolve_backend(args.backend, args.workers, args.split_depth)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def _command_generate(args: argparse.Namespace) -> int:
    database = generate_profile(args.profile, scale=args.scale, seed=args.seed)
    write_traces(database, args.output, format=args.format)
    stats = database.describe()
    print(f"wrote {int(stats['sequences'])} sequences ({int(stats['events'])} events) to {args.output}")
    return 0


def _command_jboss(args: argparse.Namespace) -> int:
    if args.component == "transaction":
        database = generate_transaction_traces()
    elif args.component == "security":
        database = generate_security_traces()
    else:
        database = generate_case_study_traces()
    write_traces(database, args.output, format=args.format)
    print(f"wrote {len(database)} JBoss {args.component} traces to {args.output}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    # Validate every input before creating or touching the store: a typo'd
    # path must not leave behind a fresh empty store that later --store
    # mining would refuse as empty (or, worse, quietly mine).
    failure = _validate_trace_inputs(args.input, args.format)
    if failure is not None:
        print(f"error: {failure}", file=sys.stderr)
        return 2
    fresh = not (Path(args.store) / "manifest.json").exists()
    try:
        # Stats-only invocations never create: a typo'd store path must
        # not leave a plausible-looking empty store behind.
        store = TraceStore(args.store) if args.input else TraceStore.open(args.store)
    except (DataFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for path in args.input:
        traces = _annotated_stream(path, args.format)
        try:
            # One manifest commit per file: a parse error mid-file commits
            # none of the file's chunks, so fixing it and re-running never
            # duplicates traces (earlier *files* stay committed — re-run
            # with the failed files only).
            batches = store.append_batches(stream_batches(traces, args.batch_size))
        except DataFormatError as error:
            print(f"error: {error}", file=sys.stderr)
            if fresh:
                # Nothing was ever committed: remove the store we created
                # so a later --store mine fails loudly instead of finding
                # a plausible-looking empty corpus.
                store.discard_if_empty()
            return 2
        for batch in batches:
            print(
                f"appended batch {batch.index} from {path}: "
                f"{batch.traces} traces ({batch.events} events)"
            )
    description = store.describe()
    print(
        f"store {args.store}: {description['traces']} traces "
        f"({description['events']} events, {description['distinct_events']} distinct) "
        f"in {description['batches']} batches, {description['bytes']} bytes, "
        f"fingerprint {str(description['fingerprint'])[:12] or '-'}"
    )
    return 0


def _command_mine_patterns(args: argparse.Namespace) -> int:
    database = _load_mining_database(args)
    if database is None:
        return 2
    config = IterativeMiningConfig(
        min_support=args.min_support,
        max_pattern_length=args.max_length,
        collect_instances=False,
        adjacent_absorption_pruning=not args.full,
    )
    backend = _resolve_backend_or_none(args)
    if backend is None:
        return 2
    miner = FullIterativePatternMiner(config) if args.full else ClosedIterativePatternMiner(config)
    result = miner.mine(database, backend=backend)
    kind = "frequent" if args.full else "closed"
    print(
        f"mined {len(result)} {kind} iterative patterns "
        f"(min_sup={result.min_support}, backend={backend.describe()}, "
        f"{result.stats.elapsed_seconds:.2f}s)"
    )
    print(format_table(result.as_rows()[: args.top], columns=["support", "length", "events"]))
    if args.save:
        repository = SpecificationRepository(name=f"{kind}-patterns")
        repository.add_pattern_result(result)
        repository.save(args.save)
        print(f"saved {len(result)} patterns to {args.save}")
    return 0


def _command_mine_rules(args: argparse.Namespace) -> int:
    database = _load_mining_database(args)
    if database is None:
        return 2
    config = RuleMiningConfig(
        min_s_support=args.min_s_support,
        min_i_support=args.min_i_support,
        min_confidence=args.min_confidence,
        max_premise_length=args.max_premise_length,
        max_consequent_length=args.max_consequent_length,
    )
    backend = _resolve_backend_or_none(args)
    if backend is None:
        return 2
    miner = FullRecurrentRuleMiner(config) if args.full else NonRedundantRecurrentRuleMiner(config)
    result = miner.mine(database, backend=backend)
    kind = "significant" if args.full else "non-redundant"
    print(
        f"mined {len(result)} {kind} recurrent rules "
        f"(min_s_sup={result.min_s_support}, min_conf={result.min_confidence}, "
        f"backend={backend.describe()}, {result.stats.elapsed_seconds:.2f}s)"
    )
    print(
        format_table(
            result.as_rows()[: args.top],
            columns=["confidence", "s_support", "i_support", "premise", "consequent"],
        )
    )
    if args.save:
        repository = SpecificationRepository(name=f"{kind}-rules")
        repository.add_rule_result(result)
        repository.save(args.save)
        print(f"saved {len(result)} rules to {args.save}")
    return 0


def _command_monitor(args: argparse.Namespace) -> int:
    database = read_traces(args.input, format=args.format)
    repository = SpecificationRepository.load(args.specs)
    if not repository.rules:
        print("the specification repository contains no rules to monitor", file=sys.stderr)
        return 2
    monitor = RuleMonitor(repository.rules)
    report = monitor.check_database(database)
    print(report.summary())
    for violation in report.violations[: args.max_violations]:
        print(f"  VIOLATION {violation.describe()}")
    return 0 if report.violation_count == 0 else 1


_COMMANDS = {
    "generate": _command_generate,
    "jboss": _command_jboss,
    "ingest": _command_ingest,
    "mine-patterns": _command_mine_patterns,
    "mine-rules": _command_mine_rules,
    "monitor": _command_monitor,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-mine`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
