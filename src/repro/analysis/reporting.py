"""Plain-text table formatting for experiment results.

The benchmark harness prints, for every figure of the paper, the same series
the figure plots (threshold on the x-axis, runtime and result counts for the
baseline and the proposed miner).  The formatters here keep that output
consistent across benchmarks, examples and the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Sequence as TypingSequence

from .experiment import SweepRow


def format_table(rows: TypingSequence[Dict[str, object]], columns: TypingSequence[str] = None) -> str:
    """Render dictionaries as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render_value(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        table.append([render_value(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    for line_index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if line_index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def format_sweep(
    rows: TypingSequence[SweepRow],
    baseline_label: str = "Full",
    proposed_label: str = "Proposed",
) -> str:
    """Render a Figure 1/2/3 style sweep as a table with friendly column names."""
    if not rows:
        return "(no sweep rows)"
    threshold_name = rows[0].threshold_name
    friendly_rows: List[Dict[str, object]] = []
    for row in rows:
        friendly_rows.append(
            {
                threshold_name: row.threshold,
                f"{baseline_label} runtime (s)": row.baseline_runtime,
                f"{proposed_label} runtime (s)": row.proposed_runtime,
                f"{baseline_label} results": row.baseline_count,
                f"{proposed_label} results": row.proposed_count,
                "runtime ratio": row.runtime_ratio,
                "count ratio": row.count_ratio,
            }
        )
    return format_table(friendly_rows)


def format_series(rows: TypingSequence[SweepRow]) -> Dict[str, List[float]]:
    """The sweep as plottable series (x values plus the four y series of a figure)."""
    return {
        "x": [row.threshold for row in rows],
        "baseline_runtime": [row.baseline_runtime for row in rows],
        "proposed_runtime": [row.proposed_runtime for row in rows],
        "baseline_count": [float(row.baseline_count) for row in rows],
        "proposed_count": [float(row.proposed_count) for row in rows],
    }
