"""Experiment harness: threshold sweeps, comparisons and reporting."""

from .compare import (
    HeadlineRatios,
    closed_result_is_consistent,
    headline_ratios,
    nonredundant_result_is_consistent,
)
from .experiment import (
    SweepRow,
    iterative_pattern_sweep,
    rule_sweep_vs_confidence,
    rule_sweep_vs_s_support,
)
from .reporting import format_series, format_sweep, format_table

__all__ = [
    "HeadlineRatios",
    "closed_result_is_consistent",
    "headline_ratios",
    "nonredundant_result_is_consistent",
    "SweepRow",
    "iterative_pattern_sweep",
    "rule_sweep_vs_confidence",
    "rule_sweep_vs_s_support",
    "format_series",
    "format_sweep",
    "format_table",
]
