"""Threshold-sweep experiment harness.

The benchmark modules regenerate the paper's Figures 1–3 by sweeping the
relevant threshold and, at each point, running the baseline (full) and the
proposed (closed / non-redundant) miner on the same database.  This module
holds the sweep drivers so benchmarks, examples and the CLI all share the
same code path and produce identically shaped rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence as TypingSequence

from ..core.sequence import SequenceDatabase
from ..core.stats import Timer
from ..patterns.closed_miner import ClosedIterativePatternMiner
from ..patterns.config import IterativeMiningConfig
from ..patterns.full_miner import FullIterativePatternMiner
from ..rules.config import RuleMiningConfig
from ..rules.full_miner import FullRecurrentRuleMiner
from ..rules.nonredundant_miner import NonRedundantRecurrentRuleMiner


@dataclass
class SweepRow:
    """One row of a Figure 1/2/3 style comparison."""

    threshold_name: str
    threshold: float
    baseline_runtime: float
    baseline_count: int
    proposed_runtime: float
    proposed_count: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def runtime_ratio(self) -> float:
        """Baseline runtime divided by proposed runtime (>1 means proposed is faster)."""
        if self.proposed_runtime <= 0:
            return float("inf")
        return self.baseline_runtime / self.proposed_runtime

    @property
    def count_ratio(self) -> float:
        """Baseline result count divided by proposed result count."""
        if self.proposed_count <= 0:
            return float("inf")
        return self.baseline_count / self.proposed_count

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view used by the reporting helpers."""
        row = {
            self.threshold_name: self.threshold,
            "baseline_runtime_s": self.baseline_runtime,
            "baseline_count": float(self.baseline_count),
            "proposed_runtime_s": self.proposed_runtime,
            "proposed_count": float(self.proposed_count),
            "runtime_ratio": self.runtime_ratio,
            "count_ratio": self.count_ratio,
        }
        row.update(self.extra)
        return row


def iterative_pattern_sweep(
    database: SequenceDatabase,
    min_supports: TypingSequence[float],
    max_pattern_length: Optional[int] = None,
    closed_uses_absorption_pruning: bool = True,
) -> List[SweepRow]:
    """Figure 1: full vs closed iterative pattern mining across ``min_supports``."""
    rows: List[SweepRow] = []
    for min_support in min_supports:
        full_config = IterativeMiningConfig(
            min_support=min_support,
            max_pattern_length=max_pattern_length,
            collect_instances=False,
        )
        closed_config = IterativeMiningConfig(
            min_support=min_support,
            max_pattern_length=max_pattern_length,
            collect_instances=False,
            adjacent_absorption_pruning=closed_uses_absorption_pruning,
        )
        with Timer() as full_timer:
            full_result = FullIterativePatternMiner(full_config).mine(database)
        with Timer() as closed_timer:
            closed_result = ClosedIterativePatternMiner(closed_config).mine(database)
        rows.append(
            SweepRow(
                threshold_name="min_sup",
                threshold=min_support,
                baseline_runtime=full_timer.seconds,
                baseline_count=len(full_result),
                proposed_runtime=closed_timer.seconds,
                proposed_count=len(closed_result),
                extra={
                    "full_visited": float(full_result.stats.visited),
                    "closed_visited": float(closed_result.stats.visited),
                },
            )
        )
    return rows


def _rule_sweep_row(
    database: SequenceDatabase, threshold_name: str, threshold: float, config: RuleMiningConfig
) -> SweepRow:
    with Timer() as full_timer:
        full_result = FullRecurrentRuleMiner(config).mine(database)
    with Timer() as nr_timer:
        nr_result = NonRedundantRecurrentRuleMiner(config).mine(database)
    return SweepRow(
        threshold_name=threshold_name,
        threshold=threshold,
        baseline_runtime=full_timer.seconds,
        baseline_count=len(full_result),
        proposed_runtime=nr_timer.seconds,
        proposed_count=len(nr_result),
        extra={
            "full_visited": float(full_result.stats.visited),
            "nr_visited": float(nr_result.stats.visited),
        },
    )


def rule_sweep_vs_s_support(
    database: SequenceDatabase,
    min_s_supports: TypingSequence[float],
    min_confidence: float = 0.5,
    min_i_support: int = 1,
    max_premise_length: Optional[int] = None,
    max_consequent_length: Optional[int] = None,
) -> List[SweepRow]:
    """Figure 2: full vs non-redundant rule mining across ``min_s-sup`` values."""
    rows: List[SweepRow] = []
    for min_s_support in min_s_supports:
        config = RuleMiningConfig(
            min_s_support=min_s_support,
            min_i_support=min_i_support,
            min_confidence=min_confidence,
            max_premise_length=max_premise_length,
            max_consequent_length=max_consequent_length,
        )
        rows.append(_rule_sweep_row(database, "min_s_sup", min_s_support, config))
    return rows


def rule_sweep_vs_confidence(
    database: SequenceDatabase,
    min_confidences: TypingSequence[float],
    min_s_support: float = 2.0,
    min_i_support: int = 1,
    max_premise_length: Optional[int] = None,
    max_consequent_length: Optional[int] = None,
) -> List[SweepRow]:
    """Figure 3: full vs non-redundant rule mining across ``min_conf`` values."""
    rows: List[SweepRow] = []
    for min_confidence in min_confidences:
        config = RuleMiningConfig(
            min_s_support=min_s_support,
            min_i_support=min_i_support,
            min_confidence=min_confidence,
            max_premise_length=max_premise_length,
            max_consequent_length=max_consequent_length,
        )
        rows.append(_rule_sweep_row(database, "min_conf", min_confidence, config))
    return rows
