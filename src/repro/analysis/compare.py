"""Comparisons between baseline and proposed result sets.

Two kinds of comparison back the paper's claims:

* *aggregate* — the headline "up to N× fewer results / less runtime" numbers
  quoted in Section 6, computed from a sweep (:func:`headline_ratios`);
* *semantic* — the closed / non-redundant result must be a lossless summary
  of the full result: every full pattern is a sub-pattern of some closed
  pattern with the same support, and every significant rule is either
  non-redundant or made redundant by a kept rule.  These checks are used by
  the integration tests and available to users as sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence as TypingSequence

from ..core.pattern import is_subsequence
from ..patterns.result import PatternMiningResult
from ..rules.result import RuleMiningResult
from .experiment import SweepRow


@dataclass(frozen=True)
class HeadlineRatios:
    """The best-case runtime and result-count reductions across a sweep."""

    max_runtime_ratio: float
    max_count_ratio: float
    at_threshold_runtime: float
    at_threshold_count: float

    def describe(self, what: str = "results") -> str:
        """The Section 6 style sentence for these ratios."""
        return (
            f"up to {self.max_runtime_ratio:.1f}x less runtime and "
            f"{self.max_count_ratio:.1f}x fewer {what}"
        )


def headline_ratios(rows: TypingSequence[SweepRow]) -> HeadlineRatios:
    """Compute the paper's "up to N times less" numbers from sweep rows."""
    if not rows:
        return HeadlineRatios(1.0, 1.0, 0.0, 0.0)
    best_runtime = max(rows, key=lambda row: row.runtime_ratio)
    best_count = max(rows, key=lambda row: row.count_ratio)
    return HeadlineRatios(
        max_runtime_ratio=best_runtime.runtime_ratio,
        max_count_ratio=best_count.count_ratio,
        at_threshold_runtime=best_runtime.threshold,
        at_threshold_count=best_count.threshold,
    )


def closed_result_is_consistent(
    full: PatternMiningResult, closed: PatternMiningResult
) -> List[str]:
    """Consistency problems between a full and a closed pattern result (empty = OK).

    Checks: the closed set is a subset of the full set with identical
    supports, and every full pattern has a closed super-pattern with support
    at least as large (the summary property that makes the closed set
    lossless for support queries along extensions).
    """
    problems: List[str] = []
    full_supports = {pattern.events: pattern.support for pattern in full.patterns}
    for pattern in closed.patterns:
        if pattern.events not in full_supports:
            problems.append(f"closed pattern {pattern.events} missing from the full set")
        elif full_supports[pattern.events] != pattern.support:
            problems.append(
                f"support mismatch for {pattern.events}: "
                f"closed={pattern.support} full={full_supports[pattern.events]}"
            )
    for pattern in full.patterns:
        has_cover = any(
            is_subsequence(pattern.events, closed_pattern.events)
            and closed_pattern.support >= pattern.support
            for closed_pattern in closed.patterns
        )
        if not has_cover:
            problems.append(f"full pattern {pattern.events} has no covering closed pattern")
    return problems


def nonredundant_result_is_consistent(
    full: RuleMiningResult, non_redundant: RuleMiningResult
) -> List[str]:
    """Consistency problems between a full and a non-redundant rule result (empty = OK)."""
    problems: List[str] = []
    full_signatures = {rule.signature(): rule for rule in full.rules}
    for rule in non_redundant.rules:
        if rule.signature() not in full_signatures:
            problems.append(f"non-redundant rule {rule.signature()} missing from the full set")
    kept = list(non_redundant.rules)
    for rule in full.rules:
        if rule.signature() in {kept_rule.signature() for kept_rule in kept}:
            continue
        covered = any(rule.is_redundant_with_respect_to(kept_rule) for kept_rule in kept)
        if not covered:
            problems.append(
                f"significant rule {rule.signature()} is neither kept nor covered by a kept rule"
            )
    return problems
