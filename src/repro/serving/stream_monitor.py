"""Streaming runtime monitoring over a compiled rule automaton.

:class:`StreamingMonitor` consumes events and traces *incrementally* —
``feed`` one event at a time, ``end_trace`` when a trace closes, ``report``
for the running aggregate — and emits byte-for-byte the same
:class:`~repro.verification.violations.RuleViolation`s the offline
:class:`~repro.verification.monitor.RuleMonitor` derives by re-scanning,
pinned by the hypothesis parity suite in ``tests/serving/`` against both
the temporal-points semantics and the LTL translation.

Per event the monitor does three things, in an order that encodes the
"strictly after" halves of Definition 5.1:

1. **advance consequent trackers** — pending temporal points opened at
   *earlier* positions consume this event for their greedy consequent
   match (a point opened at this very position must not, so opening comes
   second);
2. **open temporal points** — every rule already armed whose premise-last
   event equals this one opens a point here (a rule arming at this very
   position must not, so arming comes third);
3. **advance the premise trie** — trie nodes watching this symbol are
   reached, registering their children in the watch index and arming the
   rules whose premise prefix ends there.

Every step only touches state that actually moves: unknown events fall out
of the symbol table in O(1), each trie node is activated at most once per
trace, and consequent advancement splices whole stage lists.  The per-event
cost is therefore amortized O(active states), independent of trace length —
the property that makes the monitor serviceable on live streams where the
offline monitor's per-trace re-scans are quadratic.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence as TypingSequence, Tuple

from ..core.errors import MonitoringError
from ..core.events import EventLabel
from ..core.sequence import SequenceDatabase
from ..obs import metrics as obs_metrics
from ..verification.violations import MonitoringReport, RuleViolation
from .compile import CompiledRuleSet, NodeId, RuleSource, Symbol, compile_rules


def rule_key(rule) -> str:
    """The stable string id the analytics layer keys rules by.

    Shape only — ``"open -> use, close"`` — never the mined statistics:
    the same rule re-mined at a new support must keep accumulating under
    one key, and the key must survive JSON framing (the ``ANALYTICS``
    verb) and Prometheus label quoting unchanged.
    """
    return f"{', '.join(rule.premise)} -> {', '.join(rule.consequent)}"


class _ConsequentTracker:
    """All pending temporal points of one rule within the current trace.

    ``stages[s]`` holds the opening positions of the points whose greedy
    consequent match has consumed ``s`` events so far; a point leaving the
    last stage is satisfied and only counted.  Points open in ascending
    position order and whole stages advance together, so every stage list
    stays ascending — end-of-trace violation order is position order.
    """

    __slots__ = ("stages", "opened", "satisfied", "first_open")

    def __init__(self, consequent_length: int) -> None:
        self.stages: List[List[int]] = [[] for _ in range(consequent_length)]
        self.opened = 0
        self.satisfied = 0
        #: perf_counter at the first opened point — the start of the rule's
        #: "active" window for the per-rule latency histogram.
        self.first_open: Optional[float] = None

    def open(self, position: int) -> None:
        if self.opened == 0:
            self.first_open = time.perf_counter()
        self.opened += 1
        self.stages[0].append(position)

    def advance(self, moves: TypingSequence[int]) -> None:
        last = len(self.stages) - 1
        for stage in moves:  # descending: one consequent step per event
            pending = self.stages[stage]
            if not pending:
                continue
            if stage == last:
                self.satisfied += len(pending)
            else:
                self.stages[stage + 1].extend(pending)
            pending.clear()

    def pending_positions(self) -> List[int]:
        return sorted(
            position for stage in self.stages for position in stage
        )


class _TraceRun:
    """Mutable matching state of one in-flight trace."""

    __slots__ = (
        "trace_index",
        "name",
        "position",
        "node_watch",
        "point_watch",
        "consequent_watch",
        "trackers",
        "armed_counts",
    )

    def __init__(self, compiled: CompiledRuleSet, trace_index: int, name: Optional[str]) -> None:
        self.trace_index = trace_index
        self.name = name
        self.position = -1
        #: rule id -> times the premise trie armed the rule this trace
        #: (plain int bumps on the arming path only — never per event).
        self.armed_counts: Dict[int, int] = {}
        #: symbol -> trie nodes reachable from an already-reached node via
        #: that symbol.  This is the trie's "failure function" in disguise:
        #: a mismatching event touches none of the waiting nodes.
        self.node_watch: Dict[Symbol, List[NodeId]] = {}
        #: symbol -> armed rule ids opening a point on that symbol.
        self.point_watch: Dict[Symbol, List[int]] = {}
        #: symbol -> rule ids with a live tracker advancing on that symbol.
        self.consequent_watch: Dict[Symbol, List[int]] = {}
        #: rule id -> consequent tracker (created at the rule's first point).
        self.trackers: Dict[int, _ConsequentTracker] = {}
        self._reach(compiled, 0)

    def _reach(self, compiled: CompiledRuleSet, node: NodeId) -> None:
        """Activate a trie node: register its children, arm its rules."""
        for symbol, child in compiled.children[node].items():
            self.node_watch.setdefault(symbol, []).append(child)
        for rule_id in compiled.arm_at_node[node]:
            self.point_watch.setdefault(compiled.last_symbol[rule_id], []).append(rule_id)
            self.armed_counts[rule_id] = self.armed_counts.get(rule_id, 0) + 1

    def feed(self, compiled: CompiledRuleSet, event: EventLabel) -> None:
        self.position += 1
        symbol = compiled.symbol_of.get(event)
        if symbol is None:
            return
        # 1. Earlier points consume this event for their consequent match.
        for rule_id in self.consequent_watch.get(symbol, ()):
            self.trackers[rule_id].advance(compiled.consequent_moves[rule_id][symbol])
        # 2. Rules armed strictly before this position open points here.
        for rule_id in self.point_watch.get(symbol, ()):
            tracker = self.trackers.get(rule_id)
            if tracker is None:
                tracker = _ConsequentTracker(len(compiled.consequents[rule_id]))
                self.trackers[rule_id] = tracker
                for watched in compiled.consequent_moves[rule_id]:
                    self.consequent_watch.setdefault(watched, []).append(rule_id)
            tracker.open(self.position)
        # 3. The premise trie advances; newly armed rules wait for the
        #    *next* occurrence of their last event (strictly-after).
        reached = self.node_watch.pop(symbol, None)
        if reached is not None:
            for node in reached:
                self._reach(compiled, node)

    def close(
        self,
        compiled: CompiledRuleSet,
        analytics: Optional[Dict[str, Tuple[int, int, int, int, Optional[float]]]] = None,
    ) -> MonitoringReport:
        """Finish the trace: unmatched pending points become violations.

        ``analytics``, when given, is filled with this trace's per-rule
        tallies — ``rule key -> (opened, satisfied, violated, armings,
        first_open_perf_counter)`` (the key is :func:`rule_key`, a plain
        string so the tallies survive JSON framing) — for the serving
        analytics layer.  The report itself is untouched by the
        collection: the pool parity suites pin it byte-identical with
        analytics on.
        """
        report = MonitoringReport()
        for rule_id, rule in enumerate(compiled.rules):
            tracker = self.trackers.get(rule_id)
            opened = tracker.opened if tracker is not None else 0
            key = rule.signature()
            report.per_rule_points[key] = report.per_rule_points.get(key, 0) + opened
            report.total_points += opened
            if tracker is None:
                if analytics is not None:
                    armed = self.armed_counts.get(rule_id, 0)
                    if armed:
                        analytics[rule_key(rule)] = (0, 0, 0, armed, None)
                continue
            report.satisfied_points += tracker.satisfied
            pending = tracker.pending_positions()
            if analytics is not None:
                analytics[rule_key(rule)] = (
                    opened,
                    tracker.satisfied,
                    len(pending),
                    self.armed_counts.get(rule_id, 0),
                    tracker.first_open,
                )
            for position in pending:
                report.violations.append(
                    RuleViolation(
                        rule=rule,
                        trace_index=self.trace_index,
                        position=position,
                        trace_name=self.name,
                    )
                )
        return report


class StreamingMonitor:
    """Monitors an event stream against a compiled rule set, incrementally.

    Accepts a :class:`~repro.serving.compile.CompiledRuleSet` (the serving
    path: compile once, monitor many sessions) or anything
    :func:`~repro.serving.compile.compile_rules` accepts (rules, a
    specification repository).  ``first_trace_index`` offsets the trace
    numbering so violations reported by a long-running service reference
    corpus-wide trace indexes.

    One instance monitors one stream of traces *sequentially* and is not
    thread-safe; multi-tenant serving — many concurrent sessions, each its
    own monitor over the one shared compiled set — is the job of
    :class:`~repro.serving.pool.MonitorPool`, which also aggregates the
    per-session reports deterministically (in admission order, so the
    merged report is byte-identical to a single monitor fed the same
    sessions back to back).

    Example
    -------
    >>> monitor = StreamingMonitor(repository.rules)
    >>> for event in live_stream:
    ...     monitor.feed(event)
    >>> trace_report = monitor.end_trace()
    >>> monitor.report().violation_count
    """

    def __init__(self, rules: RuleSource, first_trace_index: int = 0) -> None:
        self.compiled = (
            rules if isinstance(rules, CompiledRuleSet) else compile_rules(rules)
        )
        self._next_trace_index = first_trace_index
        self._run: Optional[_TraceRun] = None
        self._combined = MonitoringReport()
        #: Completed traces (all sessions' ``end_trace`` calls so far).
        self.traces_seen = 0
        #: Events consumed across completed *and* the in-flight trace.
        self.events_seen = 0
        #: Cumulative per-rule analytics over every closed trace:
        #: ``signature -> [opened, satisfied, violated, trie_advances]``.
        #: Plain int adds folded at trace close (never per event), so
        #: accumulation is order-free and cheap; :meth:`rule_analytics`
        #: exposes the dict-shaped view the ANALYTICS wire verb serves.
        self.analytics: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------ #
    # Incremental consumption
    # ------------------------------------------------------------------ #
    def begin_trace(self, name: Optional[str] = None) -> None:
        """Open a new trace explicitly (``feed`` auto-opens an unnamed one)."""
        if self._run is not None:
            raise MonitoringError(
                "a trace is already open; call end_trace() before begin_trace()"
            )
        self._run = _TraceRun(self.compiled, self._next_trace_index, name)

    def feed(self, event: EventLabel) -> None:
        """Consume one event of the current trace."""
        if self._run is None:
            self.begin_trace()
        self.events_seen += 1
        self._run.feed(self.compiled, event)

    def feed_many(self, events: Iterable[EventLabel]) -> None:
        """Consume several events of the current trace."""
        for event in events:
            self.feed(event)

    def end_trace(self) -> MonitoringReport:
        """Close the current trace and return *its* monitoring report.

        The per-trace report is also folded into the cumulative
        :meth:`report`.  Premise matches still pending mid-consequent are
        violations — exactly the offline semantics on the finished trace.
        """
        if self._run is None:
            raise MonitoringError("no trace is open; feed events or begin_trace() first")
        trace_analytics: Dict[str, Tuple[int, int, int, int, Optional[float]]] = {}
        report = self._run.close(self.compiled, trace_analytics)
        self._run = None
        self._next_trace_index += 1
        self.traces_seen += 1
        self._combined.merge(report)
        closed_at = time.perf_counter()
        for key, (opened, satisfied, violated, armed, first_open) in trace_analytics.items():
            slot = self.analytics.get(key)
            if slot is None:
                self.analytics[key] = [opened, satisfied, violated, armed]
            else:
                slot[0] += opened
                slot[1] += satisfied
                slot[2] += violated
                slot[3] += armed
            obs_metrics.record_rule_close(
                key,
                opened,
                satisfied,
                violated,
                armed,
                closed_at - first_open if first_open is not None else None,
            )
        return report

    def check_trace(
        self, trace: TypingSequence[EventLabel], name: Optional[str] = None
    ) -> MonitoringReport:
        """Feed one whole trace and return its report (streaming in one call)."""
        self.begin_trace(name=name)
        self.feed_many(trace)
        return self.end_trace()

    # ------------------------------------------------------------------ #
    # Reports
    # ------------------------------------------------------------------ #
    def report(self) -> MonitoringReport:
        """The cumulative report over every trace ended so far (a copy)."""
        return MonitoringReport().merge(self._combined)

    def rule_analytics(self) -> Dict[str, Dict[str, int]]:
        """Per-rule serving analytics over every closed trace (a copy).

        ``signature -> {"opened", "satisfied", "violated", "trie_advances"}``
        — the counters the rule-ranking loop consumes.  Values are plain
        sums over closed traces, so merging two monitors' analytics is
        key-wise addition in any order.
        """
        return {
            key: {
                "opened": values[0],
                "satisfied": values[1],
                "violated": values[2],
                "trie_advances": values[3],
            }
            for key, values in self.analytics.items()
        }

    def check_database(self, database: SequenceDatabase) -> MonitoringReport:
        """Monitor every trace of a database; returns their combined report.

        Equivalent to :meth:`RuleMonitor.check_database
        <repro.verification.monitor.RuleMonitor.check_database>` — the
        parity suite asserts the reports are identical — but single-pass.
        """
        combined = MonitoringReport()
        for index in range(len(database)):
            combined.merge(self.check_trace(database[index], name=database.name(index)))
        return combined


def monitor_stream(
    database: SequenceDatabase, rules: RuleSource
) -> MonitoringReport:
    """Convenience wrapper: compile ``rules`` and stream a database through."""
    return StreamingMonitor(rules).check_database(database)
