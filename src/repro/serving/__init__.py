"""Online specification serving: compiled automata, monitors, network plane.

The offline layers mine specifications from a finished corpus; this package
serves them against *live* traffic:

* :mod:`repro.serving.compile` — compile a rule set (or a specification
  repository) into a :class:`CompiledRuleSet`: a shared premise trie plus
  per-rule consequent trackers whose per-trace state advances one event at
  a time in amortized O(active states);
* :mod:`repro.serving.stream_monitor` — :class:`StreamingMonitor`, the
  incremental checker (``feed`` / ``end_trace`` / ``report``) emitting
  exactly the violations the offline
  :class:`~repro.verification.monitor.RuleMonitor` would;
* :mod:`repro.serving.pool` — :class:`MonitorPool`, the multi-tenant layer:
  worker shards with bounded queues and ``BUSY`` backpressure,
  consistent-hash session→shard affinity, generation-numbered hot swap of
  the shared compiled rule set, and deterministic report aggregation;
* :mod:`repro.serving.server` — :class:`EventPushServer` /
  :class:`PushClient`, the TCP front end speaking a length-prefixed JSON
  frame protocol (``EVENT``/``BATCH``/``END``/``STATS``/``REPORT``/``SWAP``),
  multiplexing logical sessions over connections (the ``repro serve``
  command);
* :mod:`repro.serving.daemon` — :class:`WatchDaemon`, the poll-based
  mine→serve→monitor loop: tail a directory into a
  :class:`~repro.ingest.store.TraceStore`, refresh an
  :class:`~repro.ingest.incremental.IncrementalMiner` on appends, hot-swap
  the compiled rule set, and monitor the new traces against it — with an
  optional push mode that hosts the socket front end and hot-swaps the
  pool alongside the daemon's own automaton.

``docs/serving.md`` documents the wire protocol and operations;
``docs/architecture.md`` places the serving plane in the end-to-end
dataflow.
"""

from .compile import CompiledRuleSet, compile_rules
from .daemon import WatchCycle, WatchDaemon
from .pool import ACCEPTED, BUSY, SESSION_LOST, MonitorPool, SessionTicket
from .server import EventPushServer, ProtocolError, PushClient, encode_frame, read_frame
from .stream_monitor import StreamingMonitor, monitor_stream

__all__ = [
    "ACCEPTED",
    "BUSY",
    "SESSION_LOST",
    "CompiledRuleSet",
    "compile_rules",
    "EventPushServer",
    "MonitorPool",
    "ProtocolError",
    "PushClient",
    "SessionTicket",
    "StreamingMonitor",
    "monitor_stream",
    "WatchCycle",
    "WatchDaemon",
    "encode_frame",
    "read_frame",
]
