"""Online specification serving: compiled automata, streaming monitor, daemon.

The offline layers mine specifications from a finished corpus; this package
serves them against *live* traffic:

* :mod:`repro.serving.compile` — compile a rule set (or a specification
  repository) into a :class:`CompiledRuleSet`: a shared premise trie plus
  per-rule consequent trackers whose per-trace state advances one event at
  a time in amortized O(active states);
* :mod:`repro.serving.stream_monitor` — :class:`StreamingMonitor`, the
  incremental checker (``feed`` / ``end_trace`` / ``report``) emitting
  exactly the violations the offline
  :class:`~repro.verification.monitor.RuleMonitor` would;
* :mod:`repro.serving.daemon` — :class:`WatchDaemon`, the poll-based
  mine→serve→monitor loop: tail a directory into a
  :class:`~repro.ingest.store.TraceStore`, refresh an
  :class:`~repro.ingest.incremental.IncrementalMiner` on appends, hot-swap
  the compiled rule set, and monitor the new traces against it.
"""

from .compile import CompiledRuleSet, compile_rules
from .daemon import WatchCycle, WatchDaemon
from .stream_monitor import StreamingMonitor, monitor_stream

__all__ = [
    "CompiledRuleSet",
    "compile_rules",
    "StreamingMonitor",
    "monitor_stream",
    "WatchCycle",
    "WatchDaemon",
]
