"""Compiling mined rules into a shared serving automaton.

The offline :class:`~repro.verification.monitor.RuleMonitor` re-derives the
temporal points of every rule from scratch for every trace: checking ``R``
rules over a length-``n`` trace costs ``O(R * n)`` full scans plus one
``O(n)`` suffix re-scan per temporal point.  That is fine for a batch audit
and hopeless for serving a stream.  This module compiles a rule set *once*
into a :class:`CompiledRuleSet` whose per-trace state advances one event at
a time, so the streaming monitor pays amortized ``O(active states)`` per
event — independent of how long the trace has already run.

Three compiled structures, mirroring the two halves of the temporal-points
semantics (Definition 5.1):

* **a shared premise trie** over the encoded premise *prefixes*
  (``premise[:-1]``) of every rule, sharing common prefixes across rules
  the way an Aho–Corasick keyword trie shares them.  Because temporal
  points use the greedy (earliest) *subsequence* embedding rather than a
  contiguous substring match, the classic failure links degenerate — a
  mismatching event simply leaves every state where it is, so the failure
  function is the identity.  What replaces the failure links is the
  *watch index* the per-trace state keeps (symbol → trie nodes waiting on
  that symbol): a reached node registers its children once, each node is
  activated at most once per trace, and every event's work is exactly the
  states it actually advances.  A rule whose premise prefix completes at
  its trie node is *armed* from that position on;
* **per-rule point openers**: an armed rule opens one temporal point at
  every later occurrence of its premise's last event (``last(P)`` strictly
  after the prefix embedding end — the characterisation the offline
  monitor uses);
* **per-rule consequent trackers**: templates for the greedy subsequence
  match of the consequent over the suffix after each temporal point,
  compiled as symbol → descending matched-stage moves so one event advances
  every pending point of a rule in one list splice.

The compiled artifact is immutable and shared: any number of concurrent
:class:`~repro.serving.stream_monitor.StreamingMonitor` sessions can serve
from one :class:`CompiledRuleSet`.  A rule-set change never mutates a
compiled set — it compiles a new one and swaps the reference.  The watch
daemon swaps its serving automaton this way on every re-mine, and the
:class:`~repro.serving.pool.MonitorPool` numbers the swaps with a
*generation* counter: each session is pinned to the compiled set current
at its admission, so in-flight sessions finish on their generation while
new sessions pick up the swap (``docs/serving.md`` documents the
contract).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.events import EventLabel
from ..rules.rule import RecurrentRule

#: A compiled symbol id (dense, local to one compiled rule set).
Symbol = int
#: A premise-trie node id (0 is the root).
NodeId = int

#: Anything :func:`compile_rules` accepts: an iterable of rules or a
#: repository-like object exposing a ``rules`` attribute.
RuleSource = Union[Iterable[RecurrentRule], "SpecificationRepositoryLike"]


class SpecificationRepositoryLike:  # pragma: no cover - typing helper only
    """Duck type for :class:`~repro.specs.repository.SpecificationRepository`."""

    rules: List[RecurrentRule]


class CompiledRuleSet:
    """An immutable rule set compiled for one-event-at-a-time serving.

    Build one with :func:`compile_rules`; drive it with
    :class:`~repro.serving.stream_monitor.StreamingMonitor`.  The instance
    only holds static tables — all mutable matching state lives in the
    monitor's per-trace runs, so a single compiled set is safely shared
    across concurrent monitoring sessions and hot-swapped under them.
    """

    __slots__ = (
        "rules",
        "symbol_of",
        "children",
        "arm_at_node",
        "root_armed",
        "last_symbol",
        "consequents",
        "consequent_moves",
    )

    def __init__(
        self,
        rules: Tuple[RecurrentRule, ...],
        symbol_of: Dict[EventLabel, Symbol],
        children: Tuple[Dict[Symbol, NodeId], ...],
        arm_at_node: Tuple[Tuple[int, ...], ...],
        last_symbol: Tuple[Symbol, ...],
        consequents: Tuple[Tuple[Symbol, ...], ...],
        consequent_moves: Tuple[Dict[Symbol, Tuple[int, ...]], ...],
    ) -> None:
        #: The monitored rules, in monitor order (violation reports follow it).
        self.rules = rules
        #: Event label -> dense symbol id; labels outside every rule are absent
        #: and skipped by the monitor in O(1).
        self.symbol_of = symbol_of
        #: Premise-prefix trie: node id -> {symbol: child node id}; node 0 is
        #: the root (the empty prefix).
        self.children = children
        #: Node id -> rule ids whose premise prefix ends exactly there (they
        #: arm the moment the node is reached).
        self.arm_at_node = arm_at_node
        #: Rule ids armed from the start of every trace (premise length 1).
        self.root_armed = arm_at_node[0]
        #: Rule id -> symbol of ``last(premise)`` (the point-opening event).
        self.last_symbol = last_symbol
        #: Rule id -> encoded consequent.
        self.consequents = consequents
        #: Rule id -> {symbol: descending matched-stage indices it advances}.
        self.consequent_moves = consequent_moves

    def __len__(self) -> int:
        return len(self.rules)

    def describe(self) -> Dict[str, int]:
        """Compile statistics: how much structure the rules actually share."""
        prefix_events = sum(len(rule.premise) - 1 for rule in self.rules)
        return {
            "rules": len(self.rules),
            "symbols": len(self.symbol_of),
            "trie_nodes": len(self.children),
            # Prefix positions deduplicated away by sharing: a trie with no
            # sharing would hold one node per prefix event plus the root.
            "shared_prefix_events": prefix_events - (len(self.children) - 1),
            "consequent_stages": sum(len(consequent) for consequent in self.consequents),
        }


def _rules_of(source: RuleSource) -> Tuple[RecurrentRule, ...]:
    rules = getattr(source, "rules", source)
    return tuple(rules)


def compile_rules(source: RuleSource) -> CompiledRuleSet:
    """Compile rules (or a specification repository) into a serving automaton.

    Rules sharing premise prefixes share trie nodes; identical rules are
    kept distinct (the monitor reports each, exactly like the offline
    :class:`~repro.verification.monitor.RuleMonitor` does).  An empty rule
    set compiles to a valid automaton that matches nothing.
    """
    rules = _rules_of(source)
    symbol_of: Dict[EventLabel, Symbol] = {}

    def intern(label: EventLabel) -> Symbol:
        symbol = symbol_of.get(label)
        if symbol is None:
            symbol = len(symbol_of)
            symbol_of[label] = symbol
        return symbol

    children: List[Dict[Symbol, NodeId]] = [{}]
    arm_lists: List[List[int]] = [[]]
    last_symbol: List[Symbol] = []
    consequents: List[Tuple[Symbol, ...]] = []
    consequent_moves: List[Dict[Symbol, Tuple[int, ...]]] = []

    for rule_id, rule in enumerate(rules):
        node: NodeId = 0
        for label in rule.premise[:-1]:
            symbol = intern(label)
            successor: Optional[NodeId] = children[node].get(symbol)
            if successor is None:
                successor = len(children)
                children[node][symbol] = successor
                children.append({})
                arm_lists.append([])
            node = successor
        arm_lists[node].append(rule_id)
        last_symbol.append(intern(rule.premise[-1]))
        consequent = tuple(intern(label) for label in rule.consequent)
        consequents.append(consequent)
        stages_by_symbol: Dict[Symbol, List[int]] = {}
        for stage, symbol in enumerate(consequent):
            stages_by_symbol.setdefault(symbol, []).append(stage)
        # Descending stage order: one event advances each pending point by
        # at most one consequent position, even when the consequent repeats
        # the event (the later stage is spliced before the earlier one).
        consequent_moves.append(
            {
                symbol: tuple(reversed(stages))
                for symbol, stages in stages_by_symbol.items()
            }
        )

    return CompiledRuleSet(
        rules=rules,
        symbol_of=symbol_of,
        children=tuple(children),
        arm_at_node=tuple(tuple(arm) for arm in arm_lists),
        last_symbol=tuple(last_symbol),
        consequents=tuple(consequents),
        consequent_moves=tuple(consequent_moves),
    )
