"""Watch-mode serving daemon: tail a directory, re-mine, hot-swap, monitor.

:class:`WatchDaemon` closes the mine→serve→monitor loop in one poll-based
process with no dependencies beyond the standard library:

1. **tail** — each cycle scans a watched directory for trace files it has
   not ingested yet (any registered format, ``.gz`` included) and appends
   each new file to a :class:`~repro.ingest.store.TraceStore` as one
   atomic batch (a file that fails to parse commits nothing and is retried
   when its size or mtime changes);
2. **re-mine** — appended batches trigger an
   :class:`~repro.ingest.incremental.IncrementalMiner` refresh, which
   re-mines only the first-level roots the new traces touched;
3. **hot-swap** — when the refreshed rule set differs from the one being
   served, it is compiled into a fresh
   :class:`~repro.serving.compile.CompiledRuleSet` and swapped in with a
   single attribute assignment (in-flight monitoring sessions keep the
   automaton they started with; new sessions see the new generation), and
   the optional specification repository JSON is rewritten with the
   store-fingerprint provenance of the new generation;
4. **monitor** — the traces ingested this cycle are streamed through a
   :class:`~repro.serving.stream_monitor.StreamingMonitor` over the
   current automaton, with corpus-wide trace indexes, and the violations
   are reported through the cycle callback and the daemon's cumulative
   report.

``run_once`` executes one cycle (what the tests drive); ``run_forever``
polls with a sleep between cycles until ``max_cycles`` or Ctrl-C.  Every
poll cycle counts toward ``max_cycles``, including cycles that find no new
files — the limit bounds *wall-clock polling*, not ingest work (pinned by
``tests/serving/test_daemon.py``).

**Push mode**: with ``push_port`` set, the daemon additionally hosts the
serving plane's socket front end (:class:`~repro.serving.server
.EventPushServer` over a :class:`~repro.serving.pool.MonitorPool`): live
sessions push events over TCP while the daemon keeps mining the watched
directory, and every hot swap of the daemon's automaton also installs a
new compile generation in the pool — in-flight push sessions finish on the
generation they started with, new ones serve the fresh rules.  The pool's
violation reports are a separate surface from the daemon's own file-based
:attr:`monitoring` (push sessions are numbered in admission order, file
traces corpus-wide).
"""

from __future__ import annotations

import gzip
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.errors import DataFormatError
from ..durability.journal import atomic_write_text
from ..engine import ExecutionBackend
from ..ingest.formats import format_for_path
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..obs.httpexpo import MetricsHTTPServer
from ..ingest.incremental import IncrementalMiner, RefreshReport
from ..ingest.store import BatchInfo, TraceStore
from ..rules.rule import RecurrentRule
from ..specs.repository import SpecificationRepository
from ..verification.violations import MonitoringReport
from .compile import CompiledRuleSet, compile_rules
from .pool import DEFAULT_QUEUE_DEPTH, MonitorPool
from .server import EventPushServer
from .stream_monitor import StreamingMonitor

PathLike = Union[str, Path]

#: File-identity key used to retry failed files only when they change.
_StatKey = Tuple[int, int]

#: Everything an ingest attempt can raise that *may* mean "this file, not
#: the daemon, is broken": parse errors, undecodable bytes, truncated gzip
#: members (EOFError, gzip.BadGzipFile), and filesystem races.  A
#: long-running daemon records these per file and moves on — except
#: OSErrors that are not clearly about the watched file (see
#: :meth:`WatchDaemon._is_input_failure`): a full disk or an unwritable
#: store must surface, not masquerade as a bad input file.
_INGEST_ERRORS = (DataFormatError, OSError, UnicodeError, EOFError)


@dataclass
class WatchCycle:
    """What one daemon cycle actually did."""

    index: int
    ingested: List[Tuple[Path, BatchInfo]] = field(default_factory=list)
    failed: List[Tuple[Path, str]] = field(default_factory=list)
    traces_added: int = 0
    refresh: Optional[RefreshReport] = None
    rules_served: int = 0
    swapped: bool = False
    monitoring: Optional[MonitoringReport] = None
    elapsed_seconds: float = 0.0

    @property
    def violation_count(self) -> int:
        """Violations found among this cycle's newly ingested traces."""
        return self.monitoring.violation_count if self.monitoring else 0


class WatchDaemon:
    """The mine→serve→monitor loop over a watched trace directory.

    Parameters
    ----------
    directory:
        The directory to tail.  Only files whose suffix resolves to a
        registered trace format are considered (unless ``format`` pins
        one); other files are ignored.
    store:
        The backing :class:`TraceStore` (or a path; created if missing).
        May already hold traces — the first cycle mines and serves them
        before looking at any new file.
    rule_miner:
        A recurrent-rule miner implementing the incremental protocol
        (either of :class:`~repro.rules.full_miner.FullRecurrentRuleMiner`
        / :class:`~repro.rules.nonredundant_miner.NonRedundantRecurrentRuleMiner`).
    backend:
        Optional execution backend for the re-mines.
    format:
        Pin every watched file to one format instead of per-file suffix
        detection.
    repository_path:
        When given, a :class:`SpecificationRepository` JSON is rewritten
        there on every hot swap, carrying the store fingerprint as
        provenance.
    persist_cache:
        Persist the incremental miner's record cache into the store
        directory so a daemon restart resumes instead of re-mining.
    on_cycle:
        Callback invoked with each finished :class:`WatchCycle`.
    push_port:
        When given, host the event-push socket front end on this port
        (``0`` = ephemeral; the bound address is :attr:`push_address`).
        The pool serves the daemon's current automaton and is hot-swapped
        with it.
    push_host / push_shards / push_queue_depth:
        Bind host and pool sizing for push mode.
    http_port:
        When given, host the HTTP exposition sidecar
        (:class:`~repro.obs.httpexpo.MetricsHTTPServer`) on this port
        (``0`` = ephemeral; the bound address is :attr:`http_address`):
        ``/metrics``, ``/healthz`` (fed by this daemon's backoff state and
        the pool's shard liveness) and ``/statusz``.
    http_host:
        Bind host for the HTTP sidecar (default loopback).
    """

    def __init__(
        self,
        directory: PathLike,
        store: Union[TraceStore, PathLike],
        rule_miner,
        *,
        backend: Optional[ExecutionBackend] = None,
        format: Optional[str] = None,
        repository_path: Optional[PathLike] = None,
        persist_cache: bool = False,
        on_cycle: Optional[Callable[[WatchCycle], None]] = None,
        push_port: Optional[int] = None,
        push_host: str = "127.0.0.1",
        push_shards: int = 4,
        push_queue_depth: int = DEFAULT_QUEUE_DEPTH,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
    ) -> None:
        # Resolved so a restart with a different spelling of the same
        # directory (relative vs absolute, trailing ..) still recognises
        # the files it already ingested.
        self.directory = Path(directory).resolve()
        self.store = store if isinstance(store, TraceStore) else TraceStore(store)
        self.format = format
        self.backend = backend
        self.repository_path = Path(repository_path) if repository_path else None
        self.on_cycle = on_cycle
        self.incremental = IncrementalMiner(
            rule_miner, self.store, backend=backend, persist=persist_cache
        )
        #: The automaton currently being served (hot-swapped in place).
        self.compiled: CompiledRuleSet = compile_rules(())
        self.repository = SpecificationRepository(name="watch")
        #: Cumulative monitoring report over every trace seen by the daemon.
        self.monitoring = MonitoringReport()
        self.cycles_run = 0
        self.swaps = 0
        # Cycle-failure bookkeeping (run_forever's backoff; see
        # docs/robustness.md): run_once still *raises* so embedders keep
        # exact errors, but the loop degrades to exponential backoff and
        # reports the failure in watch_state.json instead of dying.
        self.cycle_failures = 0
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None
        self.current_backoff = 0.0
        self._served_rules: Optional[Tuple[RecurrentRule, ...]] = None
        self._ingested: set = set()
        self._failed: Dict[Path, _StatKey] = {}
        # Which files were already appended survives restarts next to the
        # store (otherwise a restarted daemon would re-append everything
        # still sitting in the watched directory, duplicating the corpus).
        self._state_path = self.store.directory / "watch_state.json"
        self._load_watch_state()
        #: Push mode: the pool + socket front end, live for the daemon's
        #: whole life and hot-swapped together with :attr:`compiled`.
        self.pool: Optional[MonitorPool] = None
        self.push_server: Optional[EventPushServer] = None
        if push_port is not None:
            self.pool = MonitorPool(
                self.compiled, shards=push_shards, queue_depth=push_queue_depth
            )
            self.push_server = EventPushServer(self.pool, host=push_host, port=push_port)
            self.push_server.start()
        #: HTTP exposition sidecar (``/metrics``, ``/healthz``, ``/statusz``).
        self.http_server: Optional[MetricsHTTPServer] = None
        if http_port is not None:
            self.http_server = MetricsHTTPServer(
                host=http_host, port=http_port, pool=self.pool, daemon=self
            )
            self.http_server.start()

    @property
    def push_address(self) -> Optional[Tuple[str, int]]:
        """The push front end's bound ``(host, port)``; ``None`` without push mode."""
        return self.push_server.address if self.push_server is not None else None

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """The HTTP sidecar's bound ``(host, port)``; ``None`` when not hosted."""
        return self.http_server.address if self.http_server is not None else None

    def close(self) -> None:
        """Stop the sidecars (HTTP, server, then pool).  Safe to call repeatedly."""
        if self.http_server is not None:
            self.http_server.close()
            self.http_server = None
        if self.push_server is not None:
            self.push_server.close()
            self.push_server = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    # ------------------------------------------------------------------ #
    # Watch-state persistence
    # ------------------------------------------------------------------ #
    def _load_watch_state(self) -> None:
        """Adopt the ingested-file map a previous daemon left in the store.

        The state names a store fingerprint; it is only adopted when that
        fingerprint is part of this store's batch chain, so state written
        against a store that was since wiped or replaced is discarded (the
        files would genuinely need re-ingesting into the fresh store).
        """
        if not self._state_path.is_file():
            return
        try:
            payload = json.loads(self._state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict) or payload.get("version") != 1:
            return
        fingerprint = payload.get("fingerprint", "")
        chain = [batch.fingerprint for batch in self.store.batches]
        if fingerprint and fingerprint not in chain:
            return
        for raw_path in payload.get("ingested", []):
            self._ingested.add(Path(raw_path).resolve())

    def _save_watch_state(self) -> None:
        payload = {
            "version": 1,
            "fingerprint": self.store.fingerprint,
            # A plain path list: an ingested file is final (its traces are
            # in the store); later edits to it are deliberately ignored,
            # so no per-file stat is kept.
            "ingested": sorted(str(path) for path in self._ingested),
        }
        if self.last_error is not None:
            # Failure telemetry for operators tailing the state file: what
            # broke the last cycle(s) and how far the backoff has climbed.
            # Extra keys on version 1 — old readers ignore them.
            payload["error"] = {
                "message": self.last_error,
                "consecutive_failures": self.consecutive_failures,
                "total_failures": self.cycle_failures,
                "next_backoff_seconds": self.current_backoff,
            }
        # Durable (fsynced) atomic replace: the state file is the record
        # of which files are already in the store — losing it to a power
        # failure would re-ingest everything on the next boot.
        atomic_write_text(self._state_path, json.dumps(payload, indent=2) + "\n")

    # ------------------------------------------------------------------ #
    # Directory tailing
    # ------------------------------------------------------------------ #
    def _is_trace_file(self, path: Path) -> bool:
        if not path.is_file():
            return False
        try:
            format_for_path(path, self.format)
        except DataFormatError:
            return False
        return True

    @staticmethod
    def _stat_key(path: Path) -> Optional[_StatKey]:
        """Size + mtime identity, or ``None`` when the file vanished."""
        try:
            stat = path.stat()
        except OSError:
            return None
        return (stat.st_size, stat.st_mtime_ns)

    def _discover(self) -> List[Path]:
        """Trace files to attempt this cycle, in deterministic name order.

        A path is pending when it was never ingested, or when it failed
        before but its size/mtime changed since (a half-written file that
        has since been completed, or a fixed syntax error).  Files vanishing
        mid-scan are simply not pending — the directory is someone else's
        and races with its writers must never kill the daemon.
        """
        pending: List[Path] = []
        for path in sorted(self.directory.iterdir()):
            if not self._is_trace_file(path) or path in self._ingested:
                continue
            key = self._stat_key(path)
            if key is None or self._failed.get(path) == key:
                continue
            pending.append(path)
        return pending

    # ------------------------------------------------------------------ #
    # One cycle
    # ------------------------------------------------------------------ #
    def run_once(self) -> WatchCycle:
        """Tail → ingest → incremental re-mine → hot-swap → monitor, once."""
        with tracing.span("daemon.cycle", index=self.cycles_run):
            return self._run_once()

    def _run_once(self) -> WatchCycle:
        started = time.perf_counter()
        cycle = WatchCycle(index=self.cycles_run)

        for path in self._discover():
            key = self._stat_key(path)
            try:
                info = self.store.append_trace_file(path, format=self.format)
            except _INGEST_ERRORS as error:
                if not self._is_input_failure(error, path):
                    raise
                if key is not None:
                    self._failed[path] = key
                cycle.failed.append((path, f"{type(error).__name__}: {error}"))
                continue
            self._ingested.add(path)
            self._failed.pop(path, None)
            # State is saved per committed append, not per cycle: a crash
            # between the store commit and the state save may otherwise
            # re-append this file (= duplicate traces) on restart.
            self._save_watch_state()
            cycle.ingested.append((path, info))
            cycle.traces_added += info.traces

        # Re-mine only when something changed — plus once at startup, so a
        # pre-populated store serves immediately.
        if cycle.ingested or self._served_rules is None:
            with tracing.span("daemon.refresh", traces=cycle.traces_added):
                result, cycle.refresh = self.incremental.refresh(backend=self.backend)
            cycle.swapped = self._swap(tuple(result.rules))

        if cycle.ingested:
            with tracing.span("daemon.monitor", files=len(cycle.ingested)):
                cycle.monitoring = self._monitor_new_traces(cycle.ingested)
            self.monitoring.merge(cycle.monitoring)

        cycle.rules_served = len(self.compiled)
        cycle.elapsed_seconds = time.perf_counter() - started
        self.cycles_run += 1
        obs_metrics.DAEMON_CYCLE_SECONDS.observe(cycle.elapsed_seconds)
        obs_metrics.DAEMON_CYCLES_TOTAL.inc(
            status="ingest" if cycle.ingested else "idle"
        )
        if self.on_cycle is not None:
            self.on_cycle(cycle)
        return cycle

    @staticmethod
    def _is_input_failure(error: BaseException, path: Path) -> bool:
        """Whether an ingest error is the watched file's fault.

        Parse errors, decode errors and torn gzip data always are.  A bare
        :class:`OSError` is ambiguous: reading the watched file raises one
        carrying that file's name, while the store's own writes raise ones
        naming the store files (or nothing, e.g. ``ENOSPC`` mid-write) —
        those must propagate instead of being pinned on the input forever.
        """
        if not isinstance(error, OSError) or isinstance(error, gzip.BadGzipFile):
            return True
        filename = getattr(error, "filename", None)
        return filename is not None and Path(filename) == path

    def _swap(self, rules: Tuple[RecurrentRule, ...]) -> bool:
        """Hot-swap the served automaton when the mined rules changed.

        Rule equality includes the statistics, so a support or confidence
        move alone is a new generation (downstream ranking and provenance
        depend on the numbers, not just the shapes).
        """
        if self._served_rules == rules:
            return False
        if self._served_rules is None and not rules:
            # First generation over an empty (or rule-free) corpus: the
            # vacuous automaton is already serving; nothing swapped.
            self._served_rules = rules
            return False
        self.compiled = compile_rules(rules)
        self._served_rules = rules
        self.swaps += 1
        obs_metrics.DAEMON_SWAPS_TOTAL.inc()
        if self.pool is not None:
            # Push sessions already open finish on their admission
            # generation; new sessions pick up this compile.
            self.pool.swap(self.compiled)
        self.repository.replace_rules(
            rules,
            source=SpecificationRepository.provenance_from(self.store.describe()),
        )
        if self.repository_path is not None:
            self.repository.save(self.repository_path)
        return True

    def _monitor_new_traces(
        self, ingested: List[Tuple[Path, BatchInfo]]
    ) -> MonitoringReport:
        """Stream this cycle's new traces through the current automaton.

        Trace indexes are corpus-wide (the position of each trace in the
        store), so a violation report names the same trace a later offline
        audit of the store would.
        """
        combined = MonitoringReport()
        vocabulary = self.store.vocabulary
        for _, info in ingested:
            first_index = sum(batch.traces for batch in self.store.batches[: info.index])
            monitor = StreamingMonitor(self.compiled, first_trace_index=first_index)
            for trace in self.store.iter_traces(
                start_batch=info.index, stop_batch=info.index + 1
            ):
                monitor.check_trace(vocabulary.decode(trace.events), name=trace.name)
            combined.merge(monitor.report())
        return combined

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def run_forever(
        self,
        poll_interval: float = 2.0,
        max_cycles: Optional[int] = None,
        max_backoff: float = 60.0,
    ) -> int:
        """Poll until ``max_cycles`` (``None`` = forever) or KeyboardInterrupt.

        A cycle that raises does not kill the loop: the failure is counted,
        written into ``watch_state.json`` (an ``error`` block with the
        message and the backoff state) and the next cycle is delayed by an
        exponential backoff — ``poll_interval * 2**consecutive_failures``,
        capped at ``max_backoff`` — so a persistently broken store or
        input cannot spin the daemon hot.  The first successful cycle
        clears the error block and returns to the normal poll interval.
        Failed cycles count toward ``max_cycles`` so a bounded run always
        terminates.

        Returns the number of cycles that ran successfully.
        """
        try:
            while max_cycles is None or self.cycles_run + self.cycle_failures < max_cycles:
                try:
                    self.run_once()
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    self.cycle_failures += 1
                    self.consecutive_failures += 1
                    obs_metrics.DAEMON_CYCLES_TOTAL.inc(status="failed")
                    self.last_error = f"{type(error).__name__}: {error}"
                    delay = min(
                        poll_interval * (2.0 ** self.consecutive_failures), max_backoff
                    )
                    self.current_backoff = delay
                    self._report_cycle_failure()
                else:
                    delay = poll_interval
                    if self.consecutive_failures:
                        # Recovered: clear the error block for operators.
                        self.consecutive_failures = 0
                        self.last_error = None
                        self.current_backoff = 0.0
                        self._report_cycle_failure()
                if max_cycles is not None and self.cycles_run + self.cycle_failures >= max_cycles:
                    break
                time.sleep(delay)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return self.cycles_run

    def _report_cycle_failure(self) -> None:
        """Persist the error block; best-effort (the disk may be the problem)."""
        try:
            self._save_watch_state()
        except OSError:
            pass
