"""The event-push socket front end over a :class:`MonitorPool`.

The watch daemon *polls files*; production traffic is *pushed*.  This module
is the network edge of the serving plane: a TCP server speaking a
length-prefixed JSON frame protocol, multiplexing any number of **logical
sessions** over any number of connections.  A session is identified by its
``session`` id, **not** by the connection carrying it — one connection may
drive thousands of interleaved sessions, a session may migrate between
connections, and several producer processes may push into one pool.

Wire format (documented in full in ``docs/serving.md``)::

    frame   := length payload
    length  := 4-byte big-endian unsigned payload byte count
    payload := one UTF-8 JSON object with an "op" field

Requests are answered with exactly one reply frame each, in request order,
so clients may pipeline freely.  The verbs:

========  ============================================================
``EVENT``     push one event of a session (reply ``OK`` / ``BUSY``)
``BATCH``     push several events of one session atomically
``END``       close a session; the reply carries its final report
``STATS``     pool/server counters (shards, queues, generations)
``METRICS``   the full metrics registry, Prometheus text format
``ANALYTICS`` per-rule serving counters merged across the pool's shards
``REPORT``    the aggregate over all closed sessions
``SWAP``      hot-swap the served rule set to a new compile generation
``PING``      liveness probe (reply ``PONG``)
``SHUTDOWN``  stop the server after acknowledging
========  ============================================================

``BUSY`` is the backpressure half of the protocol: it means the session's
shard queue was full and *nothing* was queued — the client must resend the
same frame (typically after a short backoff).  Because a batch is accepted
or rejected atomically, retrying can never duplicate or reorder a prefix.

``SESSION_LOST`` is the failure half (see ``docs/robustness.md``): a
session whose pool shard crashed answers it exactly once on the next
``EVENT``/``BATCH``/``END`` under its id — the monitoring state is gone,
the id is free to re-admit.  ``EVENT``/``BATCH`` may carry an optional
integer ``seq`` (per-session, monotonic): a re-sent batch whose ``seq``
was already accepted is acknowledged ``OK`` without being fed again, which
makes retry-after-reconnect idempotent even when the original reply was
lost with the connection.

:class:`PushClient` is the matching client: a thin framing wrapper plus
convenience verbs, a pipelined bulk mode, socket timeouts surfacing as
:class:`~repro.core.errors.ServingTimeout`, and (opt-in via ``retries``)
exponential-backoff reconnect with idempotent re-send of unanswered
frames.  Used by the bench driver, the protocol tests and
``examples/push_client.py``.

When tracing is armed (``repro.obs.tracing``), frames carry a trace
context: the client stamps its current ``trace``/``parent`` span ids into
each request payload, and the server opens a ``server.request`` child span
under the received ids — so one trace threads client → server → pool shard
(see ``docs/observability.md``).  Both sides degrade to plain frames when
tracing is disarmed; unknown extra fields are ignored by either end.
"""

from __future__ import annotations

import json
import random
import socket
import socketserver
import struct
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.errors import DataFormatError, MonitoringError, ServingTimeout, SessionLost
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..specs.repository import SpecificationRepository
from ..testing import faults
from ..testing.faults import FaultInjected
from .pool import ACCEPTED, SESSION_LOST, MonitorPool

#: Frames above this size are refused (and the connection closed): a bad
#: length prefix must never make the server buffer gigabytes.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

#: The verbs the protocol knows.  Request latency is labelled by verb;
#: anything else is bucketed under ``"other"`` so a misbehaving client
#: cannot inflate the metric label space.
_KNOWN_OPS = frozenset(
    {
        "EVENT",
        "BATCH",
        "END",
        "STATS",
        "METRICS",
        "ANALYTICS",
        "REPORT",
        "SWAP",
        "PING",
        "SHUTDOWN",
    }
)


class ProtocolError(Exception):
    """A malformed frame — the connection cannot be trusted past it."""


# --------------------------------------------------------------------- #
# Framing (shared by server, client and the example script)
# --------------------------------------------------------------------- #
def encode_frame(payload: Dict[str, object]) -> bytes:
    """Encode one JSON object as a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def read_frame(
    stream, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Dict[str, object]]:
    """Read one frame from a binary file-like stream.

    Returns ``None`` on a clean end of stream (EOF exactly between frames);
    raises :class:`ProtocolError` on a truncated or oversized frame or a
    payload that is not a JSON object.
    """
    header = stream.read(_LENGTH.size)
    if not header:
        return None
    if len(header) != _LENGTH.size:
        raise ProtocolError("truncated frame header")
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds the {max_frame_bytes} byte limit")
    body = stream.read(length)
    if len(body) != length:
        raise ProtocolError("truncated frame payload")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def _string_field(payload: Dict[str, object], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise MonitoringError(f"{payload.get('op', '?')} needs a non-empty string {field!r}")
    return value


def _trace_field(payload: Dict[str, object]) -> Optional[Tuple[str, Optional[str]]]:
    """The frame's ``(trace_id, parent_span_id)``, or ``None`` when absent.

    Wire values are untrusted: anything that is not a non-empty string is
    treated as absent rather than rejected — trace context is best-effort
    telemetry, never a reason to refuse a request.  When the handler's own
    ``server.request`` span is open on this trace, it becomes the parent,
    so downstream pool spans nest client → server → shard rather than
    skipping the server tier.
    """
    trace = payload.get("trace")
    if not isinstance(trace, str) or not trace:
        return None
    if tracing.ACTIVE is not None:
        ids = tracing.current_ids()
        if ids is not None and ids[0] == trace:
            return trace, ids[1]
    parent = payload.get("parent")
    return trace, parent if isinstance(parent, str) and parent else None


def _seq_field(payload: Dict[str, object]) -> Optional[int]:
    value = payload.get("seq")
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise MonitoringError("'seq' must be an integer batch sequence number")
    return value


def _report_payload(report, limit: Optional[int]) -> Dict[str, object]:
    violations = report.violations if limit is None else report.violations[:limit]
    return {
        "points": report.total_points,
        "satisfied": report.satisfied_points,
        "violation_count": report.violation_count,
        "violations": [violation.as_dict() for violation in violations],
    }


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames, dispatch verbs, reply in order."""

    def handle(self) -> None:  # noqa: D102 - socketserver plumbing
        server: "_PushTCPServer" = self.server  # type: ignore[assignment]
        front = server.front
        frame_index = 0
        obs_metrics.SERVER_CONNECTIONS_TOTAL.inc()
        while True:
            try:
                payload = read_frame(self.rfile, front.max_frame_bytes)
            except ProtocolError as error:
                try:
                    self._reply({"op": "ERROR", "error": str(error)})
                except OSError:
                    pass  # half-closed peer; nothing left to tell it
                return  # framing is gone; drop the connection
            except OSError:
                return  # peer reset mid-frame; drop the connection
            if payload is None:
                return
            op = payload.get("op")
            op_label = op if op in _KNOWN_OPS else "other"
            started = time.perf_counter()
            try:
                if faults.ACTIVE is not None:
                    # Chaos hooks: drop the connection before (frame) or
                    # after (reply) the request takes effect.
                    faults.trigger("server.frame", key=str(frame_index))
                request_span = (
                    tracing.remote_span(
                        "server.request",
                        payload.get("trace"),
                        payload.get("parent"),
                        op=op_label,
                    )
                    if tracing.ACTIVE is not None and "trace" in payload
                    else tracing._NOOP
                )
                try:
                    with request_span:
                        reply, stop = front._dispatch(payload)
                except (
                    MonitoringError,
                    DataFormatError,
                    KeyError,
                    TypeError,
                    ValueError,
                ) as error:
                    reply, stop = {"op": "ERROR", "error": str(error)}, False
                if faults.ACTIVE is not None:
                    faults.trigger("server.reply", key=str(frame_index))
            except FaultInjected:
                return  # injected connection drop
            frame_index += 1
            obs_metrics.SERVER_REQUEST_SECONDS.observe(
                time.perf_counter() - started, op=op_label
            )
            obs_metrics.SERVER_REQUESTS_TOTAL.inc(op=op_label)
            reply_op = reply.get("op")
            if reply_op == "BUSY":
                obs_metrics.SERVER_BUSY_REPLIES_TOTAL.inc()
            elif reply_op == "SESSION_LOST":
                obs_metrics.SERVER_SESSION_LOST_REPLIES_TOTAL.inc()
            elif reply_op == "ERROR":
                obs_metrics.SERVER_ERRORS_TOTAL.inc()
            try:
                self._reply(reply)
            except OSError:
                return
            if stop:
                # Acknowledge first, then stop accepting: SHUTDOWN's OK
                # must reach the client that asked for it.
                threading.Thread(target=server.shutdown, daemon=True).start()
                return

    def _reply(self, payload: Dict[str, object]) -> None:
        self.wfile.write(encode_frame(payload))
        self.wfile.flush()


class _PushTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, front: "EventPushServer") -> None:
        self.front = front
        super().__init__(address, _Handler)


class EventPushServer:
    """The TCP front end: bind, accept, route frames into a pool.

    Parameters
    ----------
    pool:
        The :class:`~repro.serving.pool.MonitorPool` every connection
        pushes into.  The server never monitors anything itself — it only
        frames, validates and routes.
    host / port:
        Bind address; port ``0`` binds an ephemeral port (the bound
        address is :attr:`address` either way).
    max_frame_bytes:
        Upper bound on one frame's payload.
    end_timeout:
        How long an ``END`` reply may wait for the session's shard to
        drain the session's queued events.

    Use :meth:`start` for a background server (tests, the watch daemon's
    push mode) or :meth:`serve_forever` to block (the ``repro serve``
    command).
    """

    def __init__(
        self,
        pool: MonitorPool,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        end_timeout: float = 60.0,
    ) -> None:
        self.pool = pool
        self.max_frame_bytes = max_frame_bytes
        self.end_timeout = end_timeout
        self._server = _PushTCPServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — with port 0, the port actually bound."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Serve on a daemon thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="event-push-server", daemon=True
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or SHUTDOWN)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting and unwind ``serve_forever`` (idempotent)."""
        self._server.shutdown()

    def close(self) -> None:
        """Shut down and release the listening socket (the pool stays up)."""
        self.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "EventPushServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Verb dispatch
    # ------------------------------------------------------------------ #
    @staticmethod
    def _feed_reply(status: str, session: str) -> Dict[str, object]:
        if status == ACCEPTED:
            return {"op": "OK"}
        if status == SESSION_LOST:
            return {"op": "SESSION_LOST", "session": session}
        return {"op": "BUSY"}

    def _dispatch(self, payload: Dict[str, object]) -> Tuple[Dict[str, object], bool]:
        """Handle one request; returns ``(reply, stop_serving)``."""
        op = payload.get("op")
        if op == "EVENT":
            session = _string_field(payload, "session")
            event = _string_field(payload, "event")
            status = self.pool.feed(
                session, event, seq=_seq_field(payload), trace=_trace_field(payload)
            )
            return self._feed_reply(status, session), False
        if op == "BATCH":
            session = _string_field(payload, "session")
            events = payload.get("events")
            if not isinstance(events, list) or not all(
                isinstance(event, str) for event in events
            ):
                raise MonitoringError("BATCH needs an 'events' list of strings")
            status = self.pool.feed_batch(
                session, events, seq=_seq_field(payload), trace=_trace_field(payload)
            )
            return self._feed_reply(status, session), False
        if op == "END":
            session = _string_field(payload, "session")
            try:
                ticket = self.pool.end_session(session, trace=_trace_field(payload))
                if ticket is None:
                    return {"op": "BUSY"}, False
                report = ticket.wait(timeout=self.end_timeout)
            except SessionLost as error:
                return {"op": "SESSION_LOST", "session": session, "error": str(error)}, False
            limit = payload.get("limit")
            reply = {"op": "SESSION", "session": session}
            reply.update(_report_payload(report, limit if isinstance(limit, int) else None))
            return reply, False
        if op == "STATS":
            stats = dict(self.pool.stats())
            stats["op"] = "STATS"
            stats["uptime_seconds"] = round(time.monotonic() - self._started, 3)
            return stats, False
        if op == "METRICS":
            # A scrape of the process-wide registry: refresh the pool's
            # level gauges (queue depths, active sessions) first so the
            # rendering reflects this instant, then ship the Prometheus
            # text inside the ordinary JSON reply frame.
            self.pool.stats()
            return {
                "op": "METRICS",
                "content_type": "text/plain; version=0.0.4",
                "text": obs_metrics.REGISTRY.render_text(),
            }, False
        if op == "ANALYTICS":
            # Per-rule serving counters, merged order-free across shards.
            # An optional integer "top" keeps only the N most-violated
            # rules (ties broken by opened points, then rule id) so a
            # dashboard polling a huge rule set gets a bounded reply.
            rules = self.pool.rule_analytics()
            top = payload.get("top")
            if isinstance(top, int) and not isinstance(top, bool) and top >= 0:
                ranked = sorted(
                    rules.items(),
                    key=lambda item: (-item[1]["violated"], -item[1]["opened"], item[0]),
                )
                rules = dict(ranked[:top])
            return {
                "op": "ANALYTICS",
                "generation": self.pool.generation,
                "rules": rules,
            }, False
        if op == "REPORT":
            limit = payload.get("limit")
            reply = {"op": "REPORT"}
            reply.update(
                _report_payload(self.pool.report(), limit if isinstance(limit, int) else None)
            )
            return reply, False
        if op == "SWAP":
            repository = payload.get("repository")
            if not isinstance(repository, dict):
                raise MonitoringError(
                    "SWAP needs a 'repository' object (SpecificationRepository.to_dict())"
                )
            rules = SpecificationRepository.from_dict(repository).rules
            generation = self.pool.swap(rules)
            return {"op": "OK", "generation": generation, "rules": len(rules)}, False
        if op == "PING":
            return {"op": "PONG"}, False
        if op == "SHUTDOWN":
            return {"op": "OK"}, True
        raise MonitoringError(f"unknown op {op!r}")


class PushClient:
    """A small synchronous client for the push protocol.

    One instance wraps one connection; any number of logical sessions can
    be driven through it.  :meth:`request` is strict request/reply;
    :meth:`pipeline` keeps up to ``window`` requests in flight for bulk
    pushes (replies still arrive in request order).

    Failure semantics (see ``docs/robustness.md``):

    * every read is bounded by ``timeout`` — a server that stops replying
      surfaces as :class:`~repro.core.errors.ServingTimeout` instead of a
      hang (the connection is closed: a stream interrupted mid-frame
      cannot be resynchronized);
    * with ``retries > 0`` a dropped or refused connection is rebuilt with
      exponential backoff plus jitter, and every request still awaiting a
      reply is re-sent on the new connection in order.  Because the
      convenience feeds number their batches (``seq``) per session, the
      server acknowledges-without-refeeding any batch it already accepted,
      so retry-after-reconnect is exactly-once for event delivery.  The
      numbering assumes one writer per session — drive a session through
      a single client at a time (sessions may still migrate between
      connections sequentially).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        *,
        connect_timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.2,
        max_backoff: float = 5.0,
        jitter: float = 0.25,
    ) -> None:
        self._address = (host, port)
        self._timeout = timeout
        self._connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self._retries = retries
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._jitter = jitter
        self._unanswered: Deque[Dict[str, object]] = deque()
        self._session_seq: Dict[str, int] = {}
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # -- connection management ----------------------------------------- #
    def _connect(self) -> None:
        self._sock = socket.create_connection(self._address, timeout=self._connect_timeout)
        self._sock.settimeout(self._timeout)
        self._file = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reconnect(self) -> None:
        """Rebuild the connection (backoff + jitter); re-send unanswered frames."""
        self._teardown()
        delay = self._backoff
        last_error: Optional[BaseException] = None
        for _ in range(self._retries):
            try:
                self._connect()
                break
            except OSError as error:
                last_error = error
                time.sleep(delay + random.uniform(0.0, self._jitter * delay))
                delay = min(delay * 2, self._max_backoff)
        else:
            host, port = self._address
            raise ProtocolError(
                f"could not reconnect to {host}:{port} after "
                f"{self._retries} attempt(s): {last_error}"
            )
        self.reconnects += 1
        assert self._file is not None
        for payload in self._unanswered:
            self._file.write(encode_frame(payload))
        self._file.flush()

    # -- framing ------------------------------------------------------- #
    def send(self, payload: Dict[str, object]) -> None:
        """Write one request frame without waiting for its reply.

        With tracing armed, the caller's current trace context is stamped
        into the payload (``trace``/``parent`` fields) before the frame is
        queued, so a retried re-send carries the same ids the original
        did.  A payload that already names a ``trace`` is left alone.
        """
        if tracing.ACTIVE is not None and "trace" not in payload:
            trace_id, parent = tracing.ensure_context()
            payload["trace"] = trace_id
            if parent is not None:
                payload["parent"] = parent
        self._unanswered.append(payload)
        if self._file is None:
            if not self._retries:
                raise ProtocolError("the connection is closed")
            self._reconnect()  # re-sends the queue, including this payload
            return
        try:
            self._file.write(encode_frame(payload))
        except OSError:
            if not self._retries:
                raise
            self._reconnect()

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def read(self) -> Dict[str, object]:
        """Read one reply frame (replies arrive in request order).

        Raises :class:`~repro.core.errors.ServingTimeout` when no reply
        arrives within the socket timeout; with ``retries`` configured, a
        dropped connection is rebuilt (unanswered requests re-sent) and
        the read continues on the new connection.
        """
        while True:
            if self._file is None:
                if not self._retries:
                    raise ProtocolError("the connection is closed")
                self._reconnect()
            try:
                self.flush()
                reply = read_frame(self._file)
            except TimeoutError as error:
                # A stream interrupted mid-frame cannot be resumed; drop
                # the connection so the next call starts clean.
                self._teardown()
                host, port = self._address
                raise ServingTimeout(
                    f"no reply from {host}:{port} within {self._timeout:g}s "
                    "(server unresponsive or overloaded)"
                ) from error
            except (OSError, ProtocolError):
                if not self._retries:
                    raise
                self._teardown()
                self._reconnect()
                continue
            if reply is None:
                if not self._retries:
                    raise ProtocolError("server closed the connection")
                self._teardown()
                self._reconnect()
                continue
            if self._unanswered:
                self._unanswered.popleft()
            return reply

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request and read its reply."""
        self.send(payload)
        return self.read()

    def pipeline(
        self, payloads: Iterable[Dict[str, object]], window: int = 256
    ) -> List[Dict[str, object]]:
        """Send many requests with at most ``window`` in flight.

        Bounding the in-flight window keeps both sides' socket buffers
        from deadlocking on huge bursts (the server replies to every
        frame; someone has to read those replies).  An unresponsive server
        surfaces as :class:`~repro.core.errors.ServingTimeout` from the
        first overdue reply rather than a silent hang.
        """
        replies: List[Dict[str, object]] = []
        pending = 0
        for payload in payloads:
            self.send(payload)
            pending += 1
            if pending >= window:
                replies.append(self.read())
                pending -= 1
        for _ in range(pending):
            replies.append(self.read())
        return replies

    # -- convenience verbs --------------------------------------------- #
    def _next_seq(self, session: str) -> int:
        seq = self._session_seq.get(session, -1) + 1
        self._session_seq[session] = seq
        return seq

    def feed(self, session: str, event: str) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "EVENT", "session": session, "event": event}
        if self._retries:
            payload["seq"] = self._next_seq(session)
        return self.request(payload)

    def feed_batch(self, session: str, events: Sequence[str]) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "op": "BATCH",
            "session": session,
            "events": list(events),
        }
        if self._retries:
            payload["seq"] = self._next_seq(session)
        return self.request(payload)

    def end(self, session: str, limit: Optional[int] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "END", "session": session}
        if limit is not None:
            payload["limit"] = limit
        return self.request(payload)

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "STATS"})

    def metrics(self) -> str:
        """Scrape the server's metrics registry (Prometheus text format)."""
        reply = self.request({"op": "METRICS"})
        text = reply.get("text")
        if reply.get("op") != "METRICS" or not isinstance(text, str):
            raise ProtocolError(f"unexpected METRICS reply: {reply!r}")
        return text

    def analytics(self, top: Optional[int] = None) -> Dict[str, object]:
        """Fetch the per-rule serving analytics (optionally only the top N)."""
        payload: Dict[str, object] = {"op": "ANALYTICS"}
        if top is not None:
            payload["top"] = top
        reply = self.request(payload)
        if reply.get("op") != "ANALYTICS" or not isinstance(reply.get("rules"), dict):
            raise ProtocolError(f"unexpected ANALYTICS reply: {reply!r}")
        return reply

    def report(self, limit: Optional[int] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "REPORT"}
        if limit is not None:
            payload["limit"] = limit
        return self.request(payload)

    def swap(
        self, repository: Union[SpecificationRepository, Dict[str, object]]
    ) -> Dict[str, object]:
        payload = (
            repository.to_dict()
            if isinstance(repository, SpecificationRepository)
            else repository
        )
        return self.request({"op": "SWAP", "repository": payload})

    def ping(self) -> Dict[str, object]:
        return self.request({"op": "PING"})

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "SHUTDOWN"})

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "PushClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
