"""The event-push socket front end over a :class:`MonitorPool`.

The watch daemon *polls files*; production traffic is *pushed*.  This module
is the network edge of the serving plane: a TCP server speaking a
length-prefixed JSON frame protocol, multiplexing any number of **logical
sessions** over any number of connections.  A session is identified by its
``session`` id, **not** by the connection carrying it — one connection may
drive thousands of interleaved sessions, a session may migrate between
connections, and several producer processes may push into one pool.

Wire format (documented in full in ``docs/serving.md``)::

    frame   := length payload
    length  := 4-byte big-endian unsigned payload byte count
    payload := one UTF-8 JSON object with an "op" field

Requests are answered with exactly one reply frame each, in request order,
so clients may pipeline freely.  The verbs:

========  ============================================================
``EVENT``     push one event of a session (reply ``OK`` / ``BUSY``)
``BATCH``     push several events of one session atomically
``END``       close a session; the reply carries its final report
``STATS``     pool/server counters (shards, queues, generations)
``REPORT``    the aggregate over all closed sessions
``SWAP``      hot-swap the served rule set to a new compile generation
``PING``      liveness probe (reply ``PONG``)
``SHUTDOWN``  stop the server after acknowledging
========  ============================================================

``BUSY`` is the backpressure half of the protocol: it means the session's
shard queue was full and *nothing* was queued — the client must resend the
same frame (typically after a short backoff).  Because a batch is accepted
or rejected atomically, retrying can never duplicate or reorder a prefix.

:class:`PushClient` is the matching client: a thin framing wrapper plus
convenience verbs and a pipelined bulk mode, used by the bench driver, the
protocol tests and ``examples/push_client.py``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.errors import DataFormatError, MonitoringError
from ..specs.repository import SpecificationRepository
from .pool import ACCEPTED, MonitorPool

#: Frames above this size are refused (and the connection closed): a bad
#: length prefix must never make the server buffer gigabytes.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed frame — the connection cannot be trusted past it."""


# --------------------------------------------------------------------- #
# Framing (shared by server, client and the example script)
# --------------------------------------------------------------------- #
def encode_frame(payload: Dict[str, object]) -> bytes:
    """Encode one JSON object as a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def read_frame(
    stream, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Dict[str, object]]:
    """Read one frame from a binary file-like stream.

    Returns ``None`` on a clean end of stream (EOF exactly between frames);
    raises :class:`ProtocolError` on a truncated or oversized frame or a
    payload that is not a JSON object.
    """
    header = stream.read(_LENGTH.size)
    if not header:
        return None
    if len(header) != _LENGTH.size:
        raise ProtocolError("truncated frame header")
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds the {max_frame_bytes} byte limit")
    body = stream.read(length)
    if len(body) != length:
        raise ProtocolError("truncated frame payload")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def _string_field(payload: Dict[str, object], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise MonitoringError(f"{payload.get('op', '?')} needs a non-empty string {field!r}")
    return value


def _report_payload(report, limit: Optional[int]) -> Dict[str, object]:
    violations = report.violations if limit is None else report.violations[:limit]
    return {
        "points": report.total_points,
        "satisfied": report.satisfied_points,
        "violation_count": report.violation_count,
        "violations": [violation.as_dict() for violation in violations],
    }


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames, dispatch verbs, reply in order."""

    def handle(self) -> None:  # noqa: D102 - socketserver plumbing
        server: "_PushTCPServer" = self.server  # type: ignore[assignment]
        front = server.front
        while True:
            try:
                payload = read_frame(self.rfile, front.max_frame_bytes)
            except ProtocolError as error:
                self._reply({"op": "ERROR", "error": str(error)})
                return  # framing is gone; drop the connection
            if payload is None:
                return
            try:
                reply, stop = front._dispatch(payload)
            except (MonitoringError, DataFormatError, KeyError, TypeError, ValueError) as error:
                reply, stop = {"op": "ERROR", "error": str(error)}, False
            try:
                self._reply(reply)
            except OSError:
                return
            if stop:
                # Acknowledge first, then stop accepting: SHUTDOWN's OK
                # must reach the client that asked for it.
                threading.Thread(target=server.shutdown, daemon=True).start()
                return

    def _reply(self, payload: Dict[str, object]) -> None:
        self.wfile.write(encode_frame(payload))
        self.wfile.flush()


class _PushTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, front: "EventPushServer") -> None:
        self.front = front
        super().__init__(address, _Handler)


class EventPushServer:
    """The TCP front end: bind, accept, route frames into a pool.

    Parameters
    ----------
    pool:
        The :class:`~repro.serving.pool.MonitorPool` every connection
        pushes into.  The server never monitors anything itself — it only
        frames, validates and routes.
    host / port:
        Bind address; port ``0`` binds an ephemeral port (the bound
        address is :attr:`address` either way).
    max_frame_bytes:
        Upper bound on one frame's payload.
    end_timeout:
        How long an ``END`` reply may wait for the session's shard to
        drain the session's queued events.

    Use :meth:`start` for a background server (tests, the watch daemon's
    push mode) or :meth:`serve_forever` to block (the ``repro serve``
    command).
    """

    def __init__(
        self,
        pool: MonitorPool,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        end_timeout: float = 60.0,
    ) -> None:
        self.pool = pool
        self.max_frame_bytes = max_frame_bytes
        self.end_timeout = end_timeout
        self._server = _PushTCPServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — with port 0, the port actually bound."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Serve on a daemon thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="event-push-server", daemon=True
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or SHUTDOWN)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting and unwind ``serve_forever`` (idempotent)."""
        self._server.shutdown()

    def close(self) -> None:
        """Shut down and release the listening socket (the pool stays up)."""
        self.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "EventPushServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Verb dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, payload: Dict[str, object]) -> Tuple[Dict[str, object], bool]:
        """Handle one request; returns ``(reply, stop_serving)``."""
        op = payload.get("op")
        if op == "EVENT":
            session = _string_field(payload, "session")
            event = _string_field(payload, "event")
            status = self.pool.feed(session, event)
            return ({"op": "OK"} if status == ACCEPTED else {"op": "BUSY"}), False
        if op == "BATCH":
            session = _string_field(payload, "session")
            events = payload.get("events")
            if not isinstance(events, list) or not all(
                isinstance(event, str) for event in events
            ):
                raise MonitoringError("BATCH needs an 'events' list of strings")
            status = self.pool.feed_batch(session, events)
            return ({"op": "OK"} if status == ACCEPTED else {"op": "BUSY"}), False
        if op == "END":
            session = _string_field(payload, "session")
            ticket = self.pool.end_session(session)
            if ticket is None:
                return {"op": "BUSY"}, False
            report = ticket.wait(timeout=self.end_timeout)
            limit = payload.get("limit")
            reply = {"op": "SESSION", "session": session}
            reply.update(_report_payload(report, limit if isinstance(limit, int) else None))
            return reply, False
        if op == "STATS":
            stats = dict(self.pool.stats())
            stats["op"] = "STATS"
            stats["uptime_seconds"] = round(time.monotonic() - self._started, 3)
            return stats, False
        if op == "REPORT":
            limit = payload.get("limit")
            reply = {"op": "REPORT"}
            reply.update(
                _report_payload(self.pool.report(), limit if isinstance(limit, int) else None)
            )
            return reply, False
        if op == "SWAP":
            repository = payload.get("repository")
            if not isinstance(repository, dict):
                raise MonitoringError(
                    "SWAP needs a 'repository' object (SpecificationRepository.to_dict())"
                )
            rules = SpecificationRepository.from_dict(repository).rules
            generation = self.pool.swap(rules)
            return {"op": "OK", "generation": generation, "rules": len(rules)}, False
        if op == "PING":
            return {"op": "PONG"}, False
        if op == "SHUTDOWN":
            return {"op": "OK"}, True
        raise MonitoringError(f"unknown op {op!r}")


class PushClient:
    """A small synchronous client for the push protocol.

    One instance wraps one connection; any number of logical sessions can
    be driven through it.  :meth:`request` is strict request/reply;
    :meth:`pipeline` keeps up to ``window`` requests in flight for bulk
    pushes (replies still arrive in request order).
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- framing ------------------------------------------------------- #
    def send(self, payload: Dict[str, object]) -> None:
        """Write one request frame without waiting for its reply."""
        self._file.write(encode_frame(payload))

    def flush(self) -> None:
        self._file.flush()

    def read(self) -> Dict[str, object]:
        """Read one reply frame (replies arrive in request order)."""
        self.flush()
        reply = read_frame(self._file)
        if reply is None:
            raise ProtocolError("server closed the connection")
        return reply

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request and read its reply."""
        self.send(payload)
        return self.read()

    def pipeline(
        self, payloads: Iterable[Dict[str, object]], window: int = 256
    ) -> List[Dict[str, object]]:
        """Send many requests with at most ``window`` in flight.

        Bounding the in-flight window keeps both sides' socket buffers
        from deadlocking on huge bursts (the server replies to every
        frame; someone has to read those replies).
        """
        replies: List[Dict[str, object]] = []
        pending = 0
        for payload in payloads:
            self.send(payload)
            pending += 1
            if pending >= window:
                replies.append(self.read())
                pending -= 1
        for _ in range(pending):
            replies.append(self.read())
        return replies

    # -- convenience verbs --------------------------------------------- #
    def feed(self, session: str, event: str) -> Dict[str, object]:
        return self.request({"op": "EVENT", "session": session, "event": event})

    def feed_batch(self, session: str, events: Sequence[str]) -> Dict[str, object]:
        return self.request({"op": "BATCH", "session": session, "events": list(events)})

    def end(self, session: str, limit: Optional[int] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "END", "session": session}
        if limit is not None:
            payload["limit"] = limit
        return self.request(payload)

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "STATS"})

    def report(self, limit: Optional[int] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "REPORT"}
        if limit is not None:
            payload["limit"] = limit
        return self.request(payload)

    def swap(
        self, repository: Union[SpecificationRepository, Dict[str, object]]
    ) -> Dict[str, object]:
        payload = (
            repository.to_dict()
            if isinstance(repository, SpecificationRepository)
            else repository
        )
        return self.request({"op": "SWAP", "repository": payload})

    def ping(self) -> Dict[str, object]:
        return self.request({"op": "PING"})

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "SHUTDOWN"})

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "PushClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
