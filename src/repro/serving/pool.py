"""A sharded, multi-tenant pool of streaming monitors.

One :class:`~repro.serving.stream_monitor.StreamingMonitor` checks one
session at a time.  Production traffic is thousands of *interleaved* live
sessions, so the serving plane needs a layer that multiplexes them:
:class:`MonitorPool` owns a fixed set of worker **shards**, each running one
thread over a bounded queue, and routes every session to exactly one shard
by **consistent hashing** of its session id.  All events of a session
therefore flow through one FIFO queue — per-session event order is
preserved by construction — while different sessions progress in parallel
across shards.

The pool makes three serving guarantees:

* **bounded memory** — each shard's queue is bounded (``queue_depth``
  items).  A producer feeding a shard whose queue is full gets
  :data:`BUSY` back immediately instead of growing the queue; the caller
  (the socket front end) surfaces that to the client, which retries.  A
  slow shard can therefore never take the process down, only slow its own
  sessions' producers;
* **generation-numbered hot swap** — all shards serve one immutable
  :class:`~repro.serving.compile.CompiledRuleSet`.  :meth:`MonitorPool.swap`
  installs a new compiled generation with a single reference assignment:
  sessions already open keep the generation they started on until they
  close (their in-flight matching state is only meaningful against it),
  sessions opened after the swap get the new one.  No lock is held while
  monitoring — the compiled set is immutable and shared;
* **deterministic aggregation** — every closed session's report is kept
  with the session's admission index and
  :meth:`MonitorPool.report` merges them *in admission order* through
  :meth:`MonitoringReport.merge_all
  <repro.verification.violations.MonitoringReport.merge_all>`.  The merged
  report is byte-identical to a single ``StreamingMonitor`` fed the same
  sessions one after another in admission order — the parity contract
  pinned by the hypothesis suite in ``tests/serving/test_pool.py``,
  including across a mid-stream hot swap.

The pool is transport-agnostic: the TCP front end in
:mod:`repro.serving.server` is one producer, the watch daemon's push mode
another, and tests drive it directly.
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.errors import MonitoringError, ServingTimeout, SessionLost
from ..core.events import EventLabel
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..testing import faults
from ..verification.violations import MonitoringReport
from .compile import CompiledRuleSet, RuleSource, compile_rules
from .stream_monitor import StreamingMonitor

#: :meth:`MonitorPool.feed` accepted the events (they are queued in order).
ACCEPTED = "ok"
#: The session's shard queue is full: nothing was queued, retry later.
BUSY = "busy"
#: The session was discarded because its shard crashed; the id is free to
#: be re-admitted.  Returned exactly once per lost session.
SESSION_LOST = "lost"

#: Virtual ring points per shard.  More replicas smooth the session
#: distribution; 64 keeps the spread within a few percent of uniform while
#: the ring stays tiny.
DEFAULT_RING_REPLICAS = 64
#: Default bound on each shard's pending-item queue.
DEFAULT_QUEUE_DEPTH = 1024
#: How often the supervisor thread polls shard-worker liveness.  Bounds
#: the window between a shard crash and its sessions answering
#: ``SESSION_LOST`` (and the shard serving again).
DEFAULT_SUPERVISOR_INTERVAL = 0.05
#: Bound on remembered lost-session markers; the oldest are evicted first
#: (a client that waits that long simply sees "unknown session", which it
#: handles the same way: re-admit).
MAX_LOST_MARKERS = 4096


def _ring_point(key: str) -> int:
    """A stable 64-bit ring position for ``key``.

    SHA-1 rather than ``hash()``: Python's string hash is randomized per
    process, and session→shard affinity must agree across restarts and
    across the processes of a future multi-host deployment.
    """
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class SessionTicket:
    """Handle for one session's in-flight close.

    :meth:`MonitorPool.end_session` enqueues the close behind the session's
    still-queued events and returns one of these; :meth:`wait` blocks until
    the shard processed everything and produced the session's final
    :class:`~repro.verification.violations.MonitoringReport`.
    """

    __slots__ = ("_done", "_report", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._report: Optional[MonitoringReport] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, report: MonitoringReport) -> None:
        self._report = report
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    @property
    def done(self) -> bool:
        """Whether the session's close has been processed by its shard."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> MonitoringReport:
        """Block until the session closed; return its final report.

        Raises :class:`~repro.core.errors.ServingTimeout` when the shard
        does not process the close within ``timeout`` seconds (the session
        close stays pending — the caller may wait again), and
        :class:`~repro.core.errors.SessionLost` when the shard crashed
        with this close still queued.
        """
        if not self._done.wait(timeout):
            raise ServingTimeout(
                f"timed out waiting for the session to close"
                f"{f' (after {timeout:g}s)' if timeout is not None else ''}"
            )
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report


class _Session:
    """One live logical session: its monitor, admission index and generation."""

    __slots__ = (
        "session_id",
        "index",
        "generation",
        "monitor",
        "shard",
        "events_fed",
        "last_seq",
        "trace",
    )

    def __init__(
        self,
        session_id: str,
        index: int,
        generation: int,
        monitor: StreamingMonitor,
        shard: "_Shard",
    ) -> None:
        self.session_id = session_id
        self.index = index
        self.generation = generation
        self.monitor = monitor
        self.shard = shard
        self.events_fed = 0
        # Highest client-supplied batch sequence number accepted, or None
        # when the producer does not number its batches.  Lets a client
        # whose reply was lost in a connection drop re-send the batch
        # without double-feeding (idempotent retry).
        self.last_seq: Optional[int] = None
        # Latest wire trace context ``(trace_id, parent_span_id)`` stamped
        # by the producer, so the shard worker's spans join the client's
        # trace; ``None`` when the producer does not trace.
        self.trace: Optional[Tuple[str, Optional[str]]] = None


class _Shard:
    """One worker thread draining one bounded queue of session work items."""

    def __init__(self, index: int, queue_depth: int) -> None:
        self.index = index
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self.lock = threading.Lock()
        #: ``(admission index, final report)`` of every session closed here.
        self.closed: List[Tuple[int, MonitoringReport]] = []
        #: Per-rule analytics folded from closed sessions' monitors:
        #: ``signature -> [opened, satisfied, violated, trie_advances]``.
        #: Plain int adds under the shard lock — commutative, so the pool's
        #: cross-shard merge is order-free like the worker metric deltas.
        self.rule_analytics: Dict[str, List[int]] = {}
        self.events_processed = 0
        self.sessions_closed = 0
        self.errors = 0
        self.restarts = 0
        self.last_error: Optional[str] = None
        self.stopping = False
        # The pause gate: cleared = the worker stalls *after* dequeuing at
        # most one item, so a paused shard's queue genuinely fills up.
        # Operational drains and the backpressure tests both use it.
        self._gate = threading.Event()
        self._gate.set()
        self.thread = threading.Thread(
            target=self._worker, name=f"monitor-shard-{index}", daemon=True
        )
        self.thread.start()

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while True:
            item = self.queue.get()
            self._gate.wait()
            kind = item[0]
            if kind == "stop":
                return
            try:
                if faults.ACTIVE is not None:
                    faults.trigger("pool.shard", key=str(self.index))
                if kind == "events":
                    _, session, events = item
                    monitor = session.monitor
                    # Child span under the producer's wire trace context —
                    # one span per *batch*, never per event.
                    batch_span = (
                        tracing.remote_span(
                            "pool.batch",
                            session.trace[0],
                            session.trace[1],
                            shard=self.index,
                            events=len(events),
                        )
                        if tracing.ACTIVE is not None and session.trace is not None
                        else tracing._NOOP
                    )
                    with batch_span:
                        for event in events:
                            monitor.feed(event)
                    session.events_fed += len(events)
                    with self.lock:
                        self.events_processed += len(events)
                    obs_metrics.POOL_EVENTS_TOTAL.inc(len(events))
                else:  # "end"
                    _, session, ticket = item
                    close_span = (
                        tracing.remote_span(
                            "pool.close",
                            session.trace[0],
                            session.trace[1],
                            shard=self.index,
                            session=session.session_id,
                        )
                        if tracing.ACTIVE is not None and session.trace is not None
                        else tracing._NOOP
                    )
                    # The trace was opened (named) at admission, so a
                    # zero-event session is simply a zero-length trace: its
                    # report still carries the rule set's zero point tallies.
                    with close_span:
                        report = session.monitor.end_trace()
                    with self.lock:
                        self.closed.append((session.index, report))
                        self.sessions_closed += 1
                        for key, values in session.monitor.analytics.items():
                            slot = self.rule_analytics.get(key)
                            if slot is None:
                                self.rule_analytics[key] = list(values)
                            else:
                                for position in range(4):
                                    slot[position] += values[position]
                    obs_metrics.POOL_SESSIONS_CLOSED_TOTAL.inc()
                    ticket._resolve(report)
            except BaseException as error:
                # The shard cannot tell how far the item got, so the
                # monitor state behind it is no longer trustworthy.  Die
                # loudly and let the pool supervisor restart the shard and
                # fail its sessions over to SESSION_LOST, instead of
                # limping on with silently wrong matching state.
                with self.lock:
                    self.errors += 1
                    self.last_error = f"{type(error).__name__}: {error}"
                if kind == "end":
                    item[2]._fail(
                        SessionLost(
                            "the session's shard crashed while closing it: "
                            f"{self.last_error}"
                        )
                    )
                return

    # ------------------------------------------------------------------ #
    # Control
    # ------------------------------------------------------------------ #
    def pause(self) -> None:
        """Stall the worker (it finishes at most the item already in hand)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    def restart(self) -> None:
        """Bring a fresh worker thread up after a crash (supervisor only)."""
        with self.lock:
            self.restarts += 1
        obs_metrics.POOL_SHARD_RESTARTS_TOTAL.inc()
        self.thread = threading.Thread(
            target=self._worker, name=f"monitor-shard-{self.index}", daemon=True
        )
        self.thread.start()

    def stop(self) -> None:
        self.stopping = True
        self.resume()
        if not self.thread.is_alive():
            return  # crashed and not (yet) restarted; nothing to stop
        self.queue.put(("stop",))
        self.thread.join(timeout=10.0)

    def stats(self) -> Dict[str, object]:
        # One consistent snapshot: every counter (and the queue depth) is
        # read under the shard lock the worker writes under, so a scrape
        # racing a crash/restart (or a mid-swap burst) can't mix a new
        # generation's depth with an old generation's counters.
        with self.lock:
            return {
                "shard": self.index,
                "queued": self.queue.qsize(),
                "events_processed": self.events_processed,
                "sessions_closed": self.sessions_closed,
                "errors": self.errors,
                "restarts": self.restarts,
            }


class MonitorPool:
    """Serve many concurrent logical sessions over sharded monitors.

    Parameters
    ----------
    rules:
        Anything :func:`~repro.serving.compile.compile_rules` accepts — an
        already-compiled :class:`CompiledRuleSet`, an iterable of rules, or
        a specification repository.  This is generation 0.
    shards:
        Number of worker shards (threads).  Sessions are spread across
        them by consistent hashing; all events of one session stay on one
        shard.
    queue_depth:
        Bound on each shard's pending work-item queue (an item is one
        :meth:`feed` batch or one session close).  A full queue answers
        :data:`BUSY` instead of growing.
    ring_replicas:
        Virtual ring points per shard for the consistent-hash ring.

    Example
    -------
    >>> pool = MonitorPool(rules, shards=4)
    >>> pool.feed("session-a", "connect")        # ACCEPTED or BUSY
    >>> ticket = pool.end_session("session-a")
    >>> ticket.wait().violation_count
    >>> pool.report()                            # all closed sessions, merged
    """

    def __init__(
        self,
        rules: Union[RuleSource, CompiledRuleSet],
        *,
        shards: int = 4,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        ring_replicas: int = DEFAULT_RING_REPLICAS,
        supervisor_interval: float = DEFAULT_SUPERVISOR_INTERVAL,
    ) -> None:
        if shards < 1:
            raise MonitoringError("a monitor pool needs at least one shard")
        if queue_depth < 1:
            raise MonitoringError("queue_depth must be positive")
        if supervisor_interval <= 0:
            raise MonitoringError("supervisor_interval must be positive")
        self.queue_depth = queue_depth
        self._compiled = (
            rules if isinstance(rules, CompiledRuleSet) else compile_rules(rules)
        )
        self._generation = 0
        self._lock = threading.Lock()
        self._shards = [_Shard(index, queue_depth) for index in range(shards)]
        self._sessions: Dict[str, _Session] = {}
        self._next_index = 0
        self._sessions_opened = 0
        self._busy_rejections = 0
        self._closed = False
        # Failure bookkeeping: session ids whose shard crashed, mapped to
        # the human-readable reason.  Consumed (answered once) by the next
        # feed / end under that id.
        self._lost: Dict[str, str] = {}
        self._sessions_lost = 0
        self._supervisor_interval = supervisor_interval
        self._supervisor = threading.Thread(
            target=self._supervise, name="monitor-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        # Consistent-hash ring: shard ownership moves minimally when the
        # shard count changes (the property multi-host sharding needs).
        ring: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(ring_replicas):
                ring.append((_ring_point(f"shard-{shard}:vnode-{replica}"), shard))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_shards = [shard for _, shard in ring]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self, session_id: str) -> int:
        """The shard index owning ``session_id`` (stable across processes)."""
        position = bisect.bisect(self._ring_points, _ring_point(session_id))
        return self._ring_shards[position % len(self._ring_shards)]

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #
    def _supervise(self) -> None:
        """Poll shard-worker liveness; restart crashed shards.

        Runs as a daemon thread for the pool's lifetime.  A shard whose
        worker thread died unexpectedly (not a clean ``stop``) gets its
        sessions marked lost — the next contact under each id answers
        :data:`SESSION_LOST` — its queued items discarded (queued closes
        fail their tickets with :class:`SessionLost`), and a fresh worker
        thread started, so the pool keeps serving its other shards and the
        crashed shard itself returns to service within one interval.
        """
        while True:
            time.sleep(self._supervisor_interval)
            with self._lock:
                if self._closed:
                    return
                for shard in self._shards:
                    if shard.stopping or shard.thread.is_alive():
                        continue
                    self._recover_shard(shard)

    def _recover_shard(self, shard: _Shard) -> None:
        """Fail a crashed shard's sessions over and restart it (lock held)."""
        reason = (
            f"session lost: monitor shard {shard.index} crashed "
            f"({shard.last_error or 'worker thread died'}); "
            "its in-memory monitoring state is gone and the session id may "
            "be re-admitted"
        )
        lost = [
            session_id
            for session_id, session in self._sessions.items()
            if session.shard is shard
        ]
        for session_id in lost:
            del self._sessions[session_id]
            self._remember_lost(session_id, reason)
        self._sessions_lost += len(lost)
        if lost:
            obs_metrics.POOL_SESSIONS_LOST_TOTAL.inc(len(lost))
        # Discard everything still queued: the sessions the items belong
        # to are gone.  Queued closes must not hang their waiters.
        while True:
            try:
                item = shard.queue.get_nowait()
            except queue.Empty:
                break
            if item[0] == "end":
                self._sessions_lost += 1
                obs_metrics.POOL_SESSIONS_LOST_TOTAL.inc()
                item[2]._fail(SessionLost(reason))
        shard.restart()

    def _remember_lost(self, session_id: str, reason: str) -> None:
        while len(self._lost) >= MAX_LOST_MARKERS:
            self._lost.pop(next(iter(self._lost)))
        self._lost[session_id] = reason

    def _note_busy(self) -> None:
        """Count one BUSY rejection (pool lock held)."""
        self._busy_rejections += 1
        obs_metrics.POOL_BUSY_TOTAL.inc()

    # ------------------------------------------------------------------ #
    # The hot path: feeding events
    # ------------------------------------------------------------------ #
    def feed(
        self,
        session_id: str,
        event: EventLabel,
        *,
        seq: Optional[int] = None,
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> str:
        """Queue one event for ``session_id``; :data:`ACCEPTED` or :data:`BUSY`."""
        return self.feed_batch(session_id, (event,), seq=seq, trace=trace)

    def feed_batch(
        self,
        session_id: str,
        events: Iterable[EventLabel],
        *,
        seq: Optional[int] = None,
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> str:
        """Queue a batch of events for one session, atomically.

        The whole batch is one queue item: either every event is accepted
        (in order, behind the session's earlier batches) or — when the
        session's shard queue is full — none is and :data:`BUSY` comes
        back, so a retry never reorders or duplicates a prefix.  The first
        accepted batch admits the session: it is assigned the next
        admission index and the *current* compile generation.

        ``seq`` is an optional per-session batch sequence number for
        idempotent retry: a batch whose ``seq`` does not exceed the
        session's last accepted one is acknowledged :data:`ACCEPTED`
        without being queued again (the client is re-sending after a lost
        reply).  ``BUSY`` does not consume a sequence number.

        If the session's shard crashed since the last contact, the first
        call under its id answers :data:`SESSION_LOST` (once); the id is
        then free to re-admit.

        ``trace`` is an optional ``(trace_id, parent_span_id)`` wire trace
        context; the shard worker opens its per-batch span as a child of
        it when tracing is armed (see :mod:`repro.obs.tracing`).
        """
        batch = tuple(events)
        with self._lock:
            if self._closed:
                raise MonitoringError("the monitor pool is closed")
            if session_id in self._lost:
                del self._lost[session_id]
                return SESSION_LOST
            session = self._sessions.get(session_id)
            if session is None:
                shard = self._shards[self.route(session_id)]
                monitor = StreamingMonitor(self._compiled, first_trace_index=self._next_index)
                # Open the trace here, named after the session, so violations
                # identify their session.  Safe without the shard lock: the
                # worker cannot see this monitor until the first queue item
                # below is enqueued.
                monitor.begin_trace(name=session_id)
                session = _Session(
                    session_id,
                    self._next_index,
                    self._generation,
                    monitor,
                    shard,
                )
                session.trace = trace
                try:
                    shard.queue.put_nowait(("events", session, batch))
                except queue.Full:
                    self._note_busy()
                    return BUSY
                # Admission is committed only with the first accepted
                # batch, so a BUSY first contact burns no index.
                self._sessions[session_id] = session
                self._next_index += 1
                self._sessions_opened += 1
                obs_metrics.POOL_SESSIONS_OPENED_TOTAL.inc()
                session.last_seq = seq
                return ACCEPTED
            if seq is not None and session.last_seq is not None and seq <= session.last_seq:
                # Idempotent re-send: the batch was already accepted, only
                # its reply was lost.  Acknowledge without re-queuing.
                return ACCEPTED
            if trace is not None:
                session.trace = trace
            try:
                session.shard.queue.put_nowait(("events", session, batch))
            except queue.Full:
                self._note_busy()
                return BUSY
            if seq is not None:
                session.last_seq = seq
        return ACCEPTED

    def end_session(
        self,
        session_id: str,
        *,
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> Optional[SessionTicket]:
        """Close a session: queue its end behind its pending events.

        Returns a :class:`SessionTicket` to wait on, or ``None`` when the
        shard queue is full (:data:`BUSY` — the session stays open and the
        caller retries).  Ending an unknown session raises
        :class:`MonitoringError`; ending a session whose shard crashed
        raises :class:`~repro.core.errors.SessionLost` (once — the id is
        then free again).  A closed session's id may be reused: the next
        :meth:`feed` under it admits a brand-new session.
        """
        with self._lock:
            if self._closed:
                raise MonitoringError("the monitor pool is closed")
            if session_id in self._lost:
                raise SessionLost(self._lost.pop(session_id))
            session = self._sessions.get(session_id)
            if session is None:
                raise MonitoringError(f"unknown session {session_id!r}")
            if trace is not None:
                session.trace = trace
            ticket = SessionTicket()
            try:
                session.shard.queue.put_nowait(("end", session, ticket))
            except queue.Full:
                self._note_busy()
                return None
            del self._sessions[session_id]
            return ticket

    # ------------------------------------------------------------------ #
    # Hot swap
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """The current compile generation (0 = the rules the pool opened with)."""
        return self._generation

    @property
    def compiled(self) -> CompiledRuleSet:
        """The compiled rule set new sessions are currently admitted under."""
        return self._compiled

    def swap(self, rules: Union[RuleSource, CompiledRuleSet]) -> int:
        """Install a new compiled generation; returns its generation number.

        In-flight sessions keep the generation they were admitted under
        (their matching state is only meaningful against it) and finish on
        it; sessions admitted after the swap serve the new rule set.  The
        swap itself is a reference assignment — no monitoring work pauses.
        """
        compiled = (
            rules if isinstance(rules, CompiledRuleSet) else compile_rules(rules)
        )
        with self._lock:
            self._compiled = compiled
            self._generation += 1
            return self._generation

    # ------------------------------------------------------------------ #
    # Aggregation and introspection
    # ------------------------------------------------------------------ #
    def report(self) -> MonitoringReport:
        """The merged report over every *closed* session, in admission order.

        Sessions still open contribute nothing until they end.  Merging in
        admission order makes the aggregate deterministic and byte-identical
        to one :class:`StreamingMonitor` fed the same sessions sequentially
        — regardless of how their events interleaved across shards.
        """
        entries: List[Tuple[int, MonitoringReport]] = []
        for shard in self._shards:
            with shard.lock:
                entries.extend(shard.closed)
        entries.sort(key=lambda entry: entry[0])
        return MonitoringReport.merge_all(report for _, report in entries)

    def rule_analytics(self) -> Dict[str, Dict[str, int]]:
        """Per-rule serving analytics merged across shards (closed sessions).

        ``signature -> {"opened", "satisfied", "violated", "trie_advances"}``
        — the ANALYTICS wire verb's payload and the rule-ranking feed.
        Each shard's tallies are read under its own lock and summed
        key-wise; addition commutes, so the merge is order-free exactly
        like the engine's worker metric deltas.  Sessions still open
        contribute nothing until they close.
        """
        merged: Dict[str, List[int]] = {}
        for shard in self._shards:
            with shard.lock:
                entries = [(key, list(values)) for key, values in shard.rule_analytics.items()]
            for key, values in entries:
                slot = merged.get(key)
                if slot is None:
                    merged[key] = values
                else:
                    for position in range(4):
                        slot[position] += values[position]
        return {
            key: {
                "opened": values[0],
                "satisfied": values[1],
                "violated": values[2],
                "trie_advances": values[3],
            }
            for key, values in sorted(merged.items())
        }

    def shard_liveness(self) -> List[bool]:
        """Whether each shard's worker thread is currently alive.

        A dead entry is transient — the supervisor restarts crashed shards
        within one poll interval — but a readiness probe (``/healthz``)
        reports it so flapping shards are visible.
        """
        return [shard.thread.is_alive() for shard in self._shards]

    @property
    def active_sessions(self) -> int:
        """Sessions admitted and not yet closed."""
        with self._lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, object]:
        """Counters for the ``STATS`` control verb and operations."""
        with self._lock:
            active = len(self._sessions)
            opened = self._sessions_opened
            busy = self._busy_rejections
            generation = self._generation
            rules = len(self._compiled)
            sessions_lost = self._sessions_lost
        shard_stats = [shard.stats() for shard in self._shards]
        # Scrape-time gauges: levels (not events), so they are *set* from
        # the consistent per-shard snapshots rather than incremented.
        obs_metrics.POOL_SESSIONS_ACTIVE.set(active)
        for entry in shard_stats:
            obs_metrics.POOL_QUEUE_DEPTH.set(entry["queued"], shard=entry["shard"])
        return {
            "shards": len(self._shards),
            "queue_depth": self.queue_depth,
            "generation": generation,
            "rules": rules,
            "sessions_active": active,
            "sessions_opened": opened,
            "sessions_closed": sum(entry["sessions_closed"] for entry in shard_stats),
            "events_processed": sum(entry["events_processed"] for entry in shard_stats),
            "busy_rejections": busy,
            "restarts": sum(entry["restarts"] for entry in shard_stats),
            "sessions_lost": sessions_lost,
            "per_shard": shard_stats,
        }

    # ------------------------------------------------------------------ #
    # Shard control and lifecycle
    # ------------------------------------------------------------------ #
    def pause_shard(self, index: int) -> None:
        """Stall one shard's worker (drains/tests); queued work waits."""
        self._shards[index].pause()

    def resume_shard(self, index: int) -> None:
        self._shards[index].resume()

    def drain(self, timeout: float = 10.0) -> bool:
        """Best-effort wait until every shard queue is empty.

        The item a worker already holds may still be in flight when this
        returns; session closes have their own exact barrier
        (:meth:`SessionTicket.wait`).
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(shard.queue.empty() for shard in self._shards):
                return True
            time.sleep(0.005)
        return False

    def drain_sessions(self, timeout: float = 10.0) -> int:
        """Close every open session and wait for the reports; return the count.

        The graceful-shutdown path (``repro serve`` on SIGTERM): each open
        session is ended — retrying briefly through :data:`BUSY` — and the
        resulting tickets awaited so their reports land in the aggregate
        before the pool is closed.  Sessions that cannot be closed inside
        ``timeout`` (a wedged or repeatedly crashing shard) are abandoned;
        the return value counts the sessions whose close completed.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            session_ids = sorted(self._sessions)
        tickets: List[SessionTicket] = []
        for session_id in session_ids:
            while True:
                try:
                    ticket = self.end_session(session_id)
                except MonitoringError:
                    break  # lost or already closed concurrently
                if ticket is not None:
                    tickets.append(ticket)
                    break
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.005)  # BUSY: give the shard room to drain
        closed = 0
        for ticket in tickets:
            try:
                ticket.wait(timeout=max(0.0, deadline - time.monotonic()))
                closed += 1
            except MonitoringError:
                continue  # timed out or lost; counted sessions only
        return closed

    def close(self) -> None:
        """Stop every shard worker.  Open sessions are abandoned unclosed."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._supervisor.join(timeout=self._supervisor_interval * 20 + 1.0)
        for shard in self._shards:
            shard.stop()

    def __enter__(self) -> "MonitorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
