"""Traces and trace collection.

A :class:`Trace` is a named sequence of event labels — one program run.  A
:class:`TraceCollector` accumulates events while instrumented code executes
(see :mod:`repro.traces.instrument`) and turns the collected runs into the
:class:`~repro.core.sequence.SequenceDatabase` the miners consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.errors import DataFormatError
from ..core.events import EventLabel
from ..core.sequence import SequenceDatabase
from .event_model import event_label


@dataclass
class Trace:
    """One program execution trace: a named ordered list of event labels."""

    events: List[EventLabel] = field(default_factory=list)
    name: Optional[str] = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[EventLabel]:
        return iter(self.events)

    def __getitem__(self, index: int) -> EventLabel:
        return self.events[index]

    def append(self, event: EventLabel) -> None:
        """Append one event to the trace."""
        self.events.append(event)

    def record_call(self, class_name: str, method_name: str) -> None:
        """Append a ``Class.method`` event."""
        self.events.append(event_label(class_name, method_name))

    def as_tuple(self) -> Tuple[EventLabel, ...]:
        """The trace's events as an immutable tuple."""
        return tuple(self.events)


def traces_to_database(traces: Iterable[Trace]) -> SequenceDatabase:
    """Build a sequence database from an iterable of traces."""
    database = SequenceDatabase()
    for trace in traces:
        database.add(trace.events, name=trace.name)
    return database


def database_to_traces(database: SequenceDatabase) -> List[Trace]:
    """Materialise every sequence of a database as a :class:`Trace`."""
    return [
        Trace(events=list(database[index]), name=database.name(index))
        for index in range(len(database))
    ]


class TraceCollector:
    """Accumulates traces produced by instrumented code.

    Typical use::

        collector = TraceCollector()
        with collector.trace("tx-commit-test"):
            instrumented_component.run()
        database = collector.to_database()
    """

    def __init__(self) -> None:
        self._traces: List[Trace] = []
        self._active: Optional[Trace] = None

    # ------------------------------------------------------------------ #
    # Trace lifecycle
    # ------------------------------------------------------------------ #
    def start_trace(self, name: Optional[str] = None) -> Trace:
        """Begin collecting a new trace; subsequent events go to it."""
        if self._active is not None:
            raise DataFormatError("a trace is already being collected; end it first")
        self._active = Trace(name=name)
        return self._active

    def end_trace(self) -> Trace:
        """Finish the active trace and store it."""
        if self._active is None:
            raise DataFormatError("no active trace to end")
        finished = self._active
        self._traces.append(finished)
        self._active = None
        return finished

    def trace(self, name: Optional[str] = None) -> "_TraceContext":
        """Context manager sugar around :meth:`start_trace` / :meth:`end_trace`."""
        return _TraceContext(self, name)

    # ------------------------------------------------------------------ #
    # Event recording
    # ------------------------------------------------------------------ #
    def record(self, event: EventLabel) -> None:
        """Record one event into the active trace."""
        if self._active is None:
            raise DataFormatError("cannot record an event: no active trace")
        self._active.append(event)

    def record_call(self, class_name: str, method_name: str) -> None:
        """Record a ``Class.method`` invocation into the active trace."""
        self.record(event_label(class_name, method_name))

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    @property
    def traces(self) -> List[Trace]:
        """All completed traces, in collection order."""
        return list(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def to_database(self) -> SequenceDatabase:
        """All completed traces as a sequence database."""
        return traces_to_database(self._traces)

    def clear(self) -> None:
        """Drop all collected traces (the active trace, if any, is kept)."""
        self._traces.clear()


class _TraceContext:
    """Context manager returned by :meth:`TraceCollector.trace`."""

    def __init__(self, collector: TraceCollector, name: Optional[str]) -> None:
        self._collector = collector
        self._name = name

    def __enter__(self) -> Trace:
        return self._collector.start_trace(self._name)

    def __exit__(self, *exc_info: object) -> None:
        self._collector.end_trace()
