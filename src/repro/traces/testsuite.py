"""Driving instrumented code with a test suite to obtain traces.

The paper generates traces "by running the test suite that comes with the
JBoss-AS distribution" over instrumented components.  The tiny framework
here mirrors that workflow for the simulated components: a
:class:`TestSuiteRunner` executes named test callables, gives each one a
fresh trace in a shared :class:`~repro.traces.trace.TraceCollector`, and
returns the resulting sequence database.  Each test is run a configurable
number of times (optionally with a per-iteration seed) so that looping
behaviour — the source of *iterative* patterns — shows up in the traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..core.errors import ConfigurationError
from ..core.sequence import SequenceDatabase
from .trace import TraceCollector

TestCallable = Callable[[TraceCollector, int], None]


@dataclass
class TestCase:
    """A named test: a callable receiving the collector and an iteration index."""

    # Not a pytest test class, despite the name (silences PytestCollectionWarning).
    __test__ = False

    name: str
    run: TestCallable
    repetitions: int = 1

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {self.repetitions!r} for test {self.name!r}"
            )


@dataclass
class TestSuiteRunner:
    """Run a list of test cases, one trace per (test, repetition)."""

    # Not a pytest test class, despite the name (silences PytestCollectionWarning).
    __test__ = False

    tests: List[TestCase] = field(default_factory=list)
    collector: TraceCollector = field(default_factory=TraceCollector)

    def add(self, name: str, run: TestCallable, repetitions: int = 1) -> "TestSuiteRunner":
        """Register a test case; returns ``self`` for chaining."""
        self.tests.append(TestCase(name=name, run=run, repetitions=repetitions))
        return self

    def run(self) -> SequenceDatabase:
        """Execute every registered test and return the collected traces."""
        if not self.tests:
            raise ConfigurationError("the test suite is empty")
        for test in self.tests:
            for iteration in range(test.repetitions):
                trace_name = (
                    test.name if test.repetitions == 1 else f"{test.name}#{iteration}"
                )
                with self.collector.trace(trace_name):
                    test.run(self.collector, iteration)
        return self.collector.to_database()


def run_test_suite(tests: List[TestCase]) -> SequenceDatabase:
    """Run an ad-hoc list of test cases and return the collected traces."""
    runner = TestSuiteRunner()
    for test in tests:
        runner.tests.append(test)
    return runner.run()
