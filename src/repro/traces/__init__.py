"""Program-trace framework: events, traces, instrumentation, IO, test driving."""

from .event_model import MethodCallEvent, event_label, split_label
from .instrument import InstrumentedProxy, instrument
from .io import (
    read_csv,
    read_jsonl,
    read_text,
    read_traces,
    write_csv,
    write_jsonl,
    write_text,
    write_traces,
)
from .testsuite import TestCase, TestSuiteRunner, run_test_suite
from .trace import Trace, TraceCollector, database_to_traces, traces_to_database

__all__ = [
    "MethodCallEvent",
    "event_label",
    "split_label",
    "InstrumentedProxy",
    "instrument",
    "read_csv",
    "read_jsonl",
    "read_text",
    "read_traces",
    "write_csv",
    "write_jsonl",
    "write_text",
    "write_traces",
    "TestCase",
    "TestSuiteRunner",
    "run_test_suite",
    "Trace",
    "TraceCollector",
    "database_to_traces",
    "traces_to_database",
]
