"""Reading and writing trace databases.

Three interchange formats are supported, all line-oriented and dependency
free, each with a transparent gzip-wrapped variant (``.txt.gz``,
``.jsonl.gz``, ``.csv.gz``):

* **text** — one event label per line, blank line between traces, optional
  ``# name`` comment naming the following trace (the format produced by most
  ad-hoc instrumentation scripts);
* **jsonl** — one JSON object per line: ``{"name": ..., "events": [...]}``;
* **csv** — ``trace_id,position,event`` rows with a header.

Parsing and serialisation live in the streaming adapters of
:mod:`repro.ingest.formats`; this module is the thin whole-database
convenience layer on top, so the batch readers and the streaming ingestion
path can never drift apart.  For bounded-memory access to large files, use
:func:`repro.ingest.formats.stream_traces` directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from ..core.sequence import SequenceDatabase
from ..ingest.formats import (
    TraceRecord,
    adapter_for,
    format_for_path,
    iter_csv_rows,
    open_trace_text,
    stream_traces,
    write_trace_records,
)

PathLike = Union[str, Path]


def _database_records(database: SequenceDatabase):
    """The database's traces as stringified streaming records."""
    for index in range(len(database)):
        yield TraceRecord(
            tuple(str(event) for event in database[index]), database.name(index)
        )


def _collect(records) -> SequenceDatabase:
    """Materialise a record stream into a database."""
    database = SequenceDatabase()
    for record in records:
        database.add(record.events, name=record.name)
    return database


# ---------------------------------------------------------------------- #
# Per-format convenience wrappers (whole-database, path-based)
# ---------------------------------------------------------------------- #
def write_text(database: SequenceDatabase, path: PathLike) -> None:
    """Write a database in the plain-text format."""
    write_trace_records(path, _database_records(database), format="text")


def read_text(path: PathLike) -> SequenceDatabase:
    """Read a database from the plain-text format."""
    return _collect(stream_traces(path, format="text"))


def write_jsonl(database: SequenceDatabase, path: PathLike) -> None:
    """Write a database with one JSON object per trace."""
    write_trace_records(path, _database_records(database), format="jsonl")


def read_jsonl(path: PathLike) -> SequenceDatabase:
    """Read a database written by :func:`write_jsonl`."""
    return _collect(stream_traces(path, format="jsonl"))


def write_csv(database: SequenceDatabase, path: PathLike) -> None:
    """Write a database as ``trace_id,position,event`` rows."""
    write_trace_records(path, _database_records(database), format="csv")


def _collect_csv(path: PathLike) -> SequenceDatabase:
    """Whole-file CSV semantics: buffer the rows, sort by trace_id.

    The streaming adapter requires contiguous per-trace runs (it cannot
    sort what it has not read); the whole-file reader keeps the historical
    behaviour instead — rows may be interleaved and traces come back
    ordered by their numeric trace_id.  Both sit on the same
    :func:`~repro.ingest.formats.iter_csv_rows` grammar, so header
    validation and row parsing cannot drift."""
    _, gzipped = format_for_path(path, "csv")
    rows_by_trace: Dict[int, list] = {}
    with open_trace_text(path, "r", gzipped) as handle:
        for trace_id, position, event in iter_csv_rows(handle):
            rows_by_trace.setdefault(trace_id, []).append((position, event))
    database = SequenceDatabase()
    for trace_id in sorted(rows_by_trace):
        events = [event for _, event in sorted(rows_by_trace[trace_id])]
        database.add(events, name=f"trace-{trace_id}")
    return database


def read_csv(path: PathLike) -> SequenceDatabase:
    """Read a database written by :func:`write_csv`."""
    return _collect_csv(path)


# ---------------------------------------------------------------------- #
# Format dispatch
# ---------------------------------------------------------------------- #
def _format_for(path: PathLike, explicit: Optional[str]) -> str:
    """Resolve the format name for ``path`` (validating explicit names).

    ``.gz`` suffixes select the gzip codec underneath the returned format;
    kept for backward compatibility — new code should call
    :func:`repro.ingest.formats.format_for_path`, which also reports the
    codec.
    """
    if explicit is not None:
        adapter_for(explicit)
        return explicit
    return format_for_path(path)[0]


def write_traces(database: SequenceDatabase, path: PathLike, format: Optional[str] = None) -> None:
    """Write ``database`` to ``path`` in the given (or inferred) format."""
    write_trace_records(path, _database_records(database), format=format)


def read_traces(path: PathLike, format: Optional[str] = None) -> SequenceDatabase:
    """Read a trace database from ``path`` in the given (or inferred) format."""
    resolved = _format_for(path, format)
    if resolved == "csv":
        return _collect_csv(path)
    return _collect(stream_traces(path, format=resolved))
