"""Reading and writing trace databases.

Three interchange formats are supported, all line-oriented and dependency
free:

* **text** — one event label per line, blank line between traces, optional
  ``# name`` comment naming the following trace (the format produced by most
  ad-hoc instrumentation scripts);
* **jsonl** — one JSON object per line: ``{"name": ..., "events": [...]}``;
* **csv** — ``trace_id,position,event`` rows with a header.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.errors import DataFormatError
from ..core.sequence import SequenceDatabase

PathLike = Union[str, Path]


# ---------------------------------------------------------------------- #
# Plain text
# ---------------------------------------------------------------------- #
def write_text(database: SequenceDatabase, path: PathLike) -> None:
    """Write a database in the plain-text format."""
    lines: List[str] = []
    for index in range(len(database)):
        name = database.name(index)
        if name:
            lines.append(f"# {name}")
        lines.extend(str(event) for event in database[index])
        lines.append("")
    Path(path).write_text("\n".join(lines), encoding="utf-8")


def read_text(path: PathLike) -> SequenceDatabase:
    """Read a database from the plain-text format."""
    database = SequenceDatabase()
    current: List[str] = []
    current_name: Optional[str] = None
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if not line:
            if current:
                database.add(current, name=current_name)
            current, current_name = [], None
            continue
        if line.startswith("#"):
            current_name = line.lstrip("#").strip() or None
            continue
        current.append(line)
    if current:
        database.add(current, name=current_name)
    return database


# ---------------------------------------------------------------------- #
# JSON lines
# ---------------------------------------------------------------------- #
def write_jsonl(database: SequenceDatabase, path: PathLike) -> None:
    """Write a database with one JSON object per trace."""
    with Path(path).open("w", encoding="utf-8") as handle:
        for index in range(len(database)):
            record = {"name": database.name(index), "events": list(map(str, database[index]))}
            handle.write(json.dumps(record) + "\n")


def read_jsonl(path: PathLike) -> SequenceDatabase:
    """Read a database written by :func:`write_jsonl`."""
    database = SequenceDatabase()
    for line_number, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise DataFormatError(f"invalid JSON on line {line_number}: {error}") from error
        if not isinstance(record, dict) or "events" not in record:
            raise DataFormatError(f"line {line_number} is not a trace record: {line!r}")
        database.add(list(record["events"]), name=record.get("name"))
    return database


# ---------------------------------------------------------------------- #
# CSV
# ---------------------------------------------------------------------- #
def write_csv(database: SequenceDatabase, path: PathLike) -> None:
    """Write a database as ``trace_id,position,event`` rows."""
    with Path(path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["trace_id", "position", "event"])
        for index in range(len(database)):
            for position, event in enumerate(database[index]):
                writer.writerow([index, position, str(event)])


def read_csv(path: PathLike) -> SequenceDatabase:
    """Read a database written by :func:`write_csv`."""
    rows_by_trace: Dict[int, List[tuple]] = {}
    with Path(path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"trace_id", "position", "event"}
        if reader.fieldnames is None or not required.issubset(set(reader.fieldnames)):
            raise DataFormatError(
                f"CSV trace file must have columns {sorted(required)}, got {reader.fieldnames}"
            )
        for row in reader:
            try:
                trace_id = int(row["trace_id"])
                position = int(row["position"])
            except (TypeError, ValueError) as error:
                raise DataFormatError(f"invalid CSV trace row: {row!r}") from error
            rows_by_trace.setdefault(trace_id, []).append((position, row["event"]))
    database = SequenceDatabase()
    for trace_id in sorted(rows_by_trace):
        events = [event for _, event in sorted(rows_by_trace[trace_id])]
        database.add(events, name=f"trace-{trace_id}")
    return database


# ---------------------------------------------------------------------- #
# Format dispatch
# ---------------------------------------------------------------------- #
_WRITERS = {"text": write_text, "jsonl": write_jsonl, "csv": write_csv}
_READERS = {"text": read_text, "jsonl": read_jsonl, "csv": read_csv}
_SUFFIX_TO_FORMAT = {".txt": "text", ".trace": "text", ".jsonl": "jsonl", ".csv": "csv"}


def _format_for(path: PathLike, explicit: Optional[str]) -> str:
    if explicit is not None:
        if explicit not in _WRITERS:
            raise DataFormatError(f"unknown trace format {explicit!r}")
        return explicit
    suffix = Path(path).suffix.lower()
    if suffix in _SUFFIX_TO_FORMAT:
        return _SUFFIX_TO_FORMAT[suffix]
    raise DataFormatError(
        f"cannot infer trace format from suffix {suffix!r}; pass format= explicitly"
    )


def write_traces(database: SequenceDatabase, path: PathLike, format: Optional[str] = None) -> None:
    """Write ``database`` to ``path`` in the given (or inferred) format."""
    _WRITERS[_format_for(path, format)](database, path)


def read_traces(path: PathLike, format: Optional[str] = None) -> SequenceDatabase:
    """Read a trace database from ``path`` in the given (or inferred) format."""
    return _READERS[_format_for(path, format)](path)
