"""Method-call event model for program traces.

The paper's traces are sequences of method invocations such as
``TxManager.begin`` or ``SecAssoc.getPrincipal()``.  The miners only care
about opaque event labels, but the trace framework, the MSC-style chart
builder and the JBoss simulations benefit from knowing the ``class`` /
``method`` split, which this small value type provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import DataFormatError


@dataclass(frozen=True)
class MethodCallEvent:
    """A single method invocation event: ``class_name.method_name``."""

    class_name: str
    method_name: str

    @property
    def label(self) -> str:
        """The flat label used by the miners, e.g. ``"TxManager.begin"``."""
        return f"{self.class_name}.{self.method_name}"

    def __str__(self) -> str:
        return self.label

    @classmethod
    def parse(cls, label: str) -> "MethodCallEvent":
        """Parse a label of the form ``Class.method`` (trailing ``()`` is tolerated)."""
        text = label.strip()
        if text.endswith("()"):
            text = text[:-2]
        if "." not in text:
            raise DataFormatError(
                f"cannot parse method-call event {label!r}: expected 'Class.method'"
            )
        class_name, _, method_name = text.rpartition(".")
        if not class_name or not method_name:
            raise DataFormatError(
                f"cannot parse method-call event {label!r}: empty class or method name"
            )
        return cls(class_name=class_name, method_name=method_name)


def event_label(class_name: str, method_name: str) -> str:
    """Build the flat ``Class.method`` label used throughout the library."""
    return MethodCallEvent(class_name, method_name).label


def split_label(label: str) -> MethodCallEvent:
    """Alias of :meth:`MethodCallEvent.parse` reading slightly better at call sites."""
    return MethodCallEvent.parse(label)
