"""Run-time instrumentation of Python objects.

The paper instruments JBoss with JBoss-AOP so that every method invocation on
the components of interest is logged.  The Python equivalent provided here is
a light-weight dynamic proxy: :func:`instrument` wraps any object so that
every public method call is recorded into a :class:`~repro.traces.trace.TraceCollector`
before being delegated to the real object.  Return values are wrapped too
when requested, so call chains across collaborating objects (the normal case
in the JBoss simulations) end up in a single trace.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Set

from .trace import TraceCollector


class InstrumentedProxy:
    """A dynamic proxy recording public method calls on the wrapped object."""

    _PROXY_ATTRIBUTES = {
        "_target",
        "_collector",
        "_class_name",
        "_wrap_results",
        "_excluded",
    }

    def __init__(
        self,
        target: Any,
        collector: TraceCollector,
        class_name: Optional[str] = None,
        wrap_results: bool = False,
        excluded_methods: Optional[Iterable[str]] = None,
    ) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_collector", collector)
        object.__setattr__(self, "_class_name", class_name or type(target).__name__)
        object.__setattr__(self, "_wrap_results", wrap_results)
        object.__setattr__(self, "_excluded", set(excluded_methods or ()))

    # ------------------------------------------------------------------ #
    # Attribute interception
    # ------------------------------------------------------------------ #
    def __getattr__(self, name: str) -> Any:
        target = object.__getattribute__(self, "_target")
        attribute = getattr(target, name)
        if name.startswith("_") or name in object.__getattribute__(self, "_excluded"):
            return attribute
        if not callable(attribute):
            return attribute
        return self._wrap_method(name, attribute)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in self._PROXY_ATTRIBUTES:
            object.__setattr__(self, name, value)
        else:
            setattr(object.__getattribute__(self, "_target"), name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InstrumentedProxy({object.__getattribute__(self, '_target')!r})"

    # ------------------------------------------------------------------ #
    # Method wrapping
    # ------------------------------------------------------------------ #
    def _wrap_method(self, name: str, method: Callable[..., Any]) -> Callable[..., Any]:
        collector: TraceCollector = object.__getattribute__(self, "_collector")
        class_name: str = object.__getattribute__(self, "_class_name")
        wrap_results: bool = object.__getattribute__(self, "_wrap_results")

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            collector.record_call(class_name, name)
            result = method(*args, **kwargs)
            if wrap_results and _is_instrumentable(result):
                return InstrumentedProxy(result, collector, wrap_results=True)
            return result

        wrapper.__name__ = name
        return wrapper


def _is_instrumentable(value: Any) -> bool:
    """Whether a returned value is worth wrapping in a proxy of its own."""
    if value is None:
        return False
    if isinstance(value, (bool, int, float, str, bytes, tuple, list, dict, set, frozenset)):
        return False
    return hasattr(value, "__class__") and not isinstance(value, type)


def instrument(
    target: Any,
    collector: TraceCollector,
    class_name: Optional[str] = None,
    wrap_results: bool = False,
    excluded_methods: Optional[Set[str]] = None,
) -> InstrumentedProxy:
    """Wrap ``target`` so its public method calls are recorded into ``collector``.

    Parameters
    ----------
    target:
        The object to instrument.
    collector:
        The trace collector receiving ``Class.method`` events.
    class_name:
        Override for the class-name part of the recorded labels (defaults to
        ``type(target).__name__``).
    wrap_results:
        When ``True``, objects returned by instrumented methods are wrapped
        into proxies as well, so whole call chains are traced.
    excluded_methods:
        Method names that should be delegated without being recorded.
    """
    return InstrumentedProxy(
        target,
        collector,
        class_name=class_name,
        wrap_results=wrap_results,
        excluded_methods=excluded_methods,
    )
