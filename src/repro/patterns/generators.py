"""Mining *generators* of iterative patterns (Section 8, future work).

The paper's future-work section proposes mining generators: minimal members
of the equivalence classes of frequent patterns.  Operationally (and dually
to the single-insertion closedness check) a frequent pattern ``P`` is a
**generator** when no pattern obtained from ``P`` by deleting a single event
has the same support.  Pairing generators (minimal pre-conditions) with
closed patterns (maximal post-conditions) yields rules with minimal premises
and maximal consequents, which is exactly how
:func:`propose_generator_rules` combines the two sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core.events import EventLabel
from ..core.instances import find_instances
from ..core.pattern import is_proper_subsequence
from ..core.sequence import SequenceDatabase
from .config import IterativeMiningConfig
from .full_miner import FullIterativePatternMiner
from .result import MinedPattern, PatternMiningResult


def _single_deletions(pattern: Tuple[EventLabel, ...]) -> Iterable[Tuple[EventLabel, ...]]:
    """All distinct patterns obtained by deleting exactly one event."""
    seen = set()
    for index in range(len(pattern)):
        candidate = pattern[:index] + pattern[index + 1 :]
        if candidate and candidate not in seen:
            seen.add(candidate)
            yield candidate


class GeneratorPatternMiner:
    """Mine generator iterative patterns.

    The miner first obtains the full frequent set (reusing
    :class:`~repro.patterns.full_miner.FullIterativePatternMiner`) and then
    keeps the patterns none of whose single-event deletions has the same
    support.  Deletion supports are computed with the exact instance oracle
    and memoised, because a deletion of a frequent pattern need not itself be
    frequent (instance support is not anti-monotone under deletion).
    """

    def __init__(self, config: IterativeMiningConfig) -> None:
        self.config = config

    def mine(self, database: SequenceDatabase) -> PatternMiningResult:
        full = FullIterativePatternMiner(self.config).mine(database)
        return self.filter_generators(database, full)

    def filter_generators(
        self, database: SequenceDatabase, frequent: PatternMiningResult
    ) -> PatternMiningResult:
        """Keep only generator patterns from an existing frequent-pattern result."""
        encoded = database.encoded
        known_support: Dict[Tuple[EventLabel, ...], int] = {
            pattern.events: pattern.support for pattern in frequent.patterns
        }
        oracle_cache: Dict[Tuple[EventLabel, ...], int] = {}

        def support_of(events: Tuple[EventLabel, ...]) -> int:
            if events in known_support:
                return known_support[events]
            if events not in oracle_cache:
                encoded_pattern = database.vocabulary.encode(events)
                oracle_cache[events] = len(find_instances(encoded, encoded_pattern))
            return oracle_cache[events]

        result = PatternMiningResult(
            stats=frequent.stats, min_support=frequent.min_support, closed_only=False
        )
        for pattern in frequent.patterns:
            is_generator = all(
                support_of(deletion) != pattern.support
                for deletion in _single_deletions(pattern.events)
            )
            if is_generator:
                result.patterns.append(pattern)
            else:
                result.stats.bump("pruned_generator")
        return result


def mine_generators(
    database: SequenceDatabase, min_support: float = 2.0, **kwargs: object
) -> PatternMiningResult:
    """Convenience wrapper: mine generator iterative patterns."""
    config = IterativeMiningConfig(min_support=min_support, **kwargs)  # type: ignore[arg-type]
    return GeneratorPatternMiner(config).mine(database)


def propose_generator_rules(
    generators: PatternMiningResult, closed: PatternMiningResult
) -> List[Tuple[MinedPattern, MinedPattern]]:
    """Pair generators with closed patterns of the same support (future work).

    Each returned pair ``(generator, closed_pattern)`` satisfies: the
    generator is a proper subsequence of the closed pattern and both have the
    same support — giving a candidate rule with a minimal pre-condition and a
    maximal post-condition, as sketched in Section 8 of the paper.
    """
    pairs: List[Tuple[MinedPattern, MinedPattern]] = []
    closed_by_support: Dict[int, List[MinedPattern]] = {}
    for pattern in closed.patterns:
        closed_by_support.setdefault(pattern.support, []).append(pattern)
    for generator in generators.patterns:
        for candidate in closed_by_support.get(generator.support, []):
            if is_proper_subsequence(generator.events, candidate.events):
                pairs.append((generator, candidate))
    return pairs
