"""Mining the *closed* set of frequent iterative patterns (Section 4).

A frequent pattern is emitted only when it is closed per Definition 4.2 —
no single-event forward, backward or infix extension has the same support
with full instance correspondence.  Non-closed patterns are still grown
(their subtrees can contain closed descendants) but are not part of the
output, which is what collapses the result size by orders of magnitude in
the paper's Figure 1(b).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.blocks import InstanceBlock
from ..core.events import EncodedDatabase, EventId
from ..core.positions import PositionIndex
from ..core.projection import AlphabetIndex
from ..core.sequence import SequenceDatabase
from ..engine import ExecutionBackend
from .closure import is_closed_block
from .config import IterativeMiningConfig
from .miner_base import IterativePatternMinerBase
from .result import PatternMiningResult


class ClosedIterativePatternMiner(IterativePatternMinerBase):
    """Depth-first miner emitting only closed frequent iterative patterns.

    Example
    -------
    >>> from repro import SequenceDatabase
    >>> db = SequenceDatabase.from_sequences([
    ...     ["lock", "use", "unlock", "lock", "unlock"],
    ...     ["lock", "read", "unlock"],
    ... ])
    >>> miner = ClosedIterativePatternMiner(IterativeMiningConfig(min_support=3))
    >>> sorted(p.events for p in miner.mine(db))
    [('lock', 'unlock')]
    """

    closed_only = True

    def _should_emit(
        self,
        encoded: EncodedDatabase,
        index: PositionIndex,
        node: AlphabetIndex,
        block: InstanceBlock,
        extensions: Dict[EventId, InstanceBlock],
    ) -> bool:
        max_length = self.config.max_pattern_length
        if max_length is not None and len(node.pattern) >= max_length:
            # Closedness is judged relative to the explored pattern space:
            # every single-event extension of a cap-length pattern lies
            # outside it, so cap-length frequent patterns are emitted.
            return True
        return is_closed_block(
            encoded,
            index,
            node,
            block,
            extensions,
            check_infix=self.config.check_infix_extensions,
        )


def mine_closed_patterns(
    database: SequenceDatabase,
    min_support: float = 2.0,
    backend: Optional[ExecutionBackend] = None,
    **kwargs: object,
) -> PatternMiningResult:
    """Convenience wrapper: mine the closed set of frequent iterative patterns.

    ``backend`` selects the execution backend (serial by default); the
    remaining keyword arguments are forwarded to
    :class:`~repro.patterns.config.IterativeMiningConfig`.
    """
    config = IterativeMiningConfig(min_support=min_support, **kwargs)  # type: ignore[arg-type]
    return ClosedIterativePatternMiner(config).mine(database, backend=backend)
