"""Mining the *closed* set of frequent iterative patterns (Section 4).

A frequent pattern is emitted only when it is closed per Definition 4.2 —
no single-event forward, backward or infix extension has the same support
with full instance correspondence.  Non-closed patterns are still grown
(their subtrees can contain closed descendants) but are not part of the
output, which is what collapses the result size by orders of magnitude in
the paper's Figure 1(b).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.blocks import InstanceBlock
from ..core.events import EventId
from ..core.sequence import SequenceDatabase
from ..core.projection import AlphabetIndex, backward_extension_events_block
from ..engine import ExecutionBackend, WorkUnit
from .closure import forward_closure_violation, infix_closure_violation_block
from .config import IterativeMiningConfig
from .miner_base import (
    VERIFY_UNIT,
    IterativePatternMinerBase,
    PatternRecord,
    PatternSearchContext,
    PendingClosure,
)
from .result import PatternMiningResult


class ClosedIterativePatternMiner(IterativePatternMinerBase):
    """Depth-first miner emitting only closed frequent iterative patterns.

    Example
    -------
    >>> from repro import SequenceDatabase
    >>> db = SequenceDatabase.from_sequences([
    ...     ["lock", "use", "unlock", "lock", "unlock"],
    ...     ["lock", "read", "unlock"],
    ... ])
    >>> miner = ClosedIterativePatternMiner(IterativeMiningConfig(min_support=3))
    >>> sorted(p.events for p in miner.mine(db))
    [('lock', 'unlock')]
    """

    closed_only = True

    def _emit(
        self,
        context: PatternSearchContext,
        node: AlphabetIndex,
        block: InstanceBlock,
        extensions: Dict[EventId, InstanceBlock],
        stats: "Any",
        splitter: Any,
        records: List[object],
    ) -> None:
        """Closure-check sharding: free forward test inline, rest offloadable.

        The forward violation test reuses the extension blocks the growth
        step just computed, so it always runs in place.  The backward scan
        and the infix oracle are the expensive tail; when the splitter
        reports a hungry pool and the block is heavy enough, they leave as
        a ``verify`` unit with the block length as cost hint, and the
        pattern is emitted pending that unit's verdict.
        """
        pattern = node.pattern
        max_length = self.config.max_pattern_length
        if max_length is not None and len(pattern) >= max_length:
            # Closedness is judged relative to the explored pattern space:
            # every single-event extension of a cap-length pattern lies
            # outside it, so cap-length frequent patterns are emitted.
            stats.emitted += 1
            records.append(
                PatternRecord(pattern, len(block), self._keep_instances(block))
            )
            return
        if forward_closure_violation(extensions, len(block)) is not None:
            stats.pruned_closure += 1
            return
        if splitter.should_offload(len(block)):
            records.append(
                PendingClosure(pattern, len(block), self._keep_instances(block))
            )
            splitter.submit([WorkUnit(VERIFY_UNIT, pattern[0], pattern, len(block))])
            stats.bump("closure_offloads")
            return
        if self._verify_deferred_closure(context, node, block):
            stats.emitted += 1
            records.append(
                PatternRecord(pattern, len(block), self._keep_instances(block))
            )
        else:
            stats.pruned_closure += 1

    def _verify_deferred_closure(
        self, context: PatternSearchContext, node: AlphabetIndex, block: InstanceBlock
    ) -> bool:
        """The offloadable closure tail: backward scan plus infix oracle."""
        if backward_extension_events_block(context.encoded, context.index, node, block):
            return False
        if (
            self.config.check_infix_extensions
            and infix_closure_violation_block(
                context.encoded, context.index, node, block
            )
            is not None
        ):
            return False
        return True


def mine_closed_patterns(
    database: SequenceDatabase,
    min_support: float = 2.0,
    backend: Optional[ExecutionBackend] = None,
    **kwargs: object,
) -> PatternMiningResult:
    """Convenience wrapper: mine the closed set of frequent iterative patterns.

    ``backend`` selects the execution backend (serial by default); the
    remaining keyword arguments are forwarded to
    :class:`~repro.patterns.config.IterativeMiningConfig`.
    """
    config = IterativeMiningConfig(min_support=min_support, **kwargs)  # type: ignore[arg-type]
    return ClosedIterativePatternMiner(config).mine(database, backend=backend)
