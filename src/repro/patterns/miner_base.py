"""Shared depth-first search used by the full and closed iterative-pattern miners.

The search grows patterns by forward extension only.  This is complete
because prefixes of frequent patterns are frequent (Theorem 1 — the apriori
property — which holds because truncating every instance of ``P`` to its
first ``k`` events yields distinct instances of ``P``'s length-``k`` prefix).
Each frequent pattern is therefore reached exactly once, along the chain of
its own prefixes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.events import EventId
from ..core.instances import PatternInstance
from ..core.positions import PositionIndex
from ..core.projection import forward_extensions, singleton_instances
from ..core.sequence import SequenceDatabase
from ..core.stats import MiningStats
from .config import IterativeMiningConfig
from .result import MinedPattern, PatternMiningResult


class IterativePatternMinerBase:
    """Template-method base class for the iterative-pattern miners."""

    closed_only = False

    def __init__(self, config: IterativeMiningConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def mine(self, database: SequenceDatabase) -> PatternMiningResult:
        """Mine the database and return all emitted patterns."""
        stats = MiningStats()
        stats.start()
        result = PatternMiningResult(stats=stats, closed_only=self.closed_only)
        result.min_support = database.absolute_support(self.config.min_support)

        encoded = database.encoded
        index = PositionIndex(encoded)
        self._prepare(encoded, index, result)

        singletons = singleton_instances(encoded)
        for event in sorted(singletons):
            instances = singletons[event]
            if len(instances) < result.min_support:
                stats.pruned_support += 1
                continue
            self._grow(database, encoded, index, (event,), instances, result)

        stats.stop()
        return result

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def _prepare(
        self,
        encoded: List[Tuple[EventId, ...]],
        index: PositionIndex,
        result: PatternMiningResult,
    ) -> None:
        """Hook called once before the search starts."""

    def _should_emit(
        self,
        encoded: List[Tuple[EventId, ...]],
        index: PositionIndex,
        pattern: Tuple[EventId, ...],
        instances: List[PatternInstance],
        extensions: Dict[EventId, List[PatternInstance]],
        result: PatternMiningResult,
    ) -> bool:
        """Decide whether the current frequent pattern is part of the output."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _grow(
        self,
        database: SequenceDatabase,
        encoded: List[Tuple[EventId, ...]],
        index: PositionIndex,
        pattern: Tuple[EventId, ...],
        instances: List[PatternInstance],
        result: PatternMiningResult,
    ) -> None:
        stats = result.stats
        stats.visited += 1

        extensions = forward_extensions(encoded, index, pattern, instances)

        if self._should_emit(encoded, index, pattern, instances, extensions, result):
            self._emit(database, pattern, instances, result)
        else:
            stats.pruned_closure += 1

        if (
            self.config.max_pattern_length is not None
            and len(pattern) >= self.config.max_pattern_length
        ):
            return

        explore = sorted(extensions)
        if self.config.adjacent_absorption_pruning:
            absorbed = self._adjacent_absorbing_event(encoded, instances)
            if (
                absorbed is not None
                and absorbed in extensions
                and len(extensions[absorbed]) == len(instances)
            ):
                stats.bump("absorption_pruned_branches", len(extensions) - 1)
                explore = [absorbed]

        for event in explore:
            extension_instances = extensions[event]
            if len(extension_instances) < result.min_support:
                stats.pruned_support += 1
                continue
            self._grow(
                database,
                encoded,
                index,
                pattern + (event,),
                extension_instances,
                result,
            )

    @staticmethod
    def _adjacent_absorbing_event(
        encoded: List[Tuple[EventId, ...]], instances: List[PatternInstance]
    ) -> "EventId | None":
        """The event immediately following *every* instance, if one exists.

        When such an event exists, every instance forward-extends with it at
        the adjacent position, so restricting the search to that extension
        follows the deterministic continuation of the pattern (see
        ``IterativeMiningConfig.adjacent_absorption_pruning``).
        """
        absorbing: "EventId | None" = None
        for instance in instances:
            sequence = encoded[instance.sequence_index]
            next_position = instance.end + 1
            if next_position >= len(sequence):
                return None
            event = sequence[next_position]
            if absorbing is None:
                absorbing = event
            elif absorbing != event:
                return None
        return absorbing

    def _emit(
        self,
        database: SequenceDatabase,
        pattern: Tuple[EventId, ...],
        instances: List[PatternInstance],
        result: PatternMiningResult,
    ) -> None:
        result.stats.emitted += 1
        labels = database.vocabulary.decode(pattern)
        kept_instances = tuple(instances) if self.config.collect_instances else ()
        result.patterns.append(
            MinedPattern(events=labels, support=len(instances), instances=kept_instances)
        )
