"""Shared depth-first search used by the full and closed iterative-pattern miners.

The search grows patterns by forward extension only.  This is complete
because prefixes of frequent patterns are frequent (Theorem 1 — the apriori
property — which holds because truncating every instance of ``P`` to its
first ``k`` events yields distinct instances of ``P``'s length-``k`` prefix).
Each frequent pattern is therefore reached exactly once, along the chain of
its own prefixes.

Instance lists travel the search as columnar
:class:`~repro.core.blocks.InstanceBlock` values: flat int columns instead
of per-instance tuples, so the inner projection loops allocate nothing per
instance and shard results pickle as a few buffers.  Each search node builds
one :class:`~repro.core.projection.AlphabetIndex` — the node's shared
``frozenset(pattern)`` plus merged per-sequence alphabet-occurrence lists —
which the forward projection, the backward closure scan and the infix check
all share instead of rebuilding per call.

The search is *root-parallel*: the subtree below each frequent singleton is
independent of every other subtree, so the miners implement the engine's
miner protocol (``build_context`` / ``plan_roots`` / ``mine_root``) and let
an :class:`~repro.engine.backend.ExecutionBackend` decide whether the roots
run serially in-process (the default) or fan out to a worker pool.  Either
way the merged output is bit-identical.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from ..core.blocks import InstanceBlock
from ..core.events import EncodedDatabase, EventId
from ..core.positions import PositionIndex
from ..core.projection import AlphabetIndex, forward_extensions_block, singleton_blocks
from ..core.sequence import SequenceDatabase, absolute_support
from ..core.stats import MiningStats
from ..engine import (
    ExecutionBackend,
    LazyIndexContext,
    PlanResult,
    SerialBackend,
    ShardRunner,
    plan_weighted_roots,
    run_sharded,
)
from .config import IterativeMiningConfig
from .result import MinedPattern, PatternMiningResult


class PatternRecord(NamedTuple):
    """An emitted pattern in encoded (event-id) form, as produced by workers.

    ``instances`` carries the columnar block when instance collection is on
    (``None`` otherwise); the coordinator decodes it to
    :class:`~repro.core.instances.PatternInstance` tuples, so the block form
    only exists on the mining path and the worker-to-coordinator wire.
    """

    pattern: Tuple[EventId, ...]
    support: int
    instances: Optional[InstanceBlock]


class PatternSearchContext(LazyIndexContext):
    """Per-run search state, built once per process by the engine.

    The index and the singleton instance blocks are materialised lazily:
    the coordinating process only plans (a counts-only pass), so only the
    processes that actually mine pay for them — each exactly once,
    reused across all the shards that process executes.
    """

    __slots__ = ("min_support", "_singletons")

    def __init__(self, encoded: EncodedDatabase, min_support: int) -> None:
        super().__init__(encoded)
        self.min_support = min_support
        self._singletons: Optional[Dict[EventId, InstanceBlock]] = None

    @property
    def singletons(self) -> Dict[EventId, InstanceBlock]:
        if self._singletons is None:
            self._singletons = singleton_blocks(self.encoded)
        return self._singletons


class IterativePatternMinerBase:
    """Template-method base class for the iterative-pattern miners."""

    closed_only = False

    def __init__(
        self, config: IterativeMiningConfig, backend: Optional[ExecutionBackend] = None
    ) -> None:
        self.config = config
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def mine(
        self, database: SequenceDatabase, backend: Optional[ExecutionBackend] = None
    ) -> PatternMiningResult:
        """Mine the database and return all emitted patterns.

        ``backend`` (or the instance-level backend passed to the
        constructor) selects where the search runs; the result does not
        depend on the choice.
        """
        stats = MiningStats()
        stats.start()
        result = PatternMiningResult(stats=stats, closed_only=self.closed_only)
        result.min_support = database.absolute_support(self.config.min_support)

        chosen = backend or self.backend or SerialBackend()
        runner = ShardRunner(self, database.encoded)
        records, search_stats = run_sharded(chosen, runner)
        stats.merge_counters(search_stats)

        vocabulary = database.vocabulary
        for record in records:
            result.patterns.append(
                MinedPattern(
                    events=vocabulary.decode(record.pattern),
                    support=record.support,
                    instances=(
                        record.instances.to_tuple() if record.instances is not None else ()
                    ),
                )
            )

        stats.stop()
        return result

    # ------------------------------------------------------------------ #
    # Engine miner protocol
    # ------------------------------------------------------------------ #
    def build_context(
        self, encoded: EncodedDatabase, extras: Dict[str, Any]
    ) -> PatternSearchContext:
        """Build the per-process search context (lazy index + singleton cache)."""
        return PatternSearchContext(
            encoded=encoded,
            min_support=absolute_support(self.config.min_support, len(encoded)),
        )

    def plan_roots(self, context: PatternSearchContext) -> PlanResult:
        """Frequent singletons, weighted by instance count for shard packing.

        A counts-only database pass: occurrence counts equal singleton
        instance counts, so the coordinator never materialises the
        per-event instance blocks the workers will build for themselves.
        """
        counts: Counter = Counter()
        for sequence in context.encoded:
            counts.update(sequence)
        return plan_weighted_roots(counts, context.min_support)

    def mine_root(
        self, context: PatternSearchContext, root: EventId, stats: MiningStats
    ) -> List[PatternRecord]:
        """Mine the subtree rooted at the singleton ``<root>``."""
        records: List[PatternRecord] = []
        root_node = AlphabetIndex(context.index, (root,))
        self._grow(context, (root,), context.singletons[root], records, stats, root_node)
        return records

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def _should_emit(
        self,
        encoded: EncodedDatabase,
        index: PositionIndex,
        node: AlphabetIndex,
        block: InstanceBlock,
        extensions: Dict[EventId, InstanceBlock],
    ) -> bool:
        """Decide whether the current frequent pattern is part of the output.

        ``node`` is the search node's shared alphabet cache; its ``pattern``
        attribute is the pattern under test.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _grow(
        self,
        context: PatternSearchContext,
        pattern: Tuple[EventId, ...],
        block: InstanceBlock,
        records: List[PatternRecord],
        stats: MiningStats,
        node: AlphabetIndex,
    ) -> None:
        encoded = context.encoded
        index = context.index
        stats.visited += 1

        # ``node`` is this search node's shared boundary cache: every
        # projection and closure query reuses the same frozenset(pattern)
        # and merged alphabet-occurrence lists, derived incrementally from
        # the parent node's cache.
        extensions = forward_extensions_block(encoded, index, node, block)
        for extension_block in extensions.values():
            stats.instances_materialized += len(extension_block)

        if self._should_emit(encoded, index, node, block, extensions):
            stats.emitted += 1
            kept = block if self.config.collect_instances else None
            records.append(PatternRecord(pattern, len(block), kept))
        else:
            stats.pruned_closure += 1

        if (
            self.config.max_pattern_length is not None
            and len(pattern) >= self.config.max_pattern_length
        ):
            return

        explore = sorted(extensions)
        if self.config.adjacent_absorption_pruning:
            absorbed = self._adjacent_absorbing_event(encoded, block)
            if (
                absorbed is not None
                and absorbed in extensions
                and len(extensions[absorbed]) == len(block)
            ):
                stats.bump("absorption_pruned_branches", len(extensions) - 1)
                explore = [absorbed]

        for event in explore:
            extension_block = extensions[event]
            if len(extension_block) < context.min_support:
                stats.pruned_support += 1
                continue
            self._grow(
                context, pattern + (event,), extension_block, records, stats, node.extend(event)
            )

    @staticmethod
    def _adjacent_absorbing_event(
        encoded: EncodedDatabase, block: InstanceBlock
    ) -> "EventId | None":
        """The event immediately following *every* instance, if one exists.

        When such an event exists, every instance forward-extends with it at
        the adjacent position, so restricting the search to that extension
        follows the deterministic continuation of the pattern (see
        ``IterativeMiningConfig.adjacent_absorption_pruning``).
        """
        absorbing: "EventId | None" = None
        ends = block.ends
        for sid, lo, hi in block.groups():
            sequence = encoded[sid]
            sequence_len = len(sequence)
            for row in range(lo, hi):
                next_position = ends[row] + 1
                if next_position >= sequence_len:
                    return None
                event = sequence[next_position]
                if absorbing is None:
                    absorbing = event
                elif absorbing != event:
                    return None
        return absorbing
