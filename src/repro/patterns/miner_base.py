"""Shared depth-first search used by the full and closed iterative-pattern miners.

The search grows patterns by forward extension only.  This is complete
because prefixes of frequent patterns are frequent (Theorem 1 — the apriori
property — which holds because truncating every instance of ``P`` to its
first ``k`` events yields distinct instances of ``P``'s length-``k`` prefix).
Each frequent pattern is therefore reached exactly once, along the chain of
its own prefixes.

Instance lists travel the search as columnar
:class:`~repro.core.blocks.InstanceBlock` values: flat int columns instead
of per-instance tuples, so the inner projection loops allocate nothing per
instance and shard results pickle as a few buffers.  Each search node builds
one :class:`~repro.core.projection.AlphabetIndex` — the node's shared
``frozenset(pattern)`` plus merged per-sequence alphabet-occurrence lists —
which the forward projection, the backward closure scan and the infix check
all share instead of rebuilding per call.

The search is *root-parallel* and *unit-shardable*: the subtree below each
frequent singleton is independent of every other subtree, and any frontier
node inside a subtree can itself be carved off as a
:class:`~repro.engine.sharding.WorkUnit` keyed by its ``(root, split-path)``
and re-derived elsewhere by replaying projections along the path.  The
miners implement the engine's protocol (``build_context`` / ``plan_roots``
/ ``mine_root`` for the static shard path, ``initial_units`` /
``mine_unit`` / ``resolve_units`` for the work-stealing path) and let an
:class:`~repro.engine.backend.ExecutionBackend` decide where the search
runs.  Either way the merged output is bit-identical: the serial
depth-first emission order equals the ascending lexicographic order of the
emitted patterns, so sorting records by pattern reassembles it exactly.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from ..core.blocks import InstanceBlock, WireInstanceBlock
from ..core.errors import ConfigurationError
from ..core.events import EncodedDatabase, EventId
from ..core.positions import PositionIndex
from ..core.projection import (
    AlphabetIndex,
    forward_extensions_block,
    project_extension_block,
    singleton_blocks,
)
from ..core.sequence import SequenceDatabase, absolute_support
from ..core.stats import MiningStats
from ..engine import (
    NULL_SPLITTER,
    ExecutionBackend,
    LazyIndexContext,
    PlanResult,
    SerialBackend,
    ShardRunner,
    UnitOutcome,
    WorkUnit,
    plan_weighted_roots,
    run_sharded,
)
from ..engine.stealing import FrontierFrame, drive_split_subtree
from .config import IterativeMiningConfig
from .result import MinedPattern, PatternMiningResult

#: Work-unit kinds of the pattern search: ``grow`` mines a whole subtree,
#: ``verify`` runs one node's deferred closure check.
GROW_UNIT = "grow"
VERIFY_UNIT = "verify"


class PatternRecord(NamedTuple):
    """An emitted pattern in encoded (event-id) form, as produced by workers.

    ``instances`` carries the columnar wire block (no ``ends`` column) when
    instance collection is on (``None`` otherwise); the coordinator decodes
    it to :class:`~repro.core.instances.PatternInstance` tuples, so the
    block form only exists on the mining path and the
    worker-to-coordinator wire.
    """

    pattern: Tuple[EventId, ...]
    support: int
    instances: Optional[WireInstanceBlock]


class PendingClosure(NamedTuple):
    """A frequent pattern whose closure check was offloaded to a verify unit.

    The grow worker already ran the free forward check; the matching
    ``verify`` unit reports the backward/infix verdict and
    ``resolve_units`` turns the pair into a :class:`PatternRecord` (or
    drops it) on the coordinator.
    """

    pattern: Tuple[EventId, ...]
    support: int
    instances: Optional[WireInstanceBlock]


class ClosureVerdict(NamedTuple):
    """The outcome of a deferred closure check for one pattern."""

    pattern: Tuple[EventId, ...]
    closed: bool


class PatternSearchContext(LazyIndexContext):
    """Per-run search state, built once per process by the engine.

    The index and the singleton instance blocks are materialised lazily:
    the coordinating process only plans (a counts-only pass), so only the
    processes that actually mine pay for them — each exactly once,
    reused across all the shards that process executes.
    """

    __slots__ = ("min_support", "_singletons")

    def __init__(self, encoded: EncodedDatabase, min_support: int) -> None:
        super().__init__(encoded)
        self.min_support = min_support
        self._singletons: Optional[Dict[EventId, InstanceBlock]] = None

    @property
    def singletons(self) -> Dict[EventId, InstanceBlock]:
        if self._singletons is None:
            self._singletons = singleton_blocks(self.encoded)
        return self._singletons

    def absorb_appended(self, new_sequences: Any) -> None:
        """Extend the live index with appended sequences (incremental path).

        The singleton block cache is invalidated rather than extended: it
        is rebuilt lazily from the grown database on next use, while the
        position index — the expensive part — grows in place.
        """
        super().absorb_appended(new_sequences)
        self._singletons = None


class IterativePatternMinerBase:
    """Template-method base class for the iterative-pattern miners."""

    closed_only = False

    def __init__(
        self, config: IterativeMiningConfig, backend: Optional[ExecutionBackend] = None
    ) -> None:
        self.config = config
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def mine(
        self, database: SequenceDatabase, backend: Optional[ExecutionBackend] = None
    ) -> PatternMiningResult:
        """Mine the database and return all emitted patterns.

        ``backend`` (or the instance-level backend passed to the
        constructor) selects where the search runs; the result does not
        depend on the choice.
        """
        stats = MiningStats()
        stats.start()

        chosen = backend or self.backend or SerialBackend()
        runner = ShardRunner(self, database.encoded, self.runner_extras(database))
        records, search_stats = run_sharded(chosen, runner)
        stats.merge_counters(search_stats)

        result = self.collect_result(database, records, stats)
        stats.stop()
        return result

    def collect_result(
        self,
        database: SequenceDatabase,
        records: List["PatternRecord"],
        stats: MiningStats,
    ) -> PatternMiningResult:
        """Decode merged records into the public result (coordinator side).

        Factored out of :meth:`mine` so the incremental miner can rebuild
        a result from cached-plus-fresh records through the exact same
        path a from-scratch mine uses.
        """
        result = PatternMiningResult(stats=stats, closed_only=self.closed_only)
        result.min_support = self.resolved_support_threshold(database)
        vocabulary = database.vocabulary
        encoded = database.encoded
        for record in records:
            result.patterns.append(
                MinedPattern(
                    events=vocabulary.decode(record.pattern),
                    support=record.support,
                    # Wire blocks ship without their ends column; rebuild it
                    # here, on the coordinator, from the pattern itself.
                    instances=(
                        record.instances.to_tuple(encoded, record.pattern)
                        if record.instances is not None
                        else ()
                    ),
                )
            )
        return result

    # ------------------------------------------------------------------ #
    # Incremental mining protocol
    # ------------------------------------------------------------------ #
    def resolved_support_threshold(self, database: SequenceDatabase) -> int:
        """The absolute support threshold against the current database size."""
        return database.absolute_support(self.config.min_support)

    def runner_extras(self, database: SequenceDatabase) -> Dict[str, Any]:
        """Extra per-run state to ship to the engine workers (none here)."""
        return {}

    @staticmethod
    def record_root(record: "PatternRecord") -> EventId:
        """The first-level root that produced ``record`` (its first event)."""
        return record.pattern[0]

    @staticmethod
    def record_sort_key(record: "PatternRecord") -> Tuple[EventId, ...]:
        """The canonical merge key: serial DFS order == pattern order."""
        return record.pattern

    # ------------------------------------------------------------------ #
    # Engine miner protocol
    # ------------------------------------------------------------------ #
    def build_context(
        self, encoded: EncodedDatabase, extras: Dict[str, Any]
    ) -> PatternSearchContext:
        """Build the per-process search context (lazy index + singleton cache)."""
        return PatternSearchContext(
            encoded=encoded,
            min_support=absolute_support(self.config.min_support, len(encoded)),
        )

    def plan_roots(self, context: PatternSearchContext) -> PlanResult:
        """Frequent singletons, weighted by instance count for shard packing.

        A counts-only database pass: occurrence counts equal singleton
        instance counts, so the coordinator never materialises the
        per-event instance blocks the workers will build for themselves.
        """
        counts: Counter = Counter()
        for sequence in context.encoded:
            counts.update(sequence)
        return plan_weighted_roots(counts, context.min_support)

    def mine_root(
        self, context: PatternSearchContext, root: EventId, stats: MiningStats
    ) -> List[PatternRecord]:
        """Mine the subtree rooted at the singleton ``<root>``.

        The static shard path: one grow unit, never split.
        """
        return self.mine_unit(
            context, WorkUnit(GROW_UNIT, root, (root,)), stats, NULL_SPLITTER
        )

    def initial_units(
        self, context: PatternSearchContext, plan: PlanResult
    ) -> List[WorkUnit]:
        """One grow unit per frequent root, weighted by instance count."""
        return [
            WorkUnit(GROW_UNIT, root, (root,), weight) for root, weight in plan.roots
        ]

    def mine_unit(
        self,
        context: PatternSearchContext,
        unit: WorkUnit,
        stats: MiningStats,
        splitter: Any,
    ) -> List[object]:
        """Execute one work unit: mine a subtree or verify one closure."""
        records: List[object] = []
        if unit.kind == VERIFY_UNIT:
            block, node = self._replay(context, unit.path, stats)
            closed = self._verify_deferred_closure(context, node, block)
            if closed:
                stats.emitted += 1
            else:
                stats.pruned_closure += 1
            records.append(ClosureVerdict(unit.path, closed))
            return records
        if unit.kind != GROW_UNIT:
            raise ConfigurationError(f"unknown pattern work-unit kind {unit.kind!r}")
        block, node = self._replay(context, unit.path, stats)

        def visit_child(
            frame: FrontierFrame, event: EventId, child_block: InstanceBlock
        ) -> Optional[FrontierFrame]:
            return self._visit(
                context, child_block, frame.state.extend(event), records, stats, splitter
            )

        drive_split_subtree(
            self._visit(context, block, node, records, stats, splitter),
            visit_child,
            context.min_support,
            splitter,
            stats,
            GROW_UNIT,
        )
        return records

    def resolve_units(self, outcomes: List[UnitOutcome]) -> List[PatternRecord]:
        """Reassemble unit outcomes into the canonical serial record order.

        Deferred closure verdicts are matched back to their pending
        records first; the final sort by encoded pattern reproduces the
        serial depth-first emission order exactly (pre-order over children
        visited in ascending event order *is* lexicographic pattern
        order).
        """
        verdicts: Dict[Tuple[EventId, ...], bool] = {}
        mined: List[object] = []
        for outcome in outcomes:
            for record in outcome.records:
                if isinstance(record, ClosureVerdict):
                    verdicts[record.pattern] = record.closed
                else:
                    mined.append(record)
        resolved: List[PatternRecord] = []
        for record in mined:
            if isinstance(record, PendingClosure):
                if verdicts[record.pattern]:
                    resolved.append(
                        PatternRecord(record.pattern, record.support, record.instances)
                    )
            else:
                resolved.append(record)
        resolved.sort(key=lambda record: record.pattern)
        return resolved

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def _should_emit(
        self,
        encoded: EncodedDatabase,
        index: PositionIndex,
        node: AlphabetIndex,
        block: InstanceBlock,
        extensions: Dict[EventId, InstanceBlock],
    ) -> bool:
        """Decide whether the current frequent pattern is part of the output.

        ``node`` is the search node's shared alphabet cache; its ``pattern``
        attribute is the pattern under test.
        """
        raise NotImplementedError

    def _emit(
        self,
        context: PatternSearchContext,
        node: AlphabetIndex,
        block: InstanceBlock,
        extensions: Dict[EventId, InstanceBlock],
        stats: MiningStats,
        splitter: Any,
        records: List[object],
    ) -> None:
        """Emit (or prune) the current node's pattern.

        The closed miner overrides this to split its closure check into a
        free inline part and an offloadable verify unit; the default keeps
        the one-shot ``_should_emit`` decision.
        """
        if self._should_emit(context.encoded, context.index, node, block, extensions):
            stats.emitted += 1
            records.append(
                PatternRecord(node.pattern, len(block), self._keep_instances(block))
            )
        else:
            stats.pruned_closure += 1

    def _verify_deferred_closure(
        self, context: PatternSearchContext, node: AlphabetIndex, block: InstanceBlock
    ) -> bool:
        """Run the deferred part of a closure check (verify units only)."""
        raise NotImplementedError(
            "only the closed miner offloads closure verification"
        )

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _keep_instances(self, block: InstanceBlock) -> Optional[WireInstanceBlock]:
        """The record payload for ``block``: a wire block, or nothing.

        Wire form drops the ``ends`` column (derivable from the starts and
        the pattern) and shares the remaining columns, so keeping instances
        costs no copy and ships one column less.
        """
        return block.to_wire() if self.config.collect_instances else None

    def _replay(
        self,
        context: PatternSearchContext,
        path: Tuple[EventId, ...],
        stats: MiningStats,
    ) -> Tuple[InstanceBlock, AlphabetIndex]:
        """Re-derive a split node's instance block by replaying its path.

        This is the cost a thief pays for a stolen unit: one targeted
        single-event projection per path step instead of shipping bulky
        intermediate blocks through the queue.  Replayed rows are tracked
        separately from ``instances_materialized`` so the search counters
        stay comparable with the serial run.
        """
        block = context.singletons[path[0]]
        node = AlphabetIndex(context.index, (path[0],))
        for event in path[1:]:
            block = project_extension_block(
                context.encoded, context.index, node, block, event
            )
            node = node.extend(event)
            stats.bump("steal_replayed_rows", len(block))
        return block, node

    def _visit(
        self,
        context: PatternSearchContext,
        block: InstanceBlock,
        node: AlphabetIndex,
        records: List[object],
        stats: MiningStats,
        splitter: Any,
    ) -> Optional[FrontierFrame]:
        """Visit one search node: project, emit, and open its frame.

        ``node`` is this search node's shared boundary cache: every
        projection and closure query reuses the same frozenset(pattern)
        and merged alphabet-occurrence lists, derived incrementally from
        the parent node's cache.
        """
        encoded = context.encoded
        stats.visited += 1
        extensions = forward_extensions_block(encoded, context.index, node, block)
        for extension_block in extensions.values():
            stats.instances_materialized += len(extension_block)

        self._emit(context, node, block, extensions, stats, splitter, records)

        pattern = node.pattern
        if (
            self.config.max_pattern_length is not None
            and len(pattern) >= self.config.max_pattern_length
        ):
            return None

        explore = sorted(extensions)
        if self.config.adjacent_absorption_pruning:
            absorbed = self._adjacent_absorbing_event(encoded, block)
            if (
                absorbed is not None
                and absorbed in extensions
                and len(extensions[absorbed]) == len(block)
            ):
                stats.bump("absorption_pruned_branches", len(extensions) - 1)
                explore = [absorbed]

        return FrontierFrame(pattern, node, extensions, explore)

    @staticmethod
    def _adjacent_absorbing_event(
        encoded: EncodedDatabase, block: InstanceBlock
    ) -> "EventId | None":
        """The event immediately following *every* instance, if one exists.

        When such an event exists, every instance forward-extends with it at
        the adjacent position, so restricting the search to that extension
        follows the deterministic continuation of the pattern (see
        ``IterativeMiningConfig.adjacent_absorption_pruning``).
        """
        absorbing: "EventId | None" = None
        ends = block.ends
        for sid, lo, hi in block.groups():
            sequence = encoded[sid]
            sequence_len = len(sequence)
            for row in range(lo, hi):
                next_position = ends[row] + 1
                if next_position >= sequence_len:
                    return None
                event = sequence[next_position]
                if absorbing is None:
                    absorbing = event
                elif absorbing != event:
                    return None
        return absorbing
