"""Iterative pattern mining (Section 4 of the paper).

Public entry points:

* :class:`FullIterativePatternMiner` / :func:`mine_frequent_patterns` — the
  baseline that emits every frequent iterative pattern;
* :class:`ClosedIterativePatternMiner` / :func:`mine_closed_patterns` — the
  paper's closed-pattern miner;
* :class:`GeneratorPatternMiner` / :func:`mine_generators` — the
  future-work generator miner.
"""

from .closed_miner import ClosedIterativePatternMiner, mine_closed_patterns
from .closure import (
    backward_closure_violation,
    forward_closure_violation,
    infix_closure_violation,
    is_closed,
)
from .config import IterativeMiningConfig
from .full_miner import FullIterativePatternMiner, mine_frequent_patterns
from .generators import GeneratorPatternMiner, mine_generators, propose_generator_rules
from .result import MinedPattern, PatternMiningResult

__all__ = [
    "ClosedIterativePatternMiner",
    "mine_closed_patterns",
    "backward_closure_violation",
    "forward_closure_violation",
    "infix_closure_violation",
    "is_closed",
    "IterativeMiningConfig",
    "FullIterativePatternMiner",
    "mine_frequent_patterns",
    "GeneratorPatternMiner",
    "mine_generators",
    "propose_generator_rules",
    "MinedPattern",
    "PatternMiningResult",
]
