"""Result containers for iterative-pattern mining."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence as TypingSequence, Tuple

from ..core.events import EventLabel
from ..core.instances import PatternInstance
from ..core.pattern import format_pattern, is_subsequence
from ..core.stats import MiningStats


@dataclass(frozen=True)
class MinedPattern:
    """A single mined iterative pattern with its support and (optionally) instances."""

    events: Tuple[EventLabel, ...]
    support: int
    instances: Tuple[PatternInstance, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        return f"{format_pattern(self.events)} (sup={self.support})"

    def is_subpattern_of(self, other: "MinedPattern") -> bool:
        """Whether this pattern is a subsequence of ``other``."""
        return is_subsequence(self.events, other.events)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (instances are omitted)."""
        return {"events": list(self.events), "support": self.support, "length": len(self.events)}


@dataclass
class PatternMiningResult:
    """The outcome of one run of an iterative-pattern miner."""

    patterns: List[MinedPattern] = field(default_factory=list)
    stats: MiningStats = field(default_factory=MiningStats)
    min_support: int = 0
    closed_only: bool = False

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[MinedPattern]:
        return iter(self.patterns)

    def support_of(self, events: TypingSequence[EventLabel]) -> Optional[int]:
        """Support of an exact pattern in the result, or ``None`` if absent."""
        target = tuple(events)
        for pattern in self.patterns:
            if pattern.events == target:
                return pattern.support
        return None

    def contains(self, events: TypingSequence[EventLabel]) -> bool:
        """Whether the exact pattern appears in the result."""
        return self.support_of(events) is not None

    def longest(self) -> Optional[MinedPattern]:
        """The longest mined pattern (ties broken by higher support)."""
        if not self.patterns:
            return None
        return max(self.patterns, key=lambda pattern: (len(pattern.events), pattern.support))

    def sorted_by_support(self, descending: bool = True) -> List[MinedPattern]:
        """Patterns sorted by support (then by length, then lexicographically)."""
        return sorted(
            self.patterns,
            key=lambda pattern: (pattern.support, len(pattern.events), tuple(map(str, pattern.events))),
            reverse=descending,
        )

    def patterns_containing(self, event: EventLabel) -> List[MinedPattern]:
        """All mined patterns whose alphabet contains ``event``."""
        return [pattern for pattern in self.patterns if event in pattern.events]

    def maximal_patterns(self) -> List[MinedPattern]:
        """Patterns that are not subsequences of any other mined pattern."""
        maximal: List[MinedPattern] = []
        for candidate in self.patterns:
            dominated = any(
                candidate is not other and candidate.is_subpattern_of(other)
                for other in self.patterns
            )
            if not dominated:
                maximal.append(candidate)
        return maximal

    def as_rows(self) -> List[Dict[str, object]]:
        """Tabular representation used by the reporting helpers."""
        return [pattern.as_dict() for pattern in self.sorted_by_support()]
