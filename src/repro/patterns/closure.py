"""Closed-pattern checks (Definition 4.2).

A frequent iterative pattern ``P`` is *closed* when no super-sequence ``Q``
exists with the same support such that every instance of ``P`` corresponds to
a unique instance of ``Q``.  Operationally — and this is the check used by
the original work's closed miner and by BIDE-style closed sequential-pattern
miners — it suffices to examine the super-sequences obtained from ``P`` by a
*single event insertion*:

* a **forward extension** ``P ++ <e>``,
* a **backward extension** ``<e> ++ P``,
* an **infix extension** inserting ``e`` into one of the gaps of ``P``.

The forward check is free: the miner already computes the instance lists of
every forward extension while growing the search tree, and ``P ++ <e>`` has
full instance correspondence with ``P`` exactly when every instance of ``P``
extends.  The backward check scans the region to the left of every instance
(``repro.core.projection.backward_extension_events``).  The infix check first
collects candidate events occurring in the gaps of *every* instance (usually
none) and verifies each candidate insertion against the exact instance
semantics.

The checks exist in two forms: the original list-based helpers (kept as the
reference path for tests and benchmarks) and columnar ``*_block`` variants
over :class:`~repro.core.blocks.InstanceBlock`, which share the search
node's :class:`~repro.core.projection.AlphabetIndex` so the per-instance
boundary queries collapse into binary searches on one merged occurrence
list.  The miners run the block variants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence as TypingSequence, Sized, Tuple

from ..core.blocks import InstanceBlock
from ..core.events import EventId
from ..core.instances import (
    PatternInstance,
    find_instances_in_sequence,
    gap_events,
    instances_correspond,
)
from ..core.positions import PositionIndex
from ..core.projection import (
    AlphabetIndex,
    EncodedDatabase,
    backward_extension_events,
    backward_extension_events_block,
    project_rows_in_sequence,
)


def forward_closure_violation(
    extension_instances: Dict[EventId, Sized], instance_count: int
) -> Optional[EventId]:
    """An event whose forward extension absorbs every instance, or ``None``.

    ``extension_instances`` maps each extension event to the instances of
    ``P ++ <e>`` (as a list or an :class:`InstanceBlock` — only sizes are
    read); because each instance of ``P`` yields at most one extended
    instance per event, count equality means every instance extends.
    """
    for event, instances in extension_instances.items():
        if len(instances) == instance_count:
            return event
    return None


def backward_closure_violation(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
) -> Optional[EventId]:
    """An event whose backward extension absorbs every instance, or ``None``."""
    events = backward_extension_events(encoded_db, index, pattern, instances)
    if events:
        return min(events)
    return None


def _gap_candidates(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
) -> Dict[EventId, List[int]]:
    """Candidate infix insertions: events in the gaps of every instance.

    Returns a mapping from each candidate event (outside the pattern
    alphabet, occurring strictly inside every instance span) to the gap
    positions it occupies *in the first instance* — a sound restriction of
    the insertion positions worth verifying, because an insertion that
    preserves every instance must in particular appear in that gap of the
    first instance.
    """
    if not instances:
        return {}
    alphabet = frozenset(pattern)
    first_instance = instances[0]
    first_sequence = encoded_db[first_instance.sequence_index]
    gaps_by_event: Dict[EventId, List[int]] = {}
    for gap_index, position in gap_events(
        first_sequence, pattern, (first_instance.start, first_instance.end)
    ):
        gaps = gaps_by_event.setdefault(first_sequence[position], [])
        if gap_index not in gaps:
            gaps.append(gap_index)
    candidates = set(gaps_by_event)
    for instance in instances[1:]:
        if not candidates:
            return {}
        positions = index[instance.sequence_index]
        candidates = {
            event
            for event in candidates
            if positions.occurs_between(event, instance.start, instance.end)
        }
    return {event: gaps_by_event[event] for event in candidates}


def infix_closure_violation(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
) -> Optional[Tuple[EventId, int]]:
    """A ``(event, insert_position)`` infix insertion violating closedness, or ``None``.

    The returned ``insert_position`` is the index in the pattern *before*
    which the event is inserted (``1 .. len(pattern) - 1``).
    """
    candidates = _gap_candidates(encoded_db, index, pattern, instances)
    if not candidates:
        return None
    support = len(instances)
    for event in sorted(candidates):
        for insert_position in candidates[event]:
            extended = pattern[:insert_position] + (event,) + pattern[insert_position:]
            extended_instances = _oracle_instances(encoded_db, index, extended)
            if len(extended_instances) != support:
                continue
            if instances_correspond(instances, extended_instances):
                return (event, insert_position)
    return None


def _oracle_instances(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
) -> List[PatternInstance]:
    """Exact instances of ``pattern`` across the database.

    Only sequences containing every event of the pattern can host an
    instance, so sequences failing that cheap index check are skipped before
    running the exact QRE matcher.  Scanning the *whole* database (rather
    than only sequences hosting the base pattern) matters for correctness:
    instance support is not anti-monotone under event insertion, so the
    extension may have instances in sequences the base pattern never matched,
    and undercounting them could wrongly equate the two supports.
    """
    needed = tuple(frozenset(pattern))
    results: List[PatternInstance] = []
    for sequence_index, sequence in enumerate(encoded_db):
        positions = index[sequence_index]
        if any(positions.count(event) == 0 for event in needed):
            continue
        for start, end in find_instances_in_sequence(sequence, pattern):
            results.append(PatternInstance(sequence_index, start, end))
    return results


def is_closed(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    pattern: Tuple[EventId, ...],
    instances: TypingSequence[PatternInstance],
    extension_instances: Dict[EventId, List[PatternInstance]],
    check_infix: bool = True,
) -> bool:
    """Full closedness check combining the forward, backward and infix tests."""
    if forward_closure_violation(extension_instances, len(instances)) is not None:
        return False
    if backward_closure_violation(encoded_db, index, pattern, instances) is not None:
        return False
    if check_infix and infix_closure_violation(encoded_db, index, pattern, instances) is not None:
        return False
    return True


# --------------------------------------------------------------------- #
# Columnar (block) path — what the closed miner actually runs.
# --------------------------------------------------------------------- #
def _gap_candidates_block(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    node: AlphabetIndex,
    block: InstanceBlock,
) -> Dict[EventId, List[int]]:
    """Columnar :func:`_gap_candidates` over an instance block.

    The candidate set almost always empties after a handful of rows, so the
    scan walks the block's flat columns directly and never materialises
    instance tuples.
    """
    if not block:
        return {}
    first_instance = block.first()
    first_sequence = encoded_db[first_instance.sequence_index]
    gaps_by_event: Dict[EventId, List[int]] = {}
    for gap_index, position in gap_events(
        first_sequence, node.pattern, (first_instance.start, first_instance.end)
    ):
        gaps = gaps_by_event.setdefault(first_sequence[position], [])
        if gap_index not in gaps:
            gaps.append(gap_index)
    candidates = set(gaps_by_event)
    starts = block.starts
    ends = block.ends
    for sid, lo, hi in block.groups():
        if not candidates:
            return {}
        positions = index[sid]
        for row in range(lo if sid != first_instance.sequence_index else lo + 1, hi):
            start = starts[row]
            end = ends[row]
            candidates = {
                event for event in candidates if positions.occurs_between(event, start, end)
            }
            if not candidates:
                return {}
    return {event: gaps_by_event[event] for event in candidates}


def _rows_correspond(
    block: InstanceBlock, lo: int, hi: int, rows: List[Tuple[int, int]]
) -> bool:
    """Per-sequence Definition 4.2 correspondence, two-pointer form.

    ``block`` rows ``lo..hi`` are the sub-instances of one sequence;
    ``rows`` the equally-many super-instances.  Both have strictly
    increasing starts *and* ends (an instance is determined by either
    endpoint), so the reference algorithm's "first unused enclosing
    super-instance" reduces to a forward sweep: super-rows ending before
    the current sub-row can never enclose a later sub-row either, and once
    a super-row starts after the sub-row every later one does too.
    """
    starts = block.starts
    ends = block.ends
    cursor = 0
    cursor_hi = len(rows)
    for row in range(lo, hi):
        start = starts[row]
        end = ends[row]
        while cursor < cursor_hi and rows[cursor][1] < end:
            cursor += 1
        if cursor == cursor_hi or rows[cursor][0] > start:
            return False
        cursor += 1
    return True


def infix_closure_violation_block(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    node: AlphabetIndex,
    block: InstanceBlock,
) -> Optional[Tuple[EventId, int]]:
    """Columnar :func:`infix_closure_violation` over an instance block.

    Candidates surviving the gap pre-filter are verified entirely on the
    merged-alphabet projection machinery — no instance tuples, no QRE
    rescans.  The key structural fact: correspondence plus equal support
    force the extended pattern's instance count to match the pattern's
    *in every single sequence* (and to vanish in sequences the pattern
    misses), so the oracle verifies sequence by sequence and abandons a
    candidate at its first mismatching sequence instead of materialising
    the extension across the whole database first.
    """
    candidates = _gap_candidates_block(encoded_db, index, node, block)
    if not candidates:
        return None
    pattern = node.pattern
    # Per-sequence instance counts of the pattern, and each group's rows.
    groups: Dict[int, Tuple[int, int]] = {
        sid: (lo, hi) for sid, lo, hi in block.groups()
    }
    # prefix_nodes[i] is the AlphabetIndex of pattern[:i + 1]; its merged
    # caches are shared by every candidate through the parent links.
    prefix_nodes = [AlphabetIndex(index, (pattern[0],))]
    for event in pattern[1:-1]:
        prefix_nodes.append(prefix_nodes[-1].extend(event))
    database_size = len(encoded_db)
    for event in sorted(candidates):
        for insert_position in candidates[event]:
            extended = pattern[:insert_position] + (event,) + pattern[insert_position:]
            nodes = prefix_nodes[: insert_position]
            nodes = nodes + [nodes[-1].extend(event)]
            for tail_event in pattern[insert_position:]:
                nodes.append(nodes[-1].extend(tail_event))
            matched = True
            for sequence_index in range(database_size):
                bounds = groups.get(sequence_index)
                expected = bounds[1] - bounds[0] if bounds is not None else 0
                positions = index[sequence_index]
                first_positions = positions.positions_of(extended[0])
                if not first_positions:
                    if expected:
                        matched = False
                        break
                    continue
                rows = project_rows_in_sequence(
                    encoded_db[sequence_index],
                    positions.table(),
                    nodes,
                    extended,
                    sequence_index,
                    [(position, position) for position in first_positions],
                )
                if len(rows) != expected:
                    matched = False
                    break
                if expected and not _rows_correspond(block, bounds[0], bounds[1], rows):
                    matched = False
                    break
            if matched:
                return (event, insert_position)
    return None


def is_closed_block(
    encoded_db: EncodedDatabase,
    index: PositionIndex,
    node: AlphabetIndex,
    block: InstanceBlock,
    extension_blocks: Dict[EventId, InstanceBlock],
    check_infix: bool = True,
) -> bool:
    """Columnar :func:`is_closed`: forward, backward and infix tests on blocks.

    ``node`` is the search node's shared :class:`AlphabetIndex`; the miner
    builds it once per node and the backward and infix checks reuse its
    merged occurrence lists instead of rebuilding per-call alphabet state.
    """
    if forward_closure_violation(extension_blocks, len(block)) is not None:
        return False
    if backward_extension_events_block(encoded_db, index, node, block):
        return False
    if check_infix and infix_closure_violation_block(encoded_db, index, node, block) is not None:
        return False
    return True
