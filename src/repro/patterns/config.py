"""Configuration for the iterative-pattern miners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class IterativeMiningConfig:
    """Thresholds and switches shared by the full and closed miners.

    Parameters
    ----------
    min_support:
        Minimum number of instances a pattern must have to be frequent.
        Values in ``(0, 1]`` are interpreted relative to the number of
        sequences in the database (the convention used by the paper's
        Figure 1); values above 1 are absolute instance counts.
    max_pattern_length:
        Optional cap on the pattern length explored by the search.  ``None``
        (the default) explores patterns of any length, as in the paper.
    collect_instances:
        When ``True`` (default) each mined pattern records its instances.
        Disable to reduce memory for very large results (the full miner at
        low thresholds).
    check_infix_extensions:
        Closed miner only: also reject patterns that a single-event *infix*
        insertion extends without changing support (Definition 4.2).  The
        forward / backward checks are always applied.
    adjacent_absorption_pruning:
        Search-space pruning in the spirit of the paper's non-closed pattern
        pruning strategies: when some event follows *every* instance of the
        current pattern immediately (adjacently), only that extension is
        explored further.  This collapses the search along deterministic
        protocol segments (the JBoss case study) and at low supports on the
        synthetic data, at the cost of possibly skipping closed patterns
        that interleave with such a segment; every emitted pattern is still
        verified closed.  Disabled by default so the default result is the
        exact closed set.
    """

    min_support: float = 2.0
    max_pattern_length: Optional[int] = None
    collect_instances: bool = True
    check_infix_extensions: bool = True
    adjacent_absorption_pruning: bool = False

    def __post_init__(self) -> None:
        if self.min_support <= 0:
            raise ConfigurationError(
                f"min_support must be positive, got {self.min_support!r}"
            )
        if self.max_pattern_length is not None and self.max_pattern_length < 1:
            raise ConfigurationError(
                f"max_pattern_length must be at least 1, got {self.max_pattern_length!r}"
            )
