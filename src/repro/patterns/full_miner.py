"""Mining the *full* set of frequent iterative patterns.

This is the baseline the paper compares against in Figure 1: every frequent
pattern is emitted, so at low support thresholds both the runtime and the
number of mined patterns blow up relative to the closed miner.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.blocks import InstanceBlock
from ..core.events import EncodedDatabase, EventId
from ..core.positions import PositionIndex
from ..core.projection import AlphabetIndex
from ..core.sequence import SequenceDatabase
from ..engine import ExecutionBackend
from .config import IterativeMiningConfig
from .miner_base import IterativePatternMinerBase
from .result import PatternMiningResult


class FullIterativePatternMiner(IterativePatternMinerBase):
    """Depth-first miner emitting every frequent iterative pattern.

    Example
    -------
    >>> from repro import SequenceDatabase
    >>> db = SequenceDatabase.from_sequences([
    ...     ["lock", "use", "unlock", "lock", "unlock"],
    ...     ["lock", "read", "unlock"],
    ... ])
    >>> miner = FullIterativePatternMiner(IterativeMiningConfig(min_support=3))
    >>> sorted(p.events for p in miner.mine(db))
    [('lock',), ('lock', 'unlock'), ('unlock',)]
    """

    closed_only = False

    def _should_emit(
        self,
        encoded: EncodedDatabase,
        index: PositionIndex,
        node: AlphabetIndex,
        block: InstanceBlock,
        extensions: Dict[EventId, InstanceBlock],
    ) -> bool:
        return True


def mine_frequent_patterns(
    database: SequenceDatabase,
    min_support: float = 2.0,
    backend: Optional[ExecutionBackend] = None,
    **kwargs: object,
) -> PatternMiningResult:
    """Convenience wrapper: mine all frequent iterative patterns.

    ``backend`` selects the execution backend (serial by default); the
    remaining keyword arguments are forwarded to
    :class:`~repro.patterns.config.IterativeMiningConfig`.
    """
    config = IterativeMiningConfig(min_support=min_support, **kwargs)  # type: ignore[arg-type]
    return FullIterativePatternMiner(config).mine(database, backend=backend)
