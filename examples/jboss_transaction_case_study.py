"""Case study (Figure 4): recover the JBoss transaction protocol from traces.

The simulated JBoss transaction component is driven by a small test suite;
each test performs one complete client transaction (begin, client SQL work,
commit or rollback, dispose) amid unrelated server activity.  Mining the
closed iterative patterns from those traces recovers the 32-event protocol
of the paper's Figure 4 as the longest pattern.

Run with:  python examples/jboss_transaction_case_study.py
"""

from repro.jboss import (
    FIGURE4_PATTERN,
    TransactionWorkloadConfig,
    generate_transaction_traces,
)
from repro.patterns import ClosedIterativePatternMiner, IterativeMiningConfig
from repro.specs import chart_from_pattern, render_chart, render_pattern_blocks

BLOCK_TITLES = (
    "Connection Set Up",
    "Tx Manager Set Up",
    "Transaction Set Up",
    "Transaction Set Up (Con't)",
    "Transaction Commit",
    "Transaction Commit (Con't)",
    "Transaction Dispose",
)


def main() -> None:
    workload = TransactionWorkloadConfig(
        num_traces=24,
        min_transactions_per_trace=1,
        max_transactions_per_trace=1,
        rollback_probability=0.25,
        seed=77,
    )
    traces = generate_transaction_traces(workload)
    stats = traces.describe()
    print(
        f"instrumented traces: {int(stats['sequences'])}, "
        f"events: {int(stats['events'])}, distinct methods: {int(stats['distinct_events'])}"
    )

    config = IterativeMiningConfig(
        min_support=12, collect_instances=False, adjacent_absorption_pruning=True
    )
    result = ClosedIterativePatternMiner(config).mine(traces)
    print(f"closed iterative patterns mined: {len(result)} "
          f"({result.stats.elapsed_seconds:.2f}s)")

    longest = result.longest()
    print(f"\nlongest pattern: {len(longest)} events, support {longest.support}")
    print(f"matches the paper's Figure 4: {longest.events == FIGURE4_PATTERN}\n")
    print(render_pattern_blocks(longest.events, BLOCK_TITLES, block_size=5))

    print("\nas an MSC-style chart (first 12 messages):")
    chart = chart_from_pattern(longest.events[:12], name="JBoss transaction set-up")
    print(render_chart(chart))


if __name__ == "__main__":
    main()
