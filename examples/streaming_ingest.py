"""Streaming ingestion + incremental mining: the growing-corpus loop.

Real deployments accumulate traces continuously — a day of lock/unlock
activity lands as a compressed JSONL file, the next day as CSV, and the
specifications should stay current without re-mining the whole history.
This example runs that loop end to end:

1. write three "daily" trace files in different formats (one gzipped);
2. stream them into an append-only :class:`~repro.ingest.TraceStore`;
3. mine the store once, then append another day and *incrementally*
   refresh — only the first-level roots touched by the new batch are
   re-mined, and the output is bit-identical to a from-scratch mine;
4. refresh a :class:`~repro.specs.SpecificationRepository` from the store
   snapshot, with the store's content fingerprint recorded as provenance.

Run with:  python examples/streaming_ingest.py
"""

import tempfile
from pathlib import Path

from repro.ingest import IncrementalMiner, TraceStore, TraceRecord, write_trace_records
from repro.patterns.closed_miner import ClosedIterativePatternMiner, mine_closed_patterns
from repro.patterns.config import IterativeMiningConfig
from repro.specs import SpecificationRepository

DAY_ONE = [
    TraceRecord(("acquire", "read", "release", "acquire", "write", "release"), "mon-0"),
    TraceRecord(("acquire", "read", "read", "release"), "mon-1"),
    TraceRecord(("open", "seek", "close"), "mon-2"),
]
DAY_TWO = [
    TraceRecord(("acquire", "release", "acquire", "read", "release"), "tue-0"),
    TraceRecord(("open", "seek", "seek", "close"), "tue-1"),
]
# Day three only touches the file-handle protocol: the acquire/release
# subtrees are untouched and keep their cached records verbatim.
DAY_THREE = [
    TraceRecord(("open", "close", "open", "seek", "close"), "wed-0"),
    TraceRecord(("open", "close"), "wed-1"),
]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        files = [
            (root / "day1.jsonl.gz", DAY_ONE),
            (root / "day2.csv", DAY_TWO),
        ]
        for path, records in files:
            write_trace_records(path, records)

        print("-- streaming ingestion --")
        store = TraceStore(root / "corpus.tracestore")
        for path, _ in files:
            batch = store.append_trace_file(path)
            print(f"  {path.name}: batch {batch.index}, {batch.traces} traces")
        print(f"  store: {len(store)} traces, fingerprint {store.fingerprint[:12]}")

        print("\n-- initial mine (all roots) --")
        miner = IncrementalMiner(
            ClosedIterativePatternMiner(IterativeMiningConfig(min_support=3)), store
        )
        result, report = miner.refresh()
        print(f"  {len(result)} closed patterns, {report.roots_remined}/{report.roots_total} roots mined")

        print("\n-- append day three, incremental refresh --")
        write_trace_records(root / "day3.txt", DAY_THREE)
        store.append_trace_file(root / "day3.txt")
        result, report = miner.refresh()
        print(
            f"  {len(result)} closed patterns, re-mined only "
            f"{report.roots_remined}/{report.roots_total} roots ({report.reason})"
        )
        full = mine_closed_patterns(store.snapshot(), min_support=3)
        print(f"  bit-identical to a full re-mine: {result.patterns == full.patterns}")

        print("\n-- refresh a specification repository from the store --")
        repository = SpecificationRepository(name="resource-protocols")
        repository.refresh_from_store(
            store,
            pattern_miner=ClosedIterativePatternMiner(IterativeMiningConfig(min_support=3)),
        )
        print(f"  {len(repository.patterns)} patterns, provenance: {repository.source}")


if __name__ == "__main__":
    main()
