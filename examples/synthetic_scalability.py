"""Scalability study on QUEST-style synthetic data (Figures 1-3, small scale).

Generates a scaled-down D5C20N10S20 dataset and compares the baseline miners
(all frequent patterns / all significant rules) against the paper's miners
(closed patterns / non-redundant rules) across a threshold sweep, printing
the same series the paper's figures plot.  Use --scale to grow the dataset
towards the paper's size.

Run with:  python examples/synthetic_scalability.py [--scale 0.02]
"""

import argparse

from repro.analysis import (
    format_sweep,
    headline_ratios,
    iterative_pattern_sweep,
    rule_sweep_vs_s_support,
)
from repro.datagen import PAPER_PROFILE, generate_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02, help="scale of D and N vs the paper")
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args()

    database = generate_profile(PAPER_PROFILE, scale=args.scale, seed=args.seed)
    stats = database.describe()
    print(
        f"dataset {PAPER_PROFILE} @ scale {args.scale}: "
        f"{int(stats['sequences'])} sequences, {int(stats['events'])} events, "
        f"{int(stats['distinct_events'])} distinct events"
    )

    print("\n== Figure 1: closed vs full iterative pattern mining ==")
    pattern_rows = iterative_pattern_sweep(database, min_supports=[0.12, 0.10, 0.08])
    print(format_sweep(pattern_rows, baseline_label="Full", proposed_label="Closed"))
    print(headline_ratios(pattern_rows).describe("patterns"))

    print("\n== Figure 2: non-redundant vs full recurrent rule mining ==")
    rule_rows = rule_sweep_vs_s_support(
        database,
        min_s_supports=[0.3, 0.25, 0.2],
        min_confidence=0.5,
        max_premise_length=3,
        max_consequent_length=4,
    )
    print(format_sweep(rule_rows, baseline_label="Full", proposed_label="NR"))
    print(headline_ratios(rule_rows).describe("rules"))


if __name__ == "__main__":
    main()
