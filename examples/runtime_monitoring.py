"""Runtime monitoring with mined specifications (the verification use case).

Section 1 of the paper motivates specification mining as a way to obtain
properties for automated verification.  This example closes that loop:

1. instrument a small file-handle component with the proxy instrumenter and
   drive it with a passing test suite to collect traces;
2. mine non-redundant recurrent rules from those traces;
3. monitor a *new* set of runs — one of which forgets to close the handle —
   and report the violations the mined rules catch.

Run with:  python examples/runtime_monitoring.py
"""

from repro import RuleMonitor, mine_non_redundant_rules
from repro.traces import TraceCollector, TestSuiteRunner, instrument


class FileHandle:
    """A toy resource with an open/use/close discipline."""

    def __init__(self) -> None:
        self.is_open = False

    def open(self) -> None:
        self.is_open = True

    def read(self) -> str:
        return "bytes" if self.is_open else ""

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.is_open = False


def _passing_suite() -> "TraceCollector":
    runner = TestSuiteRunner()

    def read_twice(collector, iteration):
        handle = instrument(FileHandle(), collector, class_name="FileHandle")
        handle.open()
        handle.read()
        handle.read()
        handle.close()

    def flush_then_close(collector, iteration):
        handle = instrument(FileHandle(), collector, class_name="FileHandle")
        handle.open()
        handle.read()
        handle.flush()
        handle.close()

    runner.add("read-twice", read_twice, repetitions=3)
    runner.add("flush-then-close", flush_then_close, repetitions=3)
    return runner


def main() -> None:
    print("== collecting traces from the instrumented test suite ==")
    traces = _passing_suite().run()
    for index in range(len(traces)):
        print(f"  {traces.name(index)}: {list(traces[index])}")

    print("\n== mining non-redundant rules (100% confidence) ==")
    rules = mine_non_redundant_rules(traces, min_s_support=6, min_confidence=1.0)
    for rule in rules.sorted_by_confidence():
        print(f"  {rule}")

    print("\n== monitoring new runs ==")
    monitor = RuleMonitor(rules.rules)
    collector = TraceCollector()
    with collector.trace("good-run"):
        handle = instrument(FileHandle(), collector, class_name="FileHandle")
        handle.open()
        handle.read()
        handle.close()
    with collector.trace("buggy-run (close is missing)"):
        handle = instrument(FileHandle(), collector, class_name="FileHandle")
        handle.open()
        handle.read()
        handle.flush()

    report = monitor.check_database(collector.to_database())
    print(report.summary())
    for violation in report.violations:
        print(f"  VIOLATION: {violation.describe()}")


if __name__ == "__main__":
    main()
