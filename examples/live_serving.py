"""Online specification serving: the mine -> serve -> monitor loop, live.

The offline examples mine a finished corpus and audit it afterwards.  This
one runs the serving layer instead:

1. mine recurrent rules from a bootstrap corpus and *compile* them into a
   shared automaton (`repro.serving.compile_rules`);
2. serve a live event stream through a `StreamingMonitor` — one event at a
   time, violations reported the moment a trace closes;
3. run a `WatchDaemon` over a drop directory: new trace files are ingested
   into a `TraceStore`, the rule set is re-mined incrementally, hot-swapped
   into the serving automaton, and the new traces monitored against it.

Run with:  python examples/live_serving.py
"""

import tempfile
from pathlib import Path

from repro import SequenceDatabase, mine_non_redundant_rules
from repro.ingest import TraceRecord, write_trace_records
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.serving import StreamingMonitor, WatchDaemon, compile_rules

BOOTSTRAP = [
    ["connect", "auth", "query", "disconnect"],
    ["connect", "auth", "query", "query", "disconnect"],
    ["connect", "auth", "disconnect"],
]

LIVE_TRAFFIC = [
    ("session-1", ["connect", "auth", "query", "disconnect"]),
    ("session-2", ["connect", "auth", "query"]),  # never disconnects
    ("session-3", ["connect", "auth", "disconnect"]),
]


def serve_a_stream() -> None:
    rules = mine_non_redundant_rules(
        SequenceDatabase.from_sequences(BOOTSTRAP), min_s_support=2, min_confidence=0.9
    ).rules
    compiled = compile_rules(rules)
    stats = compiled.describe()
    print(f"compiled {stats['rules']} rules into {stats['trie_nodes']} trie nodes")

    monitor = StreamingMonitor(compiled)
    for name, events in LIVE_TRAFFIC:
        monitor.begin_trace(name=name)
        for event in events:  # one event at a time: this is the live path
            monitor.feed(event)
        report = monitor.end_trace()
        verdict = "ok" if report.violation_count == 0 else "VIOLATIONS"
        print(f"  {name}: {report.total_points} points checked -> {verdict}")
        for violation in report.violations:
            print(f"    {violation.describe()}")
    print(monitor.report().summary())


def watch_a_directory() -> None:
    with tempfile.TemporaryDirectory() as raw_tmp:
        tmp = Path(raw_tmp)
        incoming = tmp / "incoming"
        incoming.mkdir()
        daemon = WatchDaemon(
            incoming,
            tmp / "store",
            # Looser confidence than the one-shot mine above: the violating
            # live session lowers the rules' confidence during the re-mine,
            # and they must survive it to flag that same session.
            NonRedundantRecurrentRuleMiner(
                RuleMiningConfig(min_s_support=2, min_confidence=0.6)
            ),
            persist_cache=True,
        )
        write_trace_records(
            incoming / "bootstrap.jsonl",
            [TraceRecord(tuple(trace)) for trace in BOOTSTRAP],
        )
        cycle = daemon.run_once()
        print(
            f"cycle {cycle.index}: ingested {len(cycle.ingested)} files, "
            f"serving {cycle.rules_served} rules "
            f"({'hot-swapped' if cycle.swapped else 'unchanged'})"
        )
        write_trace_records(
            incoming / "live.jsonl",
            [TraceRecord(tuple(events), name) for name, events in LIVE_TRAFFIC],
        )
        cycle = daemon.run_once()
        print(
            f"cycle {cycle.index}: re-mined "
            f"{cycle.refresh.roots_remined}/{cycle.refresh.roots_total} roots, "
            f"{cycle.violation_count} violations among the new traces"
        )
        for violation in cycle.monitoring.violations:
            print(f"  {violation.describe()}")


if __name__ == "__main__":
    print("-- streaming monitor over a compiled rule set --")
    serve_a_stream()
    print("\n-- watch daemon over a drop directory --")
    watch_a_directory()
