"""Quickstart: mine patterns and rules from a handful of resource-usage traces.

This is the introduction's lock/unlock example: a few program traces in which
a resource is repeatedly acquired and released, with unrelated work in
between.  The closed iterative-pattern miner recovers the protocol, the
non-redundant rule miner recovers the "whenever acquire, eventually release"
rule, and the rule is shown in its LTL form (Table 2 of the paper).

Run with:  python examples/quickstart.py
"""

from repro import (
    SequenceDatabase,
    mine_closed_patterns,
    mine_non_redundant_rules,
)
from repro.ltl import explain, parse_ltl
from repro.specs import render_rule


def main() -> None:
    traces = SequenceDatabase.from_sequences(
        [
            ["acquire", "read", "release", "acquire", "write", "release"],
            ["acquire", "read", "read", "release"],
            ["init", "acquire", "compute", "release", "shutdown"],
            ["acquire", "release", "acquire", "read", "release"],
        ]
    )
    print(f"traces: {len(traces)}, events: {traces.total_events()}")

    print("\n-- closed iterative patterns (min support: 6 instances) --")
    patterns = mine_closed_patterns(traces, min_support=6)
    for pattern in patterns.sorted_by_support():
        print(f"  {pattern}")

    print("\n-- non-redundant recurrent rules (min conf: 90%) --")
    rules = mine_non_redundant_rules(traces, min_s_support=4, min_confidence=0.9)
    for rule in rules.sorted_by_confidence():
        print(f"  {rule}")

    rule = rules.find(("acquire",), ("release",))
    if rule is not None:
        print("\n-- the resource-locking rule in detail --")
        print(render_rule(rule))
        ltl_text = rule.to_ltl()
        print(f"LTL: {ltl_text}")
        print(f"Meaning: {explain(parse_ltl(ltl_text))}")


if __name__ == "__main__":
    main()
