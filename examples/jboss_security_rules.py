"""Case study (Figure 5): recover the JAAS authentication rule from traces.

The simulated JBoss security component is driven by a workload mixing
successful authentications, failed logins and "configuration unavailable"
scenarios.  Mining non-redundant recurrent rules — with the premise focused
on the configuration-lookup events, the domain-knowledge feedback sketched in
the paper's future work — recovers the Figure 5 rule: whenever the login
configuration is consulted, eventually the whole JAAS login / principal
binding / credential-use sequence follows.

Run with:  python examples/jboss_security_rules.py
"""

from repro.jboss import (
    FIGURE5_CONSEQUENT,
    FIGURE5_PREMISE,
    SecurityWorkloadConfig,
    generate_security_traces,
)
from repro.rules import NonRedundantRecurrentRuleMiner, RuleMiningConfig
from repro.specs import SpecificationRepository, rank_rules, render_rule


def main() -> None:
    traces = generate_security_traces(SecurityWorkloadConfig(num_traces=24, seed=99))
    print(f"instrumented security traces: {len(traces)}")

    config = RuleMiningConfig(
        min_s_support=0.5,
        min_confidence=0.5,
        min_i_support=1,
        max_premise_length=2,
        allowed_premise_events=frozenset(FIGURE5_PREMISE),
    )
    result = NonRedundantRecurrentRuleMiner(config).mine(traces)
    print(f"non-redundant rules mined: {len(result)} ({result.stats.elapsed_seconds:.2f}s)\n")

    print("top rules by score:")
    for score, rule in rank_rules(result, top=5):
        print(f"  [{score:6.2f}] {rule}")

    figure5 = result.find(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)
    if figure5 is not None:
        print("\nThe Figure 5 rule, as mined:")
        print(render_rule(figure5))
        print(f"\nLTL form:\n  {figure5.to_ltl()}")

    repository = SpecificationRepository("jboss-security")
    repository.add_rule_result(result)
    repository.save("jboss_security_rules.json")
    print(f"\nsaved {len(result)} rules to jboss_security_rules.json")


if __name__ == "__main__":
    main()
