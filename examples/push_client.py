"""The push serving plane, end to end: server, sessions, swap, stats.

`repro serve` hosts mined specifications behind a TCP front end speaking
length-prefixed JSON frames (the protocol reference is docs/serving.md).
This example runs the whole loop in one process:

1. mine recurrent rules from a bootstrap corpus and start an
   `EventPushServer` over a sharded `MonitorPool` (exactly what
   `repro serve` runs);
2. push interleaved sessions through a `PushClient` — events one at a
   time and in batches, sessions multiplexed over one connection — and
   read each session's violations from its `END` reply;
3. hot-swap the served rules over the wire with `SWAP` and show that
   sessions admitted before the swap finish on their own generation;
4. read the aggregate `REPORT` and the operational `STATS` counters.

Run with:  python examples/push_client.py
"""

from repro import SequenceDatabase, mine_non_redundant_rules
from repro.serving import EventPushServer, MonitorPool, PushClient
from repro.specs.repository import SpecificationRepository

BOOTSTRAP = [
    ["connect", "auth", "query", "disconnect"],
    ["connect", "auth", "query", "query", "disconnect"],
    ["connect", "auth", "disconnect"],
]

LIVE_SESSIONS = [
    ("session-1", ["connect", "auth", "query", "disconnect"]),
    ("session-2", ["connect", "auth", "query"]),  # never disconnects
    ("session-3", ["connect", "auth", "disconnect"]),
]


def main() -> None:
    # 1. Mine the bootstrap corpus and serve the rules.
    mined = mine_non_redundant_rules(
        SequenceDatabase.from_sequences(BOOTSTRAP), min_s_support=2, min_confidence=0.9
    )
    print(f"mined {len(mined.rules)} rules from {len(BOOTSTRAP)} bootstrap traces")

    with MonitorPool(mined.rules, shards=2, queue_depth=64) as pool:
        with EventPushServer(pool, port=0) as server:  # port 0: ephemeral
            host, port = server.address
            print(f"serving on {host}:{port}\n")

            with PushClient(host, port) as client:
                # 2. Push the sessions interleaved: one event of each in
                # turn, so all three are open at once (a logical session is
                # keyed by its id, not by the connection).
                longest = max(len(events) for _, events in LIVE_SESSIONS)
                for step in range(longest):
                    for session_id, events in LIVE_SESSIONS:
                        if step < len(events):
                            reply = client.feed(session_id, events[step])
                            assert reply == {"op": "OK"}, reply

                for session_id, _ in LIVE_SESSIONS:
                    reply = client.end(session_id)
                    print(
                        f"{session_id}: {reply['points']} points, "
                        f"{reply['violation_count']} violations"
                    )
                    for violation in reply["violations"]:
                        print(
                            f"   {violation['trace_name']}@{violation['position']}: "
                            f"{violation['premise']} -> {violation['consequent']} "
                            "never completed"
                        )

                # 3. Hot swap over the wire.  A session admitted *before*
                # the swap keeps monitoring its admission-time rules.
                client.feed("straggler", "connect")
                repository = SpecificationRepository(name="swapped")
                for rule in mined.rules[:1]:
                    repository.add_rule(rule)
                reply = client.swap(repository)
                print(
                    f"\nswapped to generation {reply['generation']} "
                    f"({reply['rules']} rules served)"
                )
                straggler = client.end("straggler")
                print(
                    f"straggler (admitted at generation 0): "
                    f"{straggler['points']} points, "
                    f"{straggler['violation_count']} violations"
                )

                # 4. Aggregate report and operational counters.
                report = client.report(limit=0)
                stats = client.stats()
                print(
                    f"\naggregate: {report['points']} points, "
                    f"{report['violation_count']} violations across "
                    f"{stats['sessions_closed']} sessions "
                    f"({stats['events_processed']} events, "
                    f"{stats['busy_rejections']} busy rejections)"
                )


if __name__ == "__main__":
    main()
