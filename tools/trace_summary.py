#!/usr/bin/env python3
"""Summarise a span-trace JSONL file (the ``--trace-out`` output).

Every mining/serving command accepts ``--trace-out FILE``; the collector
appends one JSON object per finished span::

    {"name": "engine.shard", "ts": ..., "dur": 0.0123, "pid": 4711,
     "attrs": {"index": 0, "roots": 12}}

This tool reads one or more such files and prints, per span name, the
count and the total / mean / p95 / max duration — a quick answer to
"where did the run's wall-clock go" without loading the file into a
notebook.  Durations of nested spans overlap (a ``daemon.refresh`` runs
inside its ``daemon.cycle``), so the per-name totals are not additive
across names.

Usage::

    python tools/trace_summary.py trace.jsonl [more.jsonl ...]

Stdlib only; exits 2 on an unreadable file, 0 otherwise (a file with no
valid span lines prints an empty table).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List


def load_spans(paths: List[str]) -> List[dict]:
    """Read span entries, skipping torn or foreign lines.

    A crash mid-write can tear the last line — possibly inside a multibyte
    UTF-8 sequence; a span file is diagnostics, so a bad line is skipped
    silently (and torn bytes replaced) rather than failing the summary.
    An empty file is an empty summary, not an error.
    """
    spans: List[dict] = []
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    isinstance(entry, dict)
                    and isinstance(entry.get("name"), str)
                    and isinstance(entry.get("dur"), (int, float))
                ):
                    spans.append(entry)
    return spans


def percentile(durations: List[float], fraction: float) -> float:
    """Nearest-rank percentile over a sorted list."""
    if not durations:
        return 0.0
    rank = max(0, min(len(durations) - 1, int(round(fraction * (len(durations) - 1)))))
    return durations[rank]


def summarise(spans: List[dict]) -> List[dict]:
    by_name: Dict[str, List[float]] = {}
    for entry in spans:
        by_name.setdefault(entry["name"], []).append(float(entry["dur"]))
    rows = []
    for name in sorted(by_name, key=lambda key: -sum(by_name[key])):
        durations = sorted(by_name[name])
        total = sum(durations)
        rows.append(
            {
                "name": name,
                "count": len(durations),
                "total": total,
                "mean": total / len(durations),
                "p95": percentile(durations, 0.95),
                "max": durations[-1],
            }
        )
    return rows


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: trace_summary.py TRACE.jsonl [more.jsonl ...]", file=sys.stderr)
        return 2
    try:
        spans = load_spans(argv)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = summarise(spans)
    header = f"{'span':<28} {'count':>7} {'total_s':>9} {'mean_s':>9} {'p95_s':>9} {'max_s':>9}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['name']:<28} {row['count']:>7} {row['total']:>9.4f} "
            f"{row['mean']:>9.4f} {row['p95']:>9.4f} {row['max']:>9.4f}"
        )
    print(f"{len(spans)} spans, {len(rows)} distinct names")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
